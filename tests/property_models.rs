//! Property-based tests of the simulator allocator models: for any valid
//! workload stream, every model must place blocks without overlap, leak
//! nothing, and respect its synchronization contract.

use std::collections::HashMap;

use ngm_sim::Machine;
use ngm_simalloc::model::AllocModel;
use ngm_simalloc::{ModelKind, NgmModel};
use ngm_workloads::churn::{self, ChurnParams};
use ngm_workloads::Event;
use proptest::prelude::*;

fn churn_params() -> impl Strategy<Value = ChurnParams> {
    (
        1u8..4,
        50u32..400,
        4u32..64,
        (8u32..64, 64u32..10_000),
        0u8..90,
        any::<u64>(),
    )
        .prop_map(
            |(threads, total_allocs, live_cap, (lo, hi), free_percent, seed)| ChurnParams {
                threads,
                total_allocs,
                live_cap,
                size_range: (lo, hi),
                free_percent,
                touch_percent: 60,
                compute_per_step: 30,
                seed,
            },
        )
}

/// Replays a stream while asserting that live blocks never overlap.
fn check_no_overlap(kind: ModelKind, threads: usize, events: &[Event]) {
    let mut machine = Machine::new(kind.machine(threads));
    let mut model = kind.build(threads);
    // Live intervals: id -> (start, end).
    let mut live: HashMap<u64, (u64, u64)> = HashMap::new();
    for e in events {
        match *e {
            Event::Malloc { thread, id, size } => {
                let addr = model.malloc(&mut machine, thread as usize, size);
                let end = addr + u64::from(size);
                for (&other, &(s, t)) in &live {
                    assert!(
                        end <= s || addr >= t,
                        "{}: block {id} [{addr:#x},{end:#x}) overlaps {other} [{s:#x},{t:#x})",
                        model.name()
                    );
                }
                live.insert(id, (addr, end));
            }
            Event::Free { thread, id } => {
                let (addr, end) = live.remove(&id).expect("valid stream");
                model.free(&mut machine, thread as usize, addr, (end - addr) as u32);
            }
            _ => {}
        }
    }
    assert!(live.is_empty(), "stream is balanced by construction");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_model_ever_overlaps_blocks(params in churn_params()) {
        let events = churn::collect(&params);
        for kind in ModelKind::BASELINES.into_iter().chain([ModelKind::Ngm]) {
            check_no_overlap(kind, params.threads as usize, &events);
        }
    }

    #[test]
    fn ngm_atomics_are_exactly_four_per_small_malloc(params in churn_params()) {
        let events = churn::collect(&params);
        let threads = params.threads as usize;
        let mut machine = Machine::new(ModelKind::Ngm.machine(threads));
        let mut model = NgmModel::new(threads);
        let mut small_mallocs = 0u64;
        let mut objects: HashMap<u64, (u64, u32)> = HashMap::new();
        for e in &events {
            match *e {
                Event::Malloc { thread, id, size } => {
                    let addr = model.malloc(&mut machine, thread as usize, size);
                    objects.insert(id, (addr, size));
                    if u64::from(size) <= ngm_simalloc::model::LARGE_CUTOFF {
                        small_mallocs += 1;
                    }
                }
                Event::Free { thread, id } => {
                    let (addr, size) = objects.remove(&id).expect("valid stream");
                    model.free(&mut machine, thread as usize, addr, size);
                }
                _ => {}
            }
        }
        // §3.1.3: frees add no atomics; each offloaded malloc costs the
        // paper's four.
        prop_assert_eq!(model.atomics(), small_mallocs * NgmModel::ATOMICS_PER_MALLOC);
    }

    #[test]
    fn single_threaded_mimalloc_needs_no_atomics(mut params in churn_params()) {
        params.threads = 1;
        let events = churn::collect(&params);
        let mut machine = Machine::new(ModelKind::Mimalloc.machine(1));
        let mut model = ModelKind::Mimalloc.build(1);
        let mut objects: HashMap<u64, (u64, u32)> = HashMap::new();
        for e in &events {
            match *e {
                Event::Malloc { thread, id, size } => {
                    let addr = model.malloc(&mut machine, thread as usize, size);
                    objects.insert(id, (addr, size));
                }
                Event::Free { thread, id } => {
                    let (addr, size) = objects.remove(&id).expect("valid stream");
                    model.free(&mut machine, thread as usize, addr, size);
                }
                _ => {}
            }
        }
        // All frees are local: the fast path never synchronizes.
        prop_assert_eq!(model.atomics(), 0);
    }

    #[test]
    fn deterministic_replay(params in churn_params()) {
        let events = churn::collect(&params);
        let a = ngm_simalloc::run_kind(ModelKind::TcMalloc, params.threads as usize, events.iter().copied());
        let b = ngm_simalloc::run_kind(ModelKind::TcMalloc, params.threads as usize, events.iter().copied());
        prop_assert_eq!(a.total, b.total);
        prop_assert_eq!(a.wall_cycles, b.wall_cycles);
    }
}
