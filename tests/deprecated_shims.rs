//! The deprecated pre-0.5 API surface still works, verbatim.
//!
//! This file opts out of deprecation warnings on purpose: CI builds the
//! rest of the workspace with `RUSTFLAGS="-D deprecated"` to prove no
//! first-party code still uses the old builders, while this test alone
//! keeps the shims themselves exercised until they are removed.
//!
//! The shims no longer compile by default: they are gated behind the
//! `legacy-api` cargo feature, so this suite only exists under
//! `cargo test --features legacy-api`.

#![cfg(feature = "legacy-api")]
#![allow(deprecated)]

use std::alloc::Layout;

use ngm_core::{NextGenMalloc, Ngm, NgmAllocator, NgmBuilder, NgmConfig};
use ngm_offload::{OffloadRuntime, RuntimeBuilder, WaitStrategy};

#[test]
fn ngm_builder_field_init_still_starts() {
    // The historical call shape: struct-literal over Default, fields
    // tweaked in place, infallible start() with clamping.
    let ngm = NgmBuilder {
        service_core: None,
        batch_size: 16,
        flush_threshold: 8,
        ..NgmBuilder::default()
    }
    .start();
    let mut h = ngm.handle();
    let layout = Layout::from_size_align(64, 8).expect("valid");
    let p = h.alloc(layout).expect("alloc");
    // SAFETY: live block from this allocator.
    unsafe { h.dealloc(p, layout) };
    drop(h);
    let down = ngm.shutdown();
    assert!(down.clean() && down.balanced());
}

#[test]
fn ngm_builder_clamps_instead_of_erroring() {
    // Out-of-range batch knobs were clamped, never reported.
    let ngm = NgmBuilder {
        service_core: None,
        batch_size: usize::MAX,
        flush_threshold: 0,
        ..NgmBuilder::default()
    }
    .start();
    assert_eq!(ngm.num_shards(), 1);
    assert!(ngm.shutdown().clean());
}

#[test]
fn next_gen_malloc_alias_and_builder_fn() {
    // The old type name and associated builder() entry point.
    let ngm: NextGenMalloc = Ngm::builder().start();
    assert_eq!(ngm.num_shards(), 1);
    let _stack = ngm.orphans(); // shard 0's stack, as it always was
    assert!(ngm.shutdown().clean());
}

#[test]
fn const_allocator_constructors_still_compile() {
    // These must stay const-constructible: they appeared in
    // `#[global_allocator]` statics. Constructing them must not start
    // any runtime.
    static _UNBATCHED: NgmAllocator = NgmAllocator::new();
    static _BATCHED: NgmAllocator = NgmAllocator::batched(16, 8);
    // And the replacement accepts what the shims forwarded to.
    static _CURRENT: NgmAllocator = NgmAllocator::with_config(NgmConfig::new().with_batch(16, 8));
}

#[test]
fn offload_runtime_builder_still_starts() {
    #[derive(Debug, Default)]
    struct Echo;
    impl ngm_offload::Service for Echo {
        type Req = u64;
        type Resp = u64;
        type Post = u64;
        fn call(&mut self, req: u64) -> u64 {
            req + 1
        }
        fn post(&mut self, _msg: u64) {}
    }

    let rt = RuntimeBuilder::new()
        .client_wait(WaitStrategy::Spin)
        .ring_capacity(64)
        .start(Echo);
    let mut client = rt.register_client();
    assert_eq!(client.call(41), 42);
    drop(client);
    let (_svc, stats) = rt.shutdown();
    assert_eq!(stats.calls_served, 1);
    // The modern spelling accepts the same knobs as plain fields.
    let rt = OffloadRuntime::try_start(
        Echo,
        ngm_offload::RuntimeConfig {
            ring_capacity: 64,
            ..ngm_offload::RuntimeConfig::new()
        },
    )
    .expect("spawn");
    let (_svc, stats) = rt.shutdown();
    assert_eq!(stats.calls_served, 0);
}
