//! Property-based tests of the real heaps: arbitrary alloc/touch/free
//! interleavings must preserve block integrity, alignment, and accounting
//! for every heap implementation — plus the magazine invariants of the
//! batched front-end (refill bounded by capacity, stashed addresses
//! unique and class-aligned, flushes lossless, drop returns everything).

use std::alloc::Layout;
use std::ptr::NonNull;

use ngm_core::{CorePlacement, NgmConfig, MAX_BATCH};
use ngm_heap::classes::{class_to_size, size_to_class, SizeClass, NUM_CLASSES};
use ngm_heap::{AggregatedHeap, AllocError, Heap, LockedHeap, SegregatedHeap, ShardedHeap};
use proptest::prelude::*;

/// A scripted heap operation.
#[derive(Debug, Clone)]
enum Op {
    Alloc { size: usize, align_pow: u8 },
    Free { index: usize },
    Write { index: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1usize..20_000, 0u8..7).prop_map(|(size, align_pow)| Op::Alloc { size, align_pow }),
        2 => any::<usize>().prop_map(|index| Op::Free { index }),
        2 => any::<usize>().prop_map(|index| Op::Write { index }),
    ]
}

/// Runs a script against any heap, checking the invariants:
/// * returned blocks are aligned and writable over their full size;
/// * a byte pattern written to a block survives until its free
///   (no aliasing between live blocks);
/// * the heap ends quiescent when everything is freed.
fn check_script<H: Heap>(heap: &mut H, ops: &[Op]) {
    let mut live: Vec<(NonNull<u8>, Layout, u8)> = Vec::new();
    let mut stamp: u8 = 0;
    for op in ops {
        match *op {
            Op::Alloc { size, align_pow } => {
                let layout = Layout::from_size_align(size, 1 << align_pow).expect("valid layout");
                match heap.allocate(layout) {
                    Ok(p) => {
                        assert_eq!(
                            p.as_ptr() as usize % layout.align(),
                            0,
                            "misaligned block for {layout:?}"
                        );
                        stamp = stamp.wrapping_add(1);
                        // SAFETY: fresh block of `size` bytes.
                        unsafe { std::ptr::write_bytes(p.as_ptr(), stamp, size) };
                        live.push((p, layout, stamp));
                    }
                    Err(AllocError::ZeroSize) => unreachable!("sizes start at 1"),
                    Err(e) => panic!("allocation failed: {e}"),
                }
            }
            Op::Free { index } => {
                if live.is_empty() {
                    continue;
                }
                let (p, layout, tag) = live.swap_remove(index % live.len());
                // The pattern must have survived any interleaved traffic.
                for off in [0, layout.size() / 2, layout.size() - 1] {
                    // SAFETY: live block, in-bounds offset.
                    assert_eq!(unsafe { *p.as_ptr().add(off) }, tag, "block corrupted");
                }
                // SAFETY: block from this heap, freed exactly once.
                unsafe { heap.deallocate(p, layout) };
            }
            Op::Write { index } => {
                if live.is_empty() {
                    continue;
                }
                let (p, layout, tag) = live[index % live.len()];
                // Rewrite the same pattern (verifies the block is still
                // writable without disturbing the invariant).
                // SAFETY: live block.
                unsafe { std::ptr::write_bytes(p.as_ptr(), tag, layout.size()) };
            }
        }
    }
    for (p, layout, tag) in live {
        // SAFETY: remaining live blocks, freed exactly once.
        unsafe {
            assert_eq!(*p.as_ptr(), tag);
            heap.deallocate(p, layout);
        }
    }
    assert_eq!(heap.stats().live_blocks, 0, "small blocks leaked");
    assert_eq!(heap.stats().large_allocs, 0, "large blocks leaked");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn segregated_heap_preserves_blocks(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut heap = SegregatedHeap::new(1);
        check_script(&mut heap, &ops);
    }

    #[test]
    fn aggregated_heap_preserves_blocks(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut heap = AggregatedHeap::new(2);
        check_script(&mut heap, &ops);
    }

    #[test]
    fn sharded_heap_preserves_blocks(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let sharded = ShardedHeap::new(2);
        let mut handle = sharded.handle(0);
        check_script(&mut handle, &ops);
    }

    #[test]
    fn locked_heap_matches_inner_semantics(ops in prop::collection::vec(op_strategy(), 1..120)) {
        struct Via(LockedHeap<SegregatedHeap>);
        // SAFETY: defers to LockedHeap, which upholds the contract under
        // its mutex.
        unsafe impl Heap for Via {
            fn allocate(&mut self, l: Layout) -> Result<NonNull<u8>, AllocError> {
                self.0.allocate(l)
            }
            unsafe fn deallocate(&mut self, p: NonNull<u8>, l: Layout) {
                // SAFETY: forwarded contract.
                unsafe { self.0.deallocate(p, l) }
            }
            fn stats(&self) -> ngm_heap::HeapStats {
                self.0.stats()
            }
        }
        let mut heap = Via(LockedHeap::new(SegregatedHeap::new(3)));
        check_script(&mut heap, &ops);
    }

    #[test]
    fn release_empty_never_breaks_live_blocks(
        sizes in prop::collection::vec(1usize..4096, 1..60),
        release_at in 0usize..60,
    ) {
        let mut heap = SegregatedHeap::new(4);
        let mut live = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let layout = Layout::from_size_align(size, 8).expect("valid");
            let p = heap.allocate(layout).expect("alloc");
            // SAFETY: fresh block.
            unsafe { std::ptr::write_bytes(p.as_ptr(), (i % 251) as u8, size) };
            live.push((p, layout, (i % 251) as u8));
            if i == release_at {
                // Free half, run housekeeping, and verify survivors.
                let half = live.len() / 2;
                for (p, l, _) in live.drain(..half) {
                    // SAFETY: live block.
                    unsafe { heap.deallocate(p, l) };
                }
                heap.release_empty();
            }
        }
        for (p, l, tag) in live {
            // SAFETY: survivors are still live.
            unsafe {
                assert_eq!(*p.as_ptr(), tag, "housekeeping corrupted a block");
                heap.deallocate(p, l);
            }
        }
        prop_assert_eq!(heap.stats().live_blocks, 0);
    }
}

/// A scripted operation against a batched [`ngm_core::NgmHandle`].
#[derive(Debug, Clone)]
enum MagOp {
    Alloc { size: usize },
    Free { index: usize },
    Flush,
}

fn mag_op_strategy() -> impl Strategy<Value = MagOp> {
    prop_oneof![
        4 => (1usize..8192).prop_map(|size| MagOp::Alloc { size }),
        3 => any::<usize>().prop_map(|index| MagOp::Free { index }),
        1 => Just(MagOp::Flush),
    ]
}

proptest! {
    // Each case spins up a real runtime (service thread included), so
    // keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn magazine_refill_bounded_unique_and_aligned(
        batch in 1usize..=2 * MAX_BATCH, // past MAX_BATCH: must clamp
        flush in 1usize..=MAX_BATCH,
        size in 1usize..8192,
    ) {
        // `sanitized()` clamps the deliberately out-of-range batch the
        // way the old builder did; `build()` alone would reject it.
        let ngm = NgmConfig::new()
            .with_batch(batch, flush)
            .sanitized()
            .build()
            .expect("sanitized config is valid");
        let mut h = ngm.handle();
        let layout = Layout::from_size_align(size, 8).expect("valid");
        let class = size_to_class(size).expect("small size has a class");
        let p = h.alloc(layout).expect("alloc");

        // Refill never exceeds the (clamped) configured capacity.
        let effective = batch.clamp(1, MAX_BATCH);
        prop_assert!(
            h.magazine_len(class) < effective,
            "magazine holds {} after one pop, capacity {}",
            h.magazine_len(class),
            effective
        );
        prop_assert!(h.magazine_occupancy() <= effective);

        // Stashed addresses are unique, distinct from the block just
        // handed out, and aligned like every block of their class.
        let class_size = class_to_size(class) as usize;
        let class_align = 1usize << class_size.trailing_zeros().min(4);
        let stash = h.magazine_contents(class).to_vec();
        let mut seen = std::collections::HashSet::new();
        seen.insert(p.as_ptr() as usize);
        for &addr in &stash {
            prop_assert!(seen.insert(addr), "duplicate stashed address {addr:#x}");
            prop_assert_eq!(addr % class_align, 0, "stashed address misaligned for class");
        }
        prop_assert_eq!(p.as_ptr() as usize % layout.align(), 0);

        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout) };
        drop(h);
        let down = ngm.shutdown();
        prop_assert_eq!(down.service.allocs, down.service.frees);
        prop_assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn batched_handle_never_loses_a_block(
        batch in 1usize..=MAX_BATCH,
        flush in 1usize..=MAX_BATCH,
        ops in prop::collection::vec(mag_op_strategy(), 1..80),
    ) {
        let ngm = NgmConfig::new()
            .with_batch(batch, flush)
            .build()
            .expect("valid config");
        let mut h = ngm.handle();
        let mut live: Vec<(NonNull<u8>, Layout, u8)> = Vec::new();
        let mut stamp: u8 = 0;
        let mut app_allocs = 0u64;
        for op in &ops {
            match *op {
                MagOp::Alloc { size } => {
                    let layout = Layout::from_size_align(size, 8).expect("valid");
                    let p = h.alloc(layout).expect("alloc");
                    app_allocs += 1;
                    stamp = stamp.wrapping_add(1);
                    // SAFETY: fresh block of `size` bytes.
                    unsafe { std::ptr::write_bytes(p.as_ptr(), stamp, size) };
                    live.push((p, layout, stamp));
                }
                MagOp::Free { index } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (p, layout, tag) = live.swap_remove(index % live.len());
                    // Magazines and flush buffers must never alias a
                    // live block: the pattern survives until its free.
                    for off in [0, layout.size() / 2, layout.size() - 1] {
                        // SAFETY: live block, in-bounds offset.
                        prop_assert_eq!(unsafe { *p.as_ptr().add(off) }, tag, "block corrupted");
                    }
                    // SAFETY: block from this handle, freed exactly once.
                    unsafe { h.dealloc(p, layout) };
                }
                MagOp::Flush => {
                    let buffered = h.buffered_frees();
                    h.flush_frees();
                    prop_assert_eq!(h.buffered_frees(), 0);
                    // A flush is one post carrying all buffered frees;
                    // none may be dropped on the floor.
                    prop_assert!(h.pending_frees() >= buffered || buffered == 0);
                }
            }
        }
        for (p, layout, tag) in live {
            // SAFETY: remaining live blocks, freed exactly once.
            unsafe {
                prop_assert_eq!(*p.as_ptr(), tag);
                h.dealloc(p, layout);
            }
        }
        let stash_at_drop = h.magazine_occupancy() as u64;
        drop(h); // Flushes the buffer, returns every stashed address.
        let down = ngm.shutdown();
        // Flush preserved every buffered free and drop returned the whole
        // stash: the books balance exactly.
        prop_assert_eq!(down.service.allocs, down.service.frees);
        prop_assert_eq!(down.service.magazine_returned, stash_at_drop);
        prop_assert_eq!(down.service.allocs - down.service.magazine_returned, app_allocs);
        prop_assert_eq!(down.heap.live_blocks, 0);
        prop_assert_eq!(down.heap.live_bytes, 0);
        prop_assert_eq!(down.runtime.magazine_occupancy, 0);
    }
}

/// A scripted operation against a multi-shard tier whose class → shard
/// routing map is migrated mid-script (the elastic controller's resync
/// primitive, driven deterministically).
#[derive(Debug, Clone)]
enum MigOp {
    Alloc { size: usize },
    Free { index: usize },
    Migrate { class_sel: usize, shard_sel: usize },
}

fn mig_op_strategy() -> impl Strategy<Value = MigOp> {
    prop_oneof![
        4 => (1usize..8192).prop_map(|size| MigOp::Alloc { size }),
        3 => any::<usize>().prop_map(|index| MigOp::Free { index }),
        2 => (any::<usize>(), any::<usize>())
            .prop_map(|(class_sel, shard_sel)| MigOp::Migrate { class_sel, shard_sel }),
    ]
}

proptest! {
    // Each case spins up a real 4-shard tier, so keep the count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary class → shard migrations interleaved with traffic never
    /// break the address-routing invariant: a block frees back to the
    /// shard that allocated it no matter how routing moved since, so
    /// every shard's books balance exactly at shutdown. This is the
    /// property the elastic tier leans on — spawn/retire only ever
    /// rewrites the *allocation* map.
    #[test]
    fn migrations_never_unbalance_a_shard(
        ops in prop::collection::vec(mig_op_strategy(), 1..120),
    ) {
        const SHARDS: usize = 4;
        let ngm = NgmConfig::new()
            .with_shards(SHARDS)
            .with_batch(8, 4)
            .with_placement(CorePlacement::Unpinned)
            .build()
            .expect("valid config");
        let mut h = ngm.handle();
        let mut live: Vec<(NonNull<u8>, Layout, u8)> = Vec::new();
        let mut stamp: u8 = 0;
        for op in &ops {
            match *op {
                MigOp::Alloc { size } => {
                    let layout = Layout::from_size_align(size, 8).expect("valid");
                    let p = h.alloc(layout).expect("alloc");
                    stamp = stamp.wrapping_add(1);
                    // SAFETY: fresh block of `size` bytes.
                    unsafe { std::ptr::write_bytes(p.as_ptr(), stamp, size) };
                    live.push((p, layout, stamp));
                }
                MigOp::Free { index } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (p, layout, tag) = live.swap_remove(index % live.len());
                    // The block must be intact even if its class was
                    // rerouted (possibly several times) since the alloc.
                    for off in [0, layout.size() / 2, layout.size() - 1] {
                        // SAFETY: live block, in-bounds offset.
                        prop_assert_eq!(unsafe { *p.as_ptr().add(off) }, tag, "block corrupted");
                    }
                    // SAFETY: block from this handle, freed exactly once.
                    unsafe { h.dealloc(p, layout) };
                }
                MigOp::Migrate { class_sel, shard_sel } => {
                    let class = SizeClass((class_sel % NUM_CLASSES) as u16);
                    let shard = shard_sel % SHARDS;
                    h.route_class_to(class, shard);
                    prop_assert_eq!(h.class_route(class), shard);
                }
            }
        }
        for (p, layout, tag) in live {
            // SAFETY: remaining live blocks, freed exactly once.
            unsafe {
                prop_assert_eq!(*p.as_ptr(), tag);
                h.dealloc(p, layout);
            }
        }
        drop(h); // Flushes buffered frees, returns the magazine stash.
        let down = ngm.shutdown();
        prop_assert!(down.clean(), "a shard reported an error");
        // The per-shard form of the invariant, not just the global sum:
        // each shard saw exactly as many frees as allocs, which can only
        // hold if every free found the shard that owns its address.
        for s in &down.shards {
            prop_assert_eq!(
                s.service.allocs, s.service.frees,
                "shard {} unbalanced after migrations", s.shard
            );
        }
        prop_assert!(down.balanced());
        prop_assert_eq!(down.heap.live_blocks, 0);
    }
}
