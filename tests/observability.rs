//! Observability contract tests: span reconstruction, phase coverage,
//! and the Prometheus exposition format of the live metrics endpoint.
//!
//! Three layers are pinned here. (1) **Spans**: any interleaving of span
//! trace events — synthetic or drained from a live tier — reconstructs
//! into well-nested, phase-monotonic spans. (2) **Coverage**: the five
//! phase histograms partition the synchronous round trip, so their sums
//! must land within 10% of `ngm_call_cycles`' sum (the acceptance bar;
//! the stamps are clamped, so the identity is exact by construction).
//! (3) **Exposition**: `to_prometheus_text()` on a live snapshot is
//! valid text format 0.0.4 — every family announced by HELP+TYPE, every
//! series unique, every value numeric. (4) **Windows**: the rolling
//! heat window's edge cases (no frames, one cumulative frame,
//! wrap-around past capacity), and the rule that the elastic controller
//! must fall back to the static policy while any serving shard's window
//! is unsettled.
//!
//! The `faultinject` module adds the failure-path contracts: a
//! dropped-then-retried request is *two* spans (ids never alias across
//! retries), and a wedged shard trips the blackbox flight recorder into
//! a dump that archives the shard's last-K events and a heat snapshot.

use std::alloc::Layout;
use std::collections::{HashMap, HashSet};

use ngm_core::{CorePlacement, NgmConfig, ScaleDecision};
use ngm_offload::{PHASES, PHASE_NAMES};
use ngm_telemetry::span::{call_span_id, reconstruct, SpanPhase, POST_SPAN_BIT};
use ngm_telemetry::trace::{TraceEvent, TraceEventKind};
use ngm_telemetry::window::{HeatFrame, HeatWindow};
use proptest::prelude::*;

/// Deterministic generator state for the property tests (the proptest
/// shim drives `seed`; everything downstream is a pure function of it).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// The phase sequence of one synthetic span: a lifecycle prefix, or a
/// prefix cut short by a terminal retract/abandon.
fn synthetic_phases(progress: u64) -> Vec<SpanPhase> {
    match progress % 8 {
        0 => vec![SpanPhase::Enqueue],
        1 => vec![SpanPhase::Enqueue, SpanPhase::RingResident],
        2 => vec![
            SpanPhase::Enqueue,
            SpanPhase::RingResident,
            SpanPhase::Claimed,
        ],
        3 => vec![
            SpanPhase::Enqueue,
            SpanPhase::RingResident,
            SpanPhase::Claimed,
            SpanPhase::Served,
        ],
        4 => vec![
            SpanPhase::Enqueue,
            SpanPhase::RingResident,
            SpanPhase::Claimed,
            SpanPhase::Served,
            SpanPhase::Published,
        ],
        5 => vec![
            SpanPhase::Enqueue,
            SpanPhase::RingResident,
            SpanPhase::Claimed,
            SpanPhase::Served,
            SpanPhase::Published,
            SpanPhase::Observed,
        ],
        6 => vec![
            SpanPhase::Enqueue,
            SpanPhase::RingResident,
            SpanPhase::Retracted,
        ],
        _ => vec![
            SpanPhase::Enqueue,
            SpanPhase::RingResident,
            SpanPhase::Claimed,
            SpanPhase::Abandoned,
        ],
    }
}

fn span_event(tsc: u64, thread: u32, id: u64, phase: SpanPhase) -> TraceEvent {
    TraceEvent {
        tsc,
        thread,
        kind: TraceEventKind::Span,
        a: id,
        b: phase.code(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concurrent spans emit their phase events interleaved and the
    /// drain order is arbitrary — reconstruction must still yield one
    /// well-nested, phase-monotonic span per id, with the exact phase
    /// set each span emitted.
    #[test]
    fn interleaved_concurrent_spans_reconstruct_well_nested(
        spans in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = Lcg(seed);
        let mut expected: HashMap<u64, Vec<SpanPhase>> = HashMap::new();
        let mut pending: Vec<(u64, u32, std::vec::IntoIter<SpanPhase>)> = (0..spans)
            .map(|i| {
                let thread = (rng.next() % 4) as u32;
                let id = call_span_id(thread, i as u64 + 1);
                let phases = synthetic_phases(rng.next());
                expected.insert(id, phases.clone());
                (id, thread, phases.into_iter())
            })
            .collect();

        // Interleave: each round, a random still-live span emits its
        // next phase at a strictly later timestamp.
        let mut events = Vec::new();
        let mut tsc = 100u64;
        while !pending.is_empty() {
            let pick = (rng.next() as usize) % pending.len();
            let (id, thread, ref mut it) = pending[pick];
            match it.next() {
                Some(phase) => {
                    tsc += 1 + rng.next() % 50;
                    events.push(span_event(tsc, thread, id, phase));
                }
                None => {
                    pending.swap_remove(pick);
                }
            }
        }
        // Scramble the drain order on top of the interleaving.
        for i in (1..events.len()).rev() {
            events.swap(i, (rng.next() as usize) % (i + 1));
        }

        let got = reconstruct(&events);
        prop_assert_eq!(got.len(), expected.len());
        for span in &got {
            prop_assert!(span.well_nested(), "span {:#x}: {:?}", span.id, span.phases);
            prop_assert!(span.phase_monotonic(), "span {:#x}: {:?}", span.id, span.phases);
            let want = &expected[&span.id];
            let got_phases: Vec<SpanPhase> = span.phases.iter().map(|&(p, _)| p).collect();
            prop_assert_eq!(&got_phases, want, "phase set round-trips");
            prop_assert_eq!(
                span.completed(),
                want.last().is_some_and(|p| p.is_terminal()),
            );
        }
    }
}

/// Drains a live single-shard tier's trace and reconstructs it: every
/// span the runtime emitted — calls and posts alike — must be
/// well-nested and phase-monotonic, and the synchronous calls must run
/// the full enqueue→observed lifecycle.
#[test]
fn live_trace_reconstructs_into_well_nested_spans() {
    const ROUNDS: usize = 256;
    let ngm = NgmConfig::new()
        .with_placement(CorePlacement::Unpinned)
        .with_trace_capacity(16_384)
        .build()
        .expect("valid config");
    let mut h = ngm.handle();
    for i in 0..ROUNDS {
        let l = Layout::from_size_align(16 + (i % 8) * 16, 8).expect("valid");
        let p = h.alloc(l).expect("alloc");
        // SAFETY: block just allocated, freed once.
        unsafe { h.dealloc(p, l) };
    }
    drop(h);

    let drain = ngm.telemetry().drain_trace();
    let spans = reconstruct(&drain.events);
    let calls: Vec<_> = spans.iter().filter(|s| s.id & POST_SPAN_BIT == 0).collect();
    assert!(!calls.is_empty(), "unbatched allocs produce call spans");
    let mut ids = HashSet::new();
    for s in &spans {
        assert!(s.well_nested(), "span {:#x}: {:?}", s.id, s.phases);
        assert!(s.phase_monotonic(), "span {:#x}: {:?}", s.id, s.phases);
        assert!(ids.insert(s.id), "span ids are unique");
    }
    // Every completed call observed its response (nothing retracted or
    // abandoned on a healthy tier) after a full six-phase lifecycle.
    for s in calls.iter().filter(|s| s.completed()) {
        assert_eq!(
            s.phases.last().map(|&(p, _)| p),
            Some(SpanPhase::Observed),
            "healthy calls end observed: {:?}",
            s.phases
        );
        if s.at(SpanPhase::Enqueue).is_some() {
            assert_eq!(s.phases.len(), 6, "full lifecycle: {:?}", s.phases);
            assert!(s.total_cycles().is_some());
        }
    }
    let down = ngm.shutdown();
    assert!(down.clean() && down.balanced());
}

/// Acceptance smoke: the five phase sums partition `ngm_call_cycles`
/// within 10% on a live tier (exact by construction; the slack covers
/// histogram bucketing).
#[test]
fn phase_histograms_cover_the_call_histogram() {
    const ROUNDS: usize = 4_000;
    let ngm = NgmConfig::new()
        .with_placement(CorePlacement::Unpinned)
        .build()
        .expect("valid config");
    let mut h = ngm.handle();
    for i in 0..ROUNDS {
        let l = Layout::from_size_align(16 + (i % 8) * 16, 8).expect("valid");
        let p = h.alloc(l).expect("alloc");
        // SAFETY: block just allocated, freed once.
        unsafe { h.dealloc(p, l) };
    }
    drop(h);

    let m = ngm.metrics();
    let call_sum = m
        .get_histogram("ngm_call_cycles")
        .expect("call histogram exported")
        .sum();
    let phase_sum: u64 = PHASE_NAMES
        .iter()
        .map(|name| {
            m.get_histogram(&format!("ngm_phase_{name}_cycles"))
                .expect("every phase histogram exported")
                .sum()
        })
        .sum();
    assert_eq!(PHASE_NAMES.len(), PHASES);
    let coverage = phase_sum as f64 / call_sum.max(1) as f64;
    assert!(
        (coverage - 1.0).abs() < 0.10,
        "phase sums cover the round trip: phase_sum={phase_sum} call_sum={call_sum} ({coverage:.4})"
    );
    let down = ngm.shutdown();
    assert!(down.clean() && down.balanced());
}

/// Validates Prometheus text exposition format 0.0.4 over a rendered
/// snapshot, panicking with the violation. The full rule set lives in
/// [`ngm_telemetry::export::validate_exposition`] — the same validator
/// the live `/metrics` endpoint tests and the `repro obs` experiment
/// run — so this suite and the observer can never drift apart on what
/// "valid" means.
fn validate_exposition(text: &str) {
    if let Err(why) = ngm_telemetry::export::validate_exposition(text) {
        panic!("invalid exposition: {why}");
    }
}

/// Every series the live tier exports — counters, histograms-as-
/// summaries, and the per-shard labeled heat gauges — renders as valid
/// exposition text, with the convention-prefixed `ngm_` names.
#[test]
fn live_metrics_render_valid_exposition_text() {
    let ngm = NgmConfig::new()
        .with_shards(2)
        .with_placement(CorePlacement::Unpinned)
        .build()
        .expect("valid config");
    let mut h = ngm.handle();
    for i in 0..64usize {
        let l = Layout::from_size_align(16 + (i % 4) * 32, 8).expect("valid");
        let p = h.alloc(l).expect("alloc");
        // SAFETY: block just allocated, freed once.
        unsafe { h.dealloc(p, l) };
    }
    drop(h);

    let m = ngm.metrics();
    let text = m.to_prometheus_text();
    validate_exposition(&text);
    for needle in [
        "# TYPE ngm_calls_total counter",
        "# TYPE ngm_call_cycles summary",
        "# TYPE ngm_phase_queue_cycles summary",
        "# TYPE ngm_shard_heat_score gauge",
        "ngm_fallback_allocs_total",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // Every exported family follows the `ngm_` naming convention; the
    // lone exception is the conventional `process_start_time_seconds`
    // Prometheus itself expects from every scrape target.
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().expect("name");
            assert!(
                name.starts_with("ngm_") || name.starts_with("process_"),
                "unprefixed family: {name}"
            );
        }
    }
    // The scrape-target conventions are present.
    for needle in [
        "ngm_up 1",
        "ngm_build_info{",
        "process_start_time_seconds",
        "ngm_obs_scrape_cycles_total",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    let down = ngm.shutdown();
    assert!(down.clean() && down.balanced());
}

#[test]
fn exposition_validator_rejects_malformed_text() {
    let ok = "# HELP ngm_x_total Cumulative count of x events.\n# TYPE ngm_x_total counter\nngm_x_total 3\n";
    validate_exposition(ok);
    for bad in [
        // Sample with no announced family.
        "ngm_y_total 3\n",
        // TYPE without HELP.
        "# TYPE ngm_x_total counter\nngm_x_total 3\n",
        // Duplicate series.
        "# HELP ngm_x_total h\n# TYPE ngm_x_total counter\nngm_x_total 3\nngm_x_total 4\n",
        // Non-numeric value.
        "# HELP ngm_x_total h\n# TYPE ngm_x_total counter\nngm_x_total three\n",
    ] {
        assert!(
            std::panic::catch_unwind(|| validate_exposition(bad)).is_err(),
            "validator accepted malformed text: {bad:?}"
        );
    }
}

/// A cumulative heat frame carrying only a timestamp and a call count.
fn heat_frame(tsc: u64, calls: u64) -> HeatFrame {
    HeatFrame {
        tsc,
        calls,
        ..HeatFrame::default()
    }
}

/// The rolling window's edge cases, in lifecycle order: no frames (no
/// aggregate at all), one frame (zero baseline — the aggregate is
/// cumulative-since-start), and wrap-around (the baseline slides, so a
/// counter that stopped moving reads as zero recent activity).
#[test]
fn heat_window_edges_zero_single_and_wrap() {
    let mut w = HeatWindow::new(0); // clamps to the 2-frame minimum
    assert_eq!(w.capacity(), 2, "a window needs a baseline and a head");
    assert!(w.is_empty());
    assert!(w.windowed().is_none(), "no frames, no aggregate");

    w.push(heat_frame(100, 40));
    let d = w.windowed().expect("one frame suffices");
    assert_eq!(d.calls, 40, "single frame reads cumulative");
    assert_eq!(d.span_tsc, 100, "zero baseline spans from shard start");

    w.push(heat_frame(200, 90));
    assert_eq!(w.windowed().expect("two frames").calls, 50);

    // Two more pushes wrap past capacity: only the idle era remains.
    w.push(heat_frame(300, 90));
    w.push(heat_frame(400, 90));
    assert_eq!(w.len(), 2, "capacity bounds retained frames");
    let d = w.windowed().expect("full window");
    assert_eq!(d.calls, 0, "hot an hour ago must read cold now");
    assert_eq!(d.span_tsc, 100, "span covers the retained frames only");
}

/// The elastic controller refuses to act on an unsettled window: zero
/// frames or a single cumulative frame — however extreme — hold the
/// static shape; the decision fires only once a second frame gives the
/// window a real baseline.
#[test]
fn unsettled_heat_windows_force_the_static_scaling_policy() {
    let ngm = NgmConfig::new()
        .with_shards(1)
        .elastic(1, 2)
        .with_placement(CorePlacement::Unpinned)
        .build()
        .expect("valid config");

    // Zero-frame edge: nothing to read.
    assert_eq!(ngm.scaling_tick(), ScaleDecision::Hold);

    // Single-frame edge: a cumulative-since-start sample has no
    // baseline, so no amount of heat in it may trigger a scale.
    ngm.inject_heat(0, heat_frame(1, 1_000_000));
    for _ in 0..4 {
        assert_eq!(ngm.scaling_tick(), ScaleDecision::Hold);
    }
    assert_eq!(
        ngm.scale_counts(),
        (0, 0),
        "static fallback spawned nothing"
    );

    // A second frame settles the window and the same load now counts
    // (two ticks: the sustain streak arms, then fires).
    ngm.inject_heat(0, heat_frame(2, 2_000_000));
    assert_eq!(ngm.scaling_tick(), ScaleDecision::Hold, "streak arming");
    assert_eq!(ngm.scaling_tick(), ScaleDecision::ScaleUp { shard: 1 });
    assert_eq!(ngm.scale_counts(), (1, 0));

    let down = ngm.shutdown();
    assert!(down.clean() && down.balanced());
}

#[cfg(feature = "faultinject")]
mod faultinject {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use ngm_offload::{OffloadRuntime, RuntimeConfig, Service, ServiceError};

    #[derive(Debug)]
    struct Echo;

    impl Service for Echo {
        type Req = u64;
        type Resp = u64;
        type Post = u64;

        fn call(&mut self, req: u64) -> u64 {
            req * 2
        }

        fn post(&mut self, _msg: u64) {}
    }

    /// A dropped-then-retried request is **two spans**: the drop ends
    /// the first span at `Retracted`, and the retry — same client, same
    /// slot — mints a fresh id from the bumped publish sequence and runs
    /// the full lifecycle to `Observed`. Span ids never alias across
    /// retries by construction.
    #[test]
    fn dropped_then_retried_call_is_two_distinct_spans() {
        let cfg = RuntimeConfig {
            core: None,
            deadline: Some(Duration::from_millis(20)),
            trace_capacity: 4096,
            ..RuntimeConfig::new()
        };
        let rt = OffloadRuntime::try_start(Echo, cfg).expect("runtime starts");
        let mut c = rt.register_client();

        rt.fault_state().set_drop_every(1);
        let r = c.try_call(7);
        assert!(
            matches!(r, Err(ServiceError::Deadline { .. })),
            "dropped response deadlines, got {r:?}"
        );
        rt.fault_state().set_drop_every(0);
        assert_eq!(c.try_call(7), Ok(14), "same slot recovers");
        drop(c);

        let drain = rt.telemetry().drain_trace();
        rt.try_shutdown().expect("clean shutdown");
        let spans = reconstruct(&drain.events);
        let calls: Vec<_> = spans.iter().filter(|s| s.id & POST_SPAN_BIT == 0).collect();
        assert_eq!(calls.len(), 2, "one dropped + one served: {spans:?}");
        assert_ne!(calls[0].id, calls[1].id, "retry minted a fresh span id");
        let retracted = calls
            .iter()
            .find(|s| s.at(SpanPhase::Retracted).is_some())
            .expect("the dropped request's span ends retracted");
        assert!(
            retracted.at(SpanPhase::Claimed).is_none(),
            "a dropped request is never claimed: {retracted:?}"
        );
        let observed = calls
            .iter()
            .find(|s| s.at(SpanPhase::Observed).is_some())
            .expect("the retried request's span ends observed");
        for s in [retracted, observed] {
            assert!(s.well_nested() && s.phase_monotonic(), "{s:?}");
            assert!(s.completed());
        }
    }

    /// The span contract extends to the completion-based front-end: a
    /// future that was *polled* (parked on the slot waker) and then
    /// dropped — its submission retracted when the handle settles — is
    /// **two spans**, exactly like the blocking drop-then-retry. The
    /// retracted refill's span ends at `Retracted` without ever being
    /// `Claimed`, and the retried allocation runs the full lifecycle to
    /// `Observed` under a fresh id.
    #[test]
    fn future_polled_then_retracted_is_two_spans() {
        use ngm_core::SubmissionQueue;
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::atomic::AtomicUsize;
        use std::task::{Context, Poll, Wake, Waker};

        struct Flag(AtomicUsize);
        impl Wake for Flag {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }

        let ngm = Arc::new(
            NgmConfig::new()
                .with_placement(CorePlacement::Unpinned)
                .with_batch(2, 1)
                .with_trace_capacity(4096)
                .build()
                .expect("valid config"),
        );
        let l = Layout::from_size_align(64, 8).expect("valid");

        // Wedge the only shard so the future's refill submission is
        // never claimed: the poll below genuinely parks, and the
        // retract at settle time is guaranteed to win the CAS.
        ngm.fault_state(0).set_wedged(true);
        {
            let sq = SubmissionQueue::new(ngm.handle());
            let mut fut = sq.alloc(l).expect("submission accepted");
            let flag = Arc::new(Flag(AtomicUsize::new(0)));
            let waker = Waker::from(Arc::clone(&flag));
            let mut cx = Context::from_waker(&waker);
            // SAFETY: stack-pinned for the whole block.
            let polled = unsafe { Pin::new_unchecked(&mut fut) }.poll(&mut cx);
            assert!(polled.is_pending(), "wedged refill cannot complete");
            drop(fut); // cancel the ticket
            drop(sq); // handle settles: nb_retract wins → Retracted span
        }
        ngm.fault_state(0).set_wedged(false);

        // The retry: a fresh queue completes a future the normal way.
        {
            let sq = SubmissionQueue::new(ngm.handle());
            let mut fut = sq.alloc(l).expect("submission accepted");
            let flag = Arc::new(Flag(AtomicUsize::new(0)));
            let waker = Waker::from(Arc::clone(&flag));
            let mut cx = Context::from_waker(&waker);
            let p = loop {
                // SAFETY: stack-pinned for the whole loop.
                match unsafe { Pin::new_unchecked(&mut fut) }.poll(&mut cx) {
                    Poll::Ready(r) => break r.expect("alloc"),
                    Poll::Pending => std::thread::yield_now(),
                }
            };
            drop(fut);
            // SAFETY: block from this queue's tier, relinquished here.
            unsafe { sq.free(p, l).expect("free accepted") };
        }

        let drain = ngm.telemetry().drain_trace();
        let spans = reconstruct(&drain.events);
        let calls: Vec<_> = spans.iter().filter(|s| s.id & POST_SPAN_BIT == 0).collect();
        let retracted = calls
            .iter()
            .find(|s| s.at(SpanPhase::Retracted).is_some())
            .expect("the settled submission's span ends retracted");
        assert!(
            retracted.at(SpanPhase::Claimed).is_none(),
            "a wedged (never-claimed) refill must not show Claimed: {retracted:?}"
        );
        let observed = calls
            .iter()
            .find(|s| s.at(SpanPhase::Observed).is_some())
            .expect("the retried allocation's span ends observed");
        assert_ne!(retracted.id, observed.id, "retry minted a fresh span id");
        for s in [retracted, observed] {
            assert!(s.well_nested() && s.phase_monotonic(), "{s:?}");
            assert!(s.completed());
        }

        let ngm = Arc::into_inner(ngm).expect("all clones dropped");
        let down = ngm.shutdown();
        assert!(down.clean() && down.balanced());
    }

    /// Acceptance: a wedged shard trips the blackbox flight recorder.
    /// The dump — mirrored to `NGM_BLACKBOX_PATH` — must carry the
    /// wedged shard's last-K trace events and the heat snapshot, and the
    /// allocation itself still succeeds by rerouting.
    #[test]
    fn wedged_shard_writes_a_blackbox_dump() {
        let path =
            std::env::temp_dir().join(format!("ngm-blackbox-test-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("NGM_BLACKBOX_PATH", &path);

        let ngm = Arc::new(
            NgmConfig::new()
                .with_shards(2)
                .with_placement(CorePlacement::Unpinned)
                .with_deadline(Some(Duration::from_millis(10)))
                .with_trace_capacity(4096)
                .with_blackbox(true)
                .build()
                .expect("valid config"),
        );
        let mut h = ngm.handle();
        let l = Layout::from_size_align(64, 8).expect("valid");
        let class = ngm_heap::size_to_class(64).expect("class exists");
        let victim = h.class_route(class);

        // Warm the victim so its trace ring holds span events, and give
        // the heat windows a frame so the dump's snapshot has data.
        for _ in 0..16 {
            let p = h.alloc(l).expect("healthy alloc");
            // SAFETY: block just allocated, freed once.
            unsafe { h.dealloc(p, l) };
        }
        let _ = ngm.heat_report();

        // No rate-limiter reset needed: the limiter is per-tier now, and
        // a fresh tier's first dump always passes it.
        ngm.fault_state(victim).set_wedged(true);
        let p = h.alloc(l).expect("tier reroutes around the wedge");
        ngm.fault_state(victim).set_wedged(false);
        // SAFETY: live block from this handle's allocator.
        unsafe { h.dealloc(p, l) };
        drop(h);

        let dump = std::fs::read_to_string(&path).expect("blackbox file written");
        assert!(
            dump.contains(&format!("=== ngm blackbox: deadline (shard {victim}) ===")),
            "dump names the failure and the wedged shard:\n{dump}"
        );
        assert!(dump.contains("--- shard states ---"), "{dump}");
        assert!(
            dump.contains(&format!("trace events (shard {victim})")),
            "dump archives the wedged shard's events:\n{dump}"
        );
        assert!(
            dump.contains("phase="),
            "the wedged shard's span events are decoded:\n{dump}"
        );
        assert!(dump.contains("--- heat snapshot ---"), "{dump}");
        assert!(
            dump.contains("shard 0:") && dump.contains("score="),
            "heat snapshot carries per-shard scores:\n{dump}"
        );
        assert!(dump.contains("=== end blackbox ==="), "{dump}");

        // The same dump is retained in the tier's in-memory ring (what
        // the observer's `/blackbox` endpoint serves).
        let dumps = ngm.blackbox_dumps();
        assert!(!dumps.is_empty(), "dump ring retained the emission");
        let last = dumps.last().expect("nonempty");
        assert_eq!(last.shard, victim);
        assert_eq!(last.reason, "deadline");

        std::env::remove_var("NGM_BLACKBOX_PATH");
        let _ = std::fs::remove_file(&path);
        let ngm = Arc::into_inner(ngm).expect("all clones dropped");
        let down = ngm.shutdown();
        assert!(down.clean(), "unwedged tier shuts down in order");
        assert_eq!(down.heap.live_blocks, 0, "nothing stranded");
    }
}
