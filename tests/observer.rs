//! Live-observer contract tests: the HTTP endpoints against a running
//! tier, the flight recorder against real scrapes, and readiness
//! against lifecycle edges.
//!
//! The endpoint/parsing mechanics (partial requests, oversized request
//! lines, RST-free teardown) are unit-tested in
//! `ngm_telemetry::server`; this suite pins the *wiring*: `/metrics`
//! renders validator-clean exposition under concurrent scrapes while
//! traffic runs, `/readyz` flips as shards wedge, `/healthz` and the
//! JSON endpoints answer sensibly, unknown paths 404, and a configured
//! recording replays into parseable frames whose shape matches the
//! tier.

use std::alloc::Layout;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ngm_core::{CorePlacement, NgmConfig, ObserverConfig};
use ngm_telemetry::export::validate_exposition;
use ngm_telemetry::recorder::read_recording;
use ngm_telemetry::server::http_get;

fn churn(h: &mut ngm_core::NgmHandle, rounds: usize) {
    for i in 0..rounds {
        let l = Layout::from_size_align(16 + (i % 8) * 16, 8).expect("valid");
        let p = h.alloc(l).expect("alloc");
        // SAFETY: block just allocated, freed once.
        unsafe { h.dealloc(p, l) };
    }
}

/// `/metrics` passes the shared exposition validator, `/healthz` is 200,
/// the JSON endpoints return their envelopes, and an unknown path 404s.
#[test]
fn endpoints_answer_on_a_live_tier() {
    let ngm = Arc::new(
        NgmConfig::new()
            .with_shards(2)
            .with_placement(CorePlacement::Unpinned)
            .with_trace_capacity(4096)
            .build()
            .expect("valid config"),
    );
    let obs = ngm
        .serve_observer(ObserverConfig::new("127.0.0.1:0"))
        .expect("observer binds");
    let addr = obs.addr();

    let mut h = ngm.handle();
    churn(&mut h, 256);
    drop(h);

    let (status, body) = http_get(addr, "/metrics").expect("metrics reachable");
    assert_eq!(status, 200);
    validate_exposition(&body).expect("live /metrics is valid exposition");
    assert!(body.contains("ngm_up 1"), "liveness convention exported");
    assert!(body.contains("ngm_build_info{"), "build info exported");

    let (status, body) = http_get(addr, "/healthz").expect("healthz reachable");
    assert_eq!((status, body.trim()), (200, "ok"));

    let (status, body) = http_get(addr, "/heat").expect("heat reachable");
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"shards\":["), "heat envelope: {body}");
    assert!(body.contains("\"state\":\"serving\""), "{body}");

    let (status, body) = http_get(addr, "/spans").expect("spans reachable");
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"spans\":["), "spans envelope: {body}");
    assert!(body.contains("\"phases\":["), "spans carry phases: {body}");

    let (status, body) = http_get(addr, "/blackbox").expect("blackbox reachable");
    assert_eq!(status, 200);
    assert!(
        body.starts_with("{\"dumps\":["),
        "blackbox envelope: {body}"
    );

    let (status, _) = http_get(addr, "/nonsense").expect("404 still answers");
    assert_eq!(status, 404);

    obs.stop();
    let ngm = Arc::into_inner(ngm).expect("observer released its references");
    let down = ngm.shutdown();
    assert!(down.clean() && down.balanced());
}

/// `/readyz` is 200 on a healthy tier and flips to 503 (degraded) when a
/// serving shard's thread dies under it. The all-dormant NotReady edge
/// is pinned by the pure `derive_readiness` unit tests — a live tier
/// always starts serving.
#[test]
fn readyz_degrades_when_a_serving_shard_wedges() {
    let ngm = Arc::new(
        NgmConfig::new()
            .with_shards(2)
            .with_placement(CorePlacement::Unpinned)
            .build()
            .expect("valid config"),
    );
    let obs = ngm
        .serve_observer(ObserverConfig::new("127.0.0.1:0"))
        .expect("observer binds");
    let addr = obs.addr();

    let (status, body) = http_get(addr, "/readyz").expect("readyz reachable");
    assert_eq!((status, body.trim()), (200, "ready"));

    // Kill shard 1's thread out from under the tier: lifecycle still
    // says Serving, so readiness must report the wedge.
    ngm.stop_shard(1);
    let deadline = Instant::now() + Duration::from_secs(5);
    while !ngm.shard_finished(1) {
        assert!(Instant::now() < deadline, "shard thread never exited");
        std::thread::yield_now();
    }
    let (status, body) = http_get(addr, "/readyz").expect("readyz reachable");
    assert_eq!(status, 503, "wedged serving shard degrades: {body}");
    assert!(body.contains("degraded") && body.contains('1'), "{body}");

    obs.stop();
    let ngm = Arc::into_inner(ngm).expect("observer released its references");
    let down = ngm.shutdown();
    assert!(down.clean(), "stop_shard is an orderly exit");
}

/// Once the tier is dropped, every endpoint answers 503 instead of
/// hanging or crashing — the observer holds only a weak reference.
#[test]
fn endpoints_answer_503_after_the_tier_is_gone() {
    let ngm = Arc::new(
        NgmConfig::new()
            .with_placement(CorePlacement::Unpinned)
            .build()
            .expect("valid config"),
    );
    let obs = ngm
        .serve_observer(ObserverConfig::new("127.0.0.1:0").with_scrape_interval(
            // Long interval: the scrape thread must not be the thing
            // keeping the tier alive or dead — endpoints are.
            Duration::from_secs(60),
        ))
        .expect("observer binds");
    let addr = obs.addr();
    let ngm = Arc::into_inner(ngm).expect("only our reference");
    drop(ngm.shutdown());

    for path in [
        "/metrics",
        "/heat",
        "/spans",
        "/blackbox",
        "/healthz",
        "/readyz",
    ] {
        let (status, _) = http_get(addr, path).expect("endpoint still answers");
        assert_eq!(status, 503, "{path} after tier drop");
    }
    obs.stop();
}

/// `start_observer` consumes the config stashed by
/// [`NgmConfig::with_observer`]: first call starts it, second call finds
/// nothing, and a recording configured there lands on disk as parseable
/// frames whose shape matches the tier.
#[test]
fn configured_observer_records_parseable_frames() {
    let path = std::env::temp_dir().join(format!("ngm-obs-test-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let ngm = Arc::new(
        NgmConfig::new()
            .with_shards(2)
            .with_placement(CorePlacement::Unpinned)
            .with_observer(
                ObserverConfig::new("127.0.0.1:0")
                    .with_recording(&path)
                    .with_scrape_interval(Duration::from_millis(2)),
            )
            .build()
            .expect("valid config"),
    );
    let obs = ngm
        .start_observer()
        .expect("observer binds")
        .expect("config carried an observer");
    assert!(
        ngm.start_observer().expect("no bind attempted").is_none(),
        "second start finds the config consumed"
    );

    let mut h = ngm.handle();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        churn(&mut h, 64);
        let recorded = read_recording(&path).map(|f| f.len()).unwrap_or(0);
        if recorded >= 5 || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(h);
    obs.stop();

    let frames = read_recording(&path).expect("recording readable");
    assert!(frames.len() >= 5, "scrapes recorded: {}", frames.len());
    for f in &frames {
        assert_eq!(f.serving, 2, "static 2-shard tier");
        assert_eq!(f.states, "SS", "one glyph per slot");
        assert_eq!(f.scale_up + f.scale_down, 0, "static tier never scales");
    }
    assert!(
        frames.windows(2).all(|w| w[0].tsc <= w[1].tsc),
        "frames are time-ordered"
    );
    assert!(
        frames.last().expect("nonempty").obs_cycles > 0,
        "observability cycles are metered"
    );

    let _ = std::fs::remove_file(&path);
    let ngm = Arc::into_inner(ngm).expect("observer released its references");
    let down = ngm.shutdown();
    assert!(down.clean() && down.balanced());
}

/// Concurrent `/metrics` scrapes against an elastic tier under real
/// churn: every response must pass the exposition validator — a scrape
/// must never observe a torn snapshot, whatever the controller is doing.
#[test]
fn concurrent_scrapes_stay_valid_under_elastic_churn() {
    let ngm = Arc::new(
        NgmConfig::new()
            .with_shards(1)
            .elastic(1, 4)
            .with_placement(CorePlacement::Unpinned)
            .with_trace_capacity(4096)
            .build()
            .expect("valid config"),
    );
    let obs = ngm
        .serve_observer(
            ObserverConfig::new("127.0.0.1:0").with_scrape_interval(Duration::from_millis(2)),
        )
        .expect("observer binds");
    let addr = obs.addr();

    std::thread::scope(|s| {
        // Churn threads give the controller something to look at.
        for _ in 0..2 {
            let ngm = Arc::clone(&ngm);
            s.spawn(move || {
                let mut h = ngm.handle();
                churn(&mut h, 4_000);
            });
        }
        // Scrape threads hammer /metrics while the tier moves.
        for _ in 0..3 {
            s.spawn(move || {
                for _ in 0..10 {
                    let (status, body) = http_get(addr, "/metrics").expect("scrape");
                    assert_eq!(status, 200);
                    validate_exposition(&body).expect("mid-churn scrape stays valid");
                }
            });
        }
    });

    obs.stop();
    let ngm = Arc::into_inner(ngm).expect("observer released its references");
    let down = ngm.shutdown();
    assert!(down.clean() && down.balanced());
}
