//! Liveness regressions under injected faults (release-mode).
//!
//! Gated on `--features faultinject`: each test arms the deterministic
//! fault hooks and proves the request path is hang-proof — a wedged
//! shard, a full ring with a dead consumer, or a shard killed mid-serve
//! must surface as *typed errors within the deadline* (or transparent
//! reroute/degradation at the tier level), never as a hung thread.
//! Every test's own completion is the no-hung-threads proof; the CI job
//! additionally caps wall-clock so a regression fails loudly.

#![cfg(feature = "faultinject")]

use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ngm_core::{CorePlacement, NgmConfig};
use ngm_offload::ring::PushError;
use ngm_offload::{OffloadRuntime, RuntimeConfig, Service, ServiceError};

/// Trivial service for the raw-runtime regressions.
#[derive(Debug)]
struct Echo;

impl Service for Echo {
    type Req = u64;
    type Resp = u64;
    type Post = u64;

    fn call(&mut self, req: u64) -> u64 {
        req
    }

    fn post(&mut self, _msg: u64) {}
}

/// Regression: a wedged (alive but not serving) shard used to hang the
/// caller forever in the response spin. It must now return
/// [`ServiceError::Deadline`] once the budget expires, and serve again
/// after the wedge clears.
#[test]
fn wedged_service_returns_typed_error_within_deadline() {
    let cfg = RuntimeConfig {
        core: None,
        deadline: Some(Duration::from_millis(20)),
        ..RuntimeConfig::new()
    };
    let rt = OffloadRuntime::try_start(Echo, cfg).expect("runtime starts");
    let mut client = rt.register_client();
    assert_eq!(client.try_call(1), Ok(1));

    rt.fault_state().set_wedged(true);
    let t0 = Instant::now();
    match client.try_call(2) {
        Err(ServiceError::Deadline { waited, .. }) => {
            assert!(waited >= Duration::from_millis(20), "budget honored");
        }
        other => panic!("expected Deadline, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "typed error well within bounds, not a hang"
    );

    rt.fault_state().set_wedged(false);
    assert_eq!(client.try_call(3), Ok(3), "shard recovered after unwedge");
    drop(client);
    rt.try_shutdown().expect("clean shutdown");
}

/// Regression: `SpscRing::push` against a full ring whose consumer is
/// gone used to yield forever. A dead consumer must surface as
/// [`PushError::Disconnected`] immediately, handing the message back.
#[test]
fn full_ring_with_dead_consumer_disconnects() {
    let (mut tx, rx) = ngm_offload::spsc::<u64>(2);
    assert_eq!(tx.push(1), Ok(()));
    assert_eq!(tx.push(2), Ok(()));
    assert_eq!(tx.push(3), Err(PushError::Full(3)), "full, consumer alive");
    drop(rx);
    let t0 = Instant::now();
    assert_eq!(
        tx.push(4),
        Err(PushError::Disconnected(4)),
        "typed disconnect, message handed back"
    );
    assert!(t0.elapsed() < Duration::from_secs(1), "no retry spin");
}

/// Regression: a shard killed mid-serve while refilling a magazine used
/// to strand the refill caller. The kill must poison that channel,
/// surface at shutdown as the shard's panic, and the allocation must
/// complete on a survivor.
#[test]
fn mid_refill_kill_fails_over_to_survivor() {
    let ngm = NgmConfig::new()
        .with_shards(2)
        .with_batch(16, 8)
        .with_placement(CorePlacement::Unpinned)
        .with_deadline(Some(Duration::from_millis(50)))
        .build()
        .expect("valid config");
    let mut h = ngm.handle();
    let class64 = ngm_heap::size_to_class(64).unwrap();
    let victim = h.class_route(class64);
    ngm.fault_state(victim).kill_next_call();

    // This alloc triggers the magazine refill batch that the kill lands
    // in; it must still succeed (rerouted), bounded by the deadline.
    let t0 = Instant::now();
    let p = h
        .alloc(Layout::from_size_align(64, 8).unwrap())
        .expect("survivor serves the refill");
    assert!(t0.elapsed() < Duration::from_secs(10), "bounded, not hung");
    // SAFETY: live block from this handle's allocator.
    unsafe { h.dealloc(p, Layout::from_size_align(64, 8).unwrap()) };
    drop(h);

    let down = ngm.shutdown();
    assert!(!down.clean(), "the mid-refill panic is reported");
    assert!(down.shards[victim].error.is_some());
    assert_eq!(down.heap.live_blocks, 0, "nothing stranded");
}

/// Acceptance: with 1 of 4 shards wedged the whole time, an 8-client
/// churn completes (no hung threads — the joins are the proof), every
/// allocation succeeds (reroute or inline fallback), and shutdown
/// balances `allocs == frees` *including* fallback traffic.
fn wedged_tier_stress(batch_size: usize, flush_threshold: usize) {
    const CLIENTS: usize = 8;
    const SHARDS: usize = 4;
    const WEDGED: usize = 0;
    let iters: usize = std::env::var("NGM_STRESS_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    let ngm = Arc::new(
        NgmConfig::new()
            .with_shards(SHARDS)
            .with_batch(batch_size, flush_threshold)
            .with_placement(CorePlacement::Unpinned)
            .with_deadline(Some(Duration::from_millis(5)))
            .build()
            .expect("valid config"),
    );
    ngm.fault_state(WEDGED).set_wedged(true);

    let joins: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let ngm = Arc::clone(&ngm);
            std::thread::spawn(move || {
                let mut h = ngm.handle();
                let mut held: Vec<(NonNull<u8>, Layout)> = Vec::new();
                for i in 0..iters {
                    let size = 16 * (1 + (i + t) % 8);
                    let l = Layout::from_size_align(size, 8).expect("valid");
                    let p = h.alloc(l).expect("wedged tier still serves");
                    // SAFETY: fresh block of `size` bytes.
                    unsafe { std::ptr::write_bytes(p.as_ptr(), (i % 251) as u8, size) };
                    held.push((p, l));
                    if held.len() > 32 {
                        let (p, l) = held.swap_remove((i * 31) % held.len());
                        // SAFETY: live block from this allocator.
                        unsafe { h.dealloc(p, l) };
                    }
                }
                for (p, l) in held {
                    // SAFETY: live block from this allocator.
                    unsafe { h.dealloc(p, l) };
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("client completed — no hung threads");
    }

    // Clear the wedge so the shard drains its ring and orphan stack,
    // then wait for the reclaim before checking the books.
    ngm.fault_state(WEDGED).set_wedged(false);
    let deadline = Instant::now() + Duration::from_secs(30);
    while ngm.orphans_drained() < ngm.orphans_pushed() {
        assert!(
            Instant::now() < deadline,
            "orphans not reclaimed: {}/{}",
            ngm.orphans_drained(),
            ngm.orphans_pushed()
        );
        std::thread::yield_now();
    }

    let ngm = Arc::into_inner(ngm).expect("all clones dropped");
    let down = ngm.shutdown();
    assert!(down.clean(), "unwedged shard exits in order: {down:?}");
    assert_eq!(
        down.service.allocs,
        down.service.frees,
        "books balance including fallback: fallback_allocs={} {:?}",
        down.service.fallback_allocs,
        down.shards
            .iter()
            .map(|s| (s.shard, s.service.allocs, s.service.frees))
            .collect::<Vec<_>>()
    );
    assert_eq!(down.heap.live_blocks, 0, "heap fully reclaimed");
    assert_eq!(down.heap.live_bytes, 0);
    assert!(
        down.runtime.deadlines > 0,
        "the wedge was actually felt: {down:?}"
    );
}

#[test]
fn stress_wedged_shard_unbatched() {
    wedged_tier_stress(1, 1);
}

#[test]
fn stress_wedged_shard_magazines() {
    wedged_tier_stress(16, 8);
}
