//! Cross-crate end-to-end tests: the same workload stream replayed
//! through every real allocator must compute identical results, and the
//! offloaded runtime must account for every byte.

use ngm_bench::replay::{replay_heap, replay_ngm};
use ngm_core::{Ngm, NgmConfig};
use ngm_heap::{AggregatedHeap, Heap, SegregatedHeap, ShardedHeap};
use ngm_offload::WaitStrategy;
use ngm_workloads::xalanc::{self, XalancParams};
use ngm_workloads::{churn, larson};

fn xalanc_events() -> Vec<ngm_workloads::Event> {
    xalanc::collect(&XalancParams::tiny())
}

#[test]
fn all_real_allocators_compute_identically() {
    let events = xalanc_events();

    let mut seg = SegregatedHeap::new(1);
    let a = replay_heap(&mut seg, events.iter().copied());

    let mut agg = AggregatedHeap::new(2);
    let b = replay_heap(&mut agg, events.iter().copied());

    let sharded = ShardedHeap::new(1);
    let mut shard = sharded.handle(0);
    let c = replay_heap(&mut shard, events.iter().copied());

    let ngm = Ngm::start();
    let mut h = ngm.handle();
    let d = replay_ngm(&mut h, events.iter().copied());
    drop(h);
    let down = ngm.shutdown();

    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.checksum, c.checksum);
    assert_eq!(a.checksum, d.checksum);
    assert_eq!(down.service.allocs, a.mallocs);
    assert_eq!(down.service.frees, a.frees);
    assert_eq!(down.heap.live_blocks, 0);
}

#[test]
fn ngm_accounts_for_every_operation_across_threads() {
    let ngm = NgmConfig::new()
        .with_client_wait(WaitStrategy::Backoff)
        .build()
        .expect("valid config");
    let threads = 4;
    let per_thread = 3_000u64;
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let mut h = ngm.handle();
            std::thread::spawn(move || {
                let events = churn::collect(&churn::ChurnParams {
                    total_allocs: per_thread as u32,
                    seed: t as u64,
                    ..churn::ChurnParams::tiny()
                });
                replay_ngm(&mut h, events.into_iter()).mallocs
            })
        })
        .collect();
    let total: u64 = joins.into_iter().map(|j| j.join().expect("worker")).sum();
    let down = ngm.shutdown();
    assert_eq!(total, threads as u64 * per_thread);
    assert_eq!(down.service.allocs, total);
    assert_eq!(down.service.frees, total);
    assert_eq!(down.heap.live_blocks, 0);
    assert_eq!(down.runtime.clients_registered, threads as u64);
}

#[test]
fn sharded_heap_survives_thread_churn_with_cross_frees() {
    // Larson-style ownership migration on the real sharded heap: blocks
    // allocated on one shard freed by another through remote queues.
    let events = larson::collect(&larson::LarsonParams::tiny());
    let sharded = std::sync::Arc::new(ShardedHeap::new(2));
    let mut h0 = sharded.handle(0);
    let mut h1 = sharded.handle(1);

    use std::alloc::Layout;
    use std::collections::HashMap;
    let mut live: HashMap<u64, (std::ptr::NonNull<u8>, Layout)> = HashMap::new();
    for e in &events {
        match *e {
            ngm_workloads::Event::Malloc { thread, id, size } => {
                let l = Layout::from_size_align(size.max(1) as usize, 8).expect("valid");
                let h = if thread % 2 == 0 { &mut h0 } else { &mut h1 };
                live.insert(id, (h.allocate(l).expect("alloc"), l));
            }
            ngm_workloads::Event::Free { thread, id } => {
                let (p, l) = live.remove(&id).expect("live");
                let h = if thread % 2 == 0 { &mut h0 } else { &mut h1 };
                // SAFETY: block live, freed exactly once (routing to the
                // owning shard happens inside).
                unsafe { h.deallocate(p, l) };
            }
            _ => {}
        }
    }
    assert!(live.is_empty());
    h0.drain_remote();
    h1.drain_remote();
    assert_eq!(h0.stats().live_blocks, 0);
    assert_eq!(h1.stats().live_blocks, 0);
    assert!(
        sharded.remote_frees() > 0,
        "migration produced remote frees"
    );
}

#[test]
fn trace_capture_then_replay_matches_direct_run() {
    let events = xalanc_events();
    let mut bin = Vec::new();
    ngm_workloads::trace::write_binary(events.iter(), &mut bin).expect("encode");
    let replayed = ngm_workloads::trace::read_binary(&bin[..]).expect("decode");

    let mut h1 = SegregatedHeap::new(7);
    let direct = replay_heap(&mut h1, events.into_iter());
    let mut h2 = SegregatedHeap::new(8);
    let from_trace = replay_heap(&mut h2, replayed.into_iter());
    assert_eq!(direct.checksum, from_trace.checksum);
    assert_eq!(direct.bytes_touched, from_trace.bytes_touched);
}

#[test]
fn simulated_and_real_placement_agree_on_density() {
    // The sim's NGM service heap and the real SegregatedHeap use the same
    // class table: consecutive same-size allocations should be equally
    // dense (same stride) in both worlds.
    let mut real = SegregatedHeap::new(9);
    let l = std::alloc::Layout::from_size_align(100, 8).expect("valid");
    let a = real.allocate(l).expect("alloc");
    let b = real.allocate(l).expect("alloc");
    let real_stride = (b.as_ptr() as usize).abs_diff(a.as_ptr() as usize);

    let mut machine = ngm_sim::Machine::new(ngm_simalloc::ModelKind::Ngm.machine(1));
    let mut model = ngm_simalloc::NgmModel::new(1);
    use ngm_simalloc::model::AllocModel;
    let x = model.malloc(&mut machine, 0, 100);
    let y = model.malloc(&mut machine, 0, 100);
    let sim_stride = x.abs_diff(y);

    assert_eq!(real_stride as u64, sim_stride, "class tables diverged");
    // SAFETY: both blocks live, freed once.
    unsafe {
        real.deallocate(a, l);
        real.deallocate(b, l);
    }
}
