//! Concurrency stress for the batched allocation front-end.
//!
//! N threads churn alloc/free through per-thread handles with magazines
//! and free buffering enabled, with a slice of every thread's blocks
//! freed *cross-thread* via the orphan stack. A shared live-set proves
//! every address is handed out at most once while live, every block is
//! fully writable, and the service/heap accounting balances exactly at
//! shutdown even though blocks sit in magazines and flush buffers along
//! the way. The same scenario also runs with `batch_size = 1`, which must
//! degenerate to the unbatched per-op protocol.
//!
//! Iteration count is bounded by `NGM_STRESS_ITERS` (per thread) so CI
//! can run this in release mode in well under a minute.

use std::alloc::Layout;
use std::collections::HashSet;
use std::ptr::NonNull;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use ngm_core::NgmBuilder;

const THREADS: usize = 4;

fn iters_per_thread() -> usize {
    std::env::var("NGM_STRESS_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000)
}

/// Sizes cycle through several small classes (all under `SMALL_MAX`, so
/// every block is magazine- and orphan-eligible).
fn size_for(i: usize, t: usize) -> usize {
    16 + (i * 13 + t * 7) % 2048
}

struct Totals {
    app_allocs: u64,
    local_frees: u64,
    orphaned: u64,
}

/// Runs the churn scenario and checks the books balance at shutdown.
fn run_scenario(batch_size: usize, flush_threshold: usize) {
    let ngm = Arc::new(
        NgmBuilder {
            batch_size,
            flush_threshold,
            ..NgmBuilder::default()
        }
        .start(),
    );
    // Addresses currently handed out to the application. Insert must
    // never collide: that would mean one live block handed out twice.
    let live: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));

    // Ring of channels: thread t ships some blocks to thread (t+1) % N,
    // which frees them through the orphan stack (context-less path).
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..THREADS).map(|_| mpsc::channel::<usize>()).unzip();
    let mut txs: Vec<Option<mpsc::Sender<usize>>> = txs.into_iter().map(Some).collect();
    txs.rotate_left(1);

    let iters = iters_per_thread();
    let joins: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(t, rx)| {
            let tx = txs[t].take().expect("each sender moved once");
            let ngm = Arc::clone(&ngm);
            let live = Arc::clone(&live);
            std::thread::spawn(move || {
                let mut h = ngm.handle();
                let mut held: Vec<(usize, Layout)> = Vec::new();
                let mut totals = Totals {
                    app_allocs: 0,
                    local_frees: 0,
                    orphaned: 0,
                };
                for i in 0..iters {
                    let size = size_for(i, t);
                    let layout = Layout::from_size_align(size, 8).expect("valid");
                    let p = h.alloc(layout).expect("alloc");
                    totals.app_allocs += 1;
                    let addr = p.as_ptr() as usize;
                    assert!(
                        live.lock().expect("live set").insert(addr),
                        "address {addr:#x} handed out while already live"
                    );
                    // Every byte must be ours to write.
                    // SAFETY: fresh block of `size` bytes.
                    unsafe { std::ptr::write_bytes(p.as_ptr(), (i % 251) as u8, size) };
                    // SAFETY: reading back the block we just wrote.
                    unsafe {
                        assert_eq!(*p.as_ptr(), (i % 251) as u8);
                        assert_eq!(*p.as_ptr().add(size - 1), (i % 251) as u8);
                    }
                    held.push((addr, layout));
                    // Retire one block roughly every other iteration so the
                    // working set stays bounded but reuse is constant.
                    if i % 2 == 1 {
                        let (addr, layout) = held.swap_remove((i * 17) % held.len());
                        if i % 8 == 1 {
                            // Cross-thread free: the neighbor orphans it.
                            tx.send(addr).expect("neighbor alive");
                        } else {
                            assert!(live.lock().expect("live set").remove(&addr));
                            let p = NonNull::new(addr as *mut u8).expect("nonnull");
                            // SAFETY: live block from this allocator.
                            unsafe { h.dealloc(p, layout) };
                            totals.local_frees += 1;
                        }
                    }
                }
                for (addr, layout) in held.drain(..) {
                    assert!(live.lock().expect("live set").remove(&addr));
                    let p = NonNull::new(addr as *mut u8).expect("nonnull");
                    // SAFETY: live block from this allocator.
                    unsafe { h.dealloc(p, layout) };
                    totals.local_frees += 1;
                }
                drop(tx);
                // Free everything the neighbor shipped us, via the orphan
                // stack (address-only, no layout — the service recovers
                // the class from the page descriptor).
                while let Ok(addr) = rx.recv() {
                    assert!(live.lock().expect("live set").remove(&addr));
                    let p = NonNull::new(addr as *mut u8).expect("nonnull");
                    // SAFETY: live small block relinquished to the stack.
                    unsafe { h.dealloc_orphan(p) };
                    totals.orphaned += 1;
                }
                drop(h); // Flushes buffered frees, returns magazine stash.
                totals
            })
        })
        .collect();

    let mut app_allocs = 0u64;
    let mut local_frees = 0u64;
    let mut orphaned = 0u64;
    for j in joins {
        let t = j.join().expect("worker");
        app_allocs += t.app_allocs;
        local_frees += t.local_frees;
        orphaned += t.orphaned;
    }
    assert_eq!(app_allocs, (THREADS * iters_per_thread()) as u64);
    assert_eq!(app_allocs, local_frees + orphaned);
    assert!(live.lock().expect("live set").is_empty());

    // Orphans are drained only by the service's idle hook; wait for the
    // stack to empty before shutting down.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while ngm.orphans().drained() < ngm.orphans().pushed() {
        assert!(
            std::time::Instant::now() < deadline,
            "orphan stack not drained: {}/{}",
            ngm.orphans().drained(),
            ngm.orphans().pushed()
        );
        std::thread::yield_now();
    }

    let ngm = Arc::into_inner(ngm).expect("all clones dropped");
    let (svc, heap, rt) = ngm.shutdown();

    // The books balance exactly, magazines and flush buffers included.
    assert_eq!(svc.allocs, svc.frees, "every block handed out came back");
    assert_eq!(
        svc.allocs - svc.magazine_returned,
        app_allocs,
        "service allocs minus unused stash equals app-visible allocs"
    );
    assert_eq!(svc.orphans_reclaimed, orphaned);
    assert_eq!(svc.failures, 0);
    assert_eq!(heap.live_blocks, 0, "heap fully reclaimed");
    assert_eq!(heap.live_bytes, 0);
    assert_eq!(rt.clients_registered, THREADS as u64);
    assert_eq!(rt.magazine_occupancy, 0, "gauge settles at zero");

    if batch_size > 1 {
        assert!(svc.batch_refills > 0, "magazine path was exercised");
    } else {
        assert_eq!(svc.batch_refills, 0, "batch 1 degenerates to per-op");
        assert_eq!(svc.magazine_returned, 0);
    }
}

#[test]
fn stress_batched_magazines() {
    run_scenario(16, 8);
}

#[test]
fn stress_full_batch_and_flush() {
    run_scenario(32, 32);
}

#[test]
fn stress_degenerate_batch_size_one() {
    run_scenario(1, 1);
}
