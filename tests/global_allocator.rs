//! End-to-end test of the `GlobalAlloc` hook: this entire test binary —
//! `Vec`s, `String`s, hash maps, thread spawning, the test harness itself
//! — runs on NextGen-Malloc. This is the repro-note's "GlobalAlloc hook
//! plus core pinning" path exercised for real.

use std::collections::HashMap;

use ngm_core::NgmAllocator;

#[global_allocator]
static ALLOC: NgmAllocator = NgmAllocator::with_config(ngm_core::NgmConfig::new());

#[test]
fn collections_grow_and_shrink() {
    let mut v: Vec<u64> = Vec::new();
    for i in 0..100_000u64 {
        v.push(i * 3);
    }
    assert_eq!(v.iter().sum::<u64>(), 3 * (99_999 * 100_000 / 2));
    v.truncate(10);
    v.shrink_to_fit();
    assert_eq!(v.len(), 10);
}

#[test]
fn strings_and_maps() {
    let mut m: HashMap<String, String> = HashMap::new();
    for i in 0..5_000 {
        m.insert(format!("key-{i}"), format!("value-{}", i * 7));
    }
    assert_eq!(m.len(), 5_000);
    assert_eq!(m["key-1234"], "value-8638");
    m.retain(|_, v| v.len() % 2 == 0);
    m.clear();
    assert!(m.is_empty());
}

#[test]
fn many_threads_allocate_through_the_global_hook() {
    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut blobs: Vec<Vec<u8>> = Vec::new();
                for i in 0..2_000usize {
                    let size = 1 + (i * 31 + t * 17) % 4096;
                    blobs.push(vec![t as u8; size]);
                    if i % 2 == 0 {
                        blobs.swap_remove((i * 13) % blobs.len());
                    }
                }
                blobs.iter().map(|b| b.len()).sum::<usize>()
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().expect("worker")).sum();
    assert!(total > 0);
}

#[test]
fn large_allocations_roundtrip() {
    // Above SMALL_MAX these are dedicated mappings.
    for mb in 1..=8usize {
        let v = vec![0xA5u8; mb << 20];
        assert_eq!(v[(mb << 20) - 1], 0xA5);
    }
}

#[test]
fn boxed_values_move_across_threads() {
    let b = Box::new([7u64; 1024]);
    let h = std::thread::spawn(move || b.iter().sum::<u64>());
    assert_eq!(h.join().expect("worker"), 7 * 1024);
}

#[test]
fn zero_sized_types_are_fine() {
    // ZSTs never reach the allocator, but exercise the edges around them.
    let v: Vec<()> = vec![(); 1000];
    assert_eq!(v.len(), 1000);
    let empty: Vec<u8> = Vec::new();
    drop(empty);
}

#[test]
fn runtime_stats_show_real_traffic() {
    // Force some traffic first so the runtime surely exists.
    let v: Vec<u8> = vec![1; 10_000];
    drop(v);
    let stats = ngm_core::global::global_stats().expect("runtime started");
    assert!(stats.calls_served > 0, "service must have served calls");
    assert!(stats.clients_registered >= 1);
}
