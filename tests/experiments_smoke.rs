//! Smoke tests over the full experiment harness: every table and figure
//! renders at reduced scale with its key invariant intact.

use ngm_bench::experiments::{ablations, fig1, fig2, model41, shards, table1, table2, table3};
use ngm_bench::Scale;
use ngm_workloads::xalanc::XalancParams;

#[test]
fn fig1_renders_with_ordering() {
    let f = fig1::from_results(ngm_bench::experiments::run_xalanc_baselines_with(
        &XalancParams::tiny(),
    ));
    let s = f.render();
    assert!(s.contains("Figure 1"));
    assert!(s.contains("normalized time"));
    assert_eq!(f.rows.len(), 4);
}

#[test]
fn table1_renders_all_counters() {
    let t = table1::from_results(ngm_bench::experiments::run_xalanc_baselines_with(
        &XalancParams::tiny(),
    ));
    let s = t.render();
    for metric in [
        "cycles",
        "instructions",
        "LLC-load-misses",
        "LLC-store-misses",
        "dTLB-load-misses",
        "dTLB-store-misses",
        "LLC-load-MPKI",
        "dTLB-load-MPKI",
    ] {
        assert!(s.contains(metric), "missing {metric}");
    }
}

#[test]
fn table2_renders_and_grows() {
    let t = table2::run(Scale(1));
    assert_eq!(t.cols.len(), 4);
    assert!(t.llc_load_growth() > 1.0, "misses must grow with threads");
    assert!(t.render().contains("Table 2"));
}

#[test]
fn fig2_trade_off_is_visible() {
    let f = fig2::run_fig2(Scale(1));
    assert_eq!(f.rows.len(), 2);
    let (agg, seg) = (&f.rows[0], &f.rows[1]);
    assert!(seg.meta_bytes > agg.meta_bytes, "segregated costs space");
    assert!(
        seg.meta_llc_misses <= agg.meta_llc_misses,
        "segregated keeps metadata misses off user-adjacent lines"
    );
}

#[test]
fn table3_mechanism_reproduces() {
    let t = table3::run_with(&XalancParams::tiny(), false);
    assert_eq!(t.cols.len(), 3);
    // The pollution-reduction mechanism: NGM's app core sees fewer dTLB
    // misses than Mimalloc's.
    assert!(t.cols[1].app.dtlb_load_misses < t.cols[0].app.dtlb_load_misses);
    assert!(t.render().contains("Table 3"));
}

#[test]
fn model41_reproduces_paper_numbers() {
    let m = model41::run();
    assert!((m.model.required_miss_reduction() - 1.25).abs() < 0.01);
    let overhead = m.model.overhead_cycles() as f64;
    assert!((74e9..77e9).contains(&overhead));
}

#[test]
fn repro_batch_renders_and_crosses_breakeven() {
    // The `repro batch` case: measured batched front-end vs unbatched,
    // printed next to the §4.1 model and the ngm_batch sim prediction.
    let rows = ablations::measured_batched_frontend(2_000);
    assert_eq!(rows[0].batch, 1, "baseline row first");
    let unbatched = rows[0].amortized_per_alloc;
    for r in rows.iter().filter(|r| r.batch >= 8) {
        assert!(
            r.amortized_per_alloc < unbatched,
            "batch {} amortized {:.0} cyc/alloc must beat unbatched {:.0}",
            r.batch,
            r.amortized_per_alloc,
            unbatched
        );
    }
    let s = ablations::render_batched(Scale(1), 500);
    assert!(s.contains("Ablation F"));
    assert!(s.contains("vs unbatched"));
    assert!(s.contains("§4.1 model"));
    assert!(s.contains("Sim prediction"));
}

#[test]
fn ablation_core_types_cover_design_space() {
    let rows = ablations::core_types_with(&XalancParams::tiny());
    let labels: Vec<&str> = rows.iter().map(|r| r.label).collect();
    assert_eq!(
        labels,
        vec!["big out-of-order", "little in-order", "near-memory"]
    );
}

#[test]
fn ablation_atomics_sweep_is_monotonic_for_ngm() {
    let rows = ablations::atomic_latency_with(&XalancParams::tiny());
    assert!(
        rows.windows(2).all(|w| w[0].ngm_wall <= w[1].ngm_wall),
        "NGM wall must grow with atomic cost"
    );
}

#[test]
fn shards_ablation_divides_the_bottleneck() {
    // The `repro shards` case: at 8 clients the single service core is
    // saturated, and a 4-shard tier must simulate at least 1.5x faster —
    // with every live-runtime shard balancing allocs == frees exactly.
    let report = shards::run(Scale(1));
    assert_eq!(
        report.cells.len(),
        shards::SHARD_COUNTS.len() * shards::CLIENT_COUNTS.len()
    );
    let speedup = report.sim_speedup(4, 8);
    assert!(
        speedup >= 1.5,
        "4 shards vs 1 at 8 clients gave only {speedup:.2}x"
    );
    for row in &report.real {
        assert!(row.balanced, "{} shard(s) failed to balance", row.shards);
        let active = row.per_shard_allocs.iter().filter(|&&a| a > 0).count();
        assert_eq!(active, row.shards, "all shards took traffic");
    }
    let s = report.render();
    assert!(s.contains("Shards ablation"));
    assert!(s.contains("speedup at 8 clients"));
}
