//! End-to-end test of the `GlobalAlloc` hook with the batched magazine
//! front-end enabled: this entire test binary runs on NextGen-Malloc with
//! per-thread magazines and batched free flushes. A separate binary from
//! `global_allocator.rs` because the process-global runtime adopts the
//! configuration of whichever `NgmAllocator` allocates first.

use std::collections::HashMap;

use ngm_core::NgmAllocator;

#[global_allocator]
static ALLOC: NgmAllocator =
    NgmAllocator::with_config(ngm_core::NgmConfig::new().with_batch(16, 8));

#[test]
fn collections_churn_through_magazines() {
    let mut v: Vec<u64> = Vec::new();
    for i in 0..100_000u64 {
        v.push(i * 3);
    }
    assert_eq!(v.iter().sum::<u64>(), 3 * (99_999 * 100_000 / 2));
    v.truncate(10);
    v.shrink_to_fit();
    assert_eq!(v.len(), 10);

    let mut m: HashMap<String, String> = HashMap::new();
    for i in 0..5_000 {
        m.insert(format!("key-{i}"), format!("value-{}", i * 7));
    }
    assert_eq!(m.len(), 5_000);
    assert_eq!(m["key-1234"], "value-8638");
    m.clear();
    assert!(m.is_empty());
}

#[test]
fn many_threads_allocate_through_batched_magazines() {
    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut blobs: Vec<Vec<u8>> = Vec::new();
                for i in 0..2_000usize {
                    let size = 1 + (i * 31 + t * 17) % 4096;
                    blobs.push(vec![t as u8; size]);
                    if i % 2 == 0 {
                        blobs.swap_remove((i * 13) % blobs.len());
                    }
                }
                blobs.iter().map(|b| b.len()).sum::<usize>()
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().expect("worker")).sum();
    assert!(total > 0);
}

#[test]
fn large_allocations_still_roundtrip() {
    // Above SMALL_MAX these bypass the magazines as dedicated mappings.
    for mb in 1..=4usize {
        let v = vec![0xA5u8; mb << 20];
        assert_eq!(v[(mb << 20) - 1], 0xA5);
    }
}

#[test]
fn metrics_show_the_batched_path_is_live() {
    // Force plenty of small-block traffic first.
    for _ in 0..64 {
        let v: Vec<u8> = vec![7; 640];
        drop(v);
    }
    let stats = ngm_core::global::global_stats().expect("runtime started");
    assert!(
        stats.batched_calls_served > 0,
        "magazine refills must have happened"
    );
    let m = ngm_core::global::global_metrics().expect("runtime started");
    let refills = m
        .get_histogram("ngm_refill_cycles")
        .expect("refill histogram exported");
    assert!(refills.count() > 0, "refill RTTs recorded");
    assert!(
        m.get_gauge("ngm_magazine_occupancy").unwrap_or(0) >= 0,
        "occupancy gauge exported and never negative"
    );
}
