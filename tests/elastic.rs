//! Deterministic scaling contract for the elastic shard tier.
//!
//! Every test here steers the controller with injected heat frames
//! ([`ngm_core::api::Ngm::inject_heat`]) and explicit evaluation ticks
//! ([`ngm_core::api::Ngm::scaling_tick`]) instead of real load, so the
//! decisions asserted are exact — no timing, no scrape cadence:
//!
//! * **Scale-up** is a pure function of the windowed load: two settled
//!   hot frames plus `sustain` ticks produce exactly one `ScaleUp` into
//!   the lowest dormant slot, and the fresh shard's unsettled window
//!   drops the controller back to the static policy until it has
//!   reported twice.
//! * **Scale-down** drains before it retires: the drain only completes
//!   once the victim's books balance exactly, so
//!   [`ngm_core::api::NgmShutdown::balanced`] still holds per shard
//!   afterward.
//! * Under `--features faultinject`, a shard **wedged mid-drain** must
//!   not hang the tier: allocations reroute to survivors immediately,
//!   and the controller runs out of patience and reopens the shard
//!   (`DrainAborted`) instead of waiting forever.

use std::alloc::Layout;
use std::ptr::NonNull;
use std::time::{Duration, Instant};

use ngm_core::{CorePlacement, ElasticPolicy, NgmConfig, ScaleDecision, ShardLifecycle};
use ngm_telemetry::trace::TraceEventKind;
use ngm_telemetry::window::HeatFrame;

/// A cumulative heat frame carrying only a call counter — the minimal
/// signal the controller's load metric reads.
fn frame(tsc: u64, calls: u64) -> HeatFrame {
    HeatFrame {
        tsc,
        calls,
        ..HeatFrame::default()
    }
}

/// Allocates `n` blocks of rotating small sizes through `h`.
fn alloc_some(h: &mut ngm_core::NgmHandle, n: usize) -> Vec<(NonNull<u8>, Layout)> {
    (0..n)
        .map(|i| {
            let layout = Layout::from_size_align(16 * (1 + i % 8), 8).expect("valid layout");
            let p = h.alloc(layout).expect("alloc");
            (p, layout)
        })
        .collect()
}

fn free_all(h: &mut ngm_core::NgmHandle, blocks: Vec<(NonNull<u8>, Layout)>) {
    for (p, layout) in blocks {
        // SAFETY: live block from this tier.
        unsafe { h.dealloc(p, layout) };
    }
}

/// A non-elastic tier never scales: ticks hold, retirement is refused.
#[test]
fn static_tier_never_scales() {
    let ngm = NgmConfig::new()
        .with_shards(2)
        .with_placement(CorePlacement::Unpinned)
        .build()
        .expect("valid config");
    ngm.inject_heat(0, frame(1, 0));
    ngm.inject_heat(0, frame(2, 100_000));
    ngm.inject_heat(1, frame(1, 0));
    ngm.inject_heat(1, frame(2, 100_000));
    for _ in 0..4 {
        assert_eq!(ngm.scaling_tick(), ScaleDecision::Hold);
    }
    assert!(!ngm.begin_retire(1), "static tier refuses retirement");
    assert_eq!(ngm.scale_counts(), (0, 0));
    assert!(ngm.shutdown().clean());
}

/// Scale-up under an injected ramp is exact: `sustain` hot ticks spawn
/// one shard into the lowest dormant slot; the fresh shard's unsettled
/// window then forces the static fallback (`Hold`) until it has two
/// frames, after which the still-hot mean spawns the next slot.
#[test]
fn scale_up_is_deterministic_under_injected_ramp() {
    let ngm = NgmConfig::new()
        .with_shards(1)
        .elastic(1, 4)
        .with_placement(CorePlacement::Unpinned)
        .with_trace_capacity(256)
        .build()
        .expect("valid config");
    assert_eq!(ngm.serving_shards(), vec![0]);

    // Two cumulative frames → windowed calls = 200 > high_water (96).
    ngm.inject_heat(0, frame(1, 0));
    ngm.inject_heat(0, frame(2, 200));

    // sustain = 2: first tick arms the streak, second fires.
    assert_eq!(ngm.scaling_tick(), ScaleDecision::Hold);
    assert_eq!(ngm.scaling_tick(), ScaleDecision::ScaleUp { shard: 1 });
    assert_eq!(ngm.serving_shards(), vec![0, 1]);
    assert_eq!(ngm.shard_states()[1], ShardLifecycle::Serving);
    assert_eq!(ngm.scale_counts(), (1, 0));

    // The new shard has no settled window yet: the controller falls
    // back to the static policy no matter how hot the settled shards
    // read, and the streak does not accumulate meanwhile.
    for _ in 0..4 {
        assert_eq!(
            ngm.scaling_tick(),
            ScaleDecision::Hold,
            "unsettled window must force the static fallback"
        );
    }
    assert_eq!(ngm.scale_counts(), (1, 0), "fallback ticks spawned nothing");

    // Settle shard 1 cold; the mean (200 + 0) / 2 = 100 still clears
    // high_water, so two more ticks spawn the next-lowest slot.
    ngm.inject_heat(1, frame(10, 0));
    ngm.inject_heat(1, frame(11, 0));
    assert_eq!(ngm.scaling_tick(), ScaleDecision::Hold);
    assert_eq!(ngm.scaling_tick(), ScaleDecision::ScaleUp { shard: 2 });
    assert_eq!(ngm.serving_shards(), vec![0, 1, 2]);
    assert_eq!(ngm.scale_counts(), (2, 0));

    // Both spawns left scale events in the trace (code 1 = spawn).
    let drain = ngm.telemetry().drain_trace();
    let spawns: Vec<u64> = drain
        .events
        .iter()
        .filter(|e| e.kind == TraceEventKind::Scale && e.a == 1)
        .map(|e| e.b)
        .collect();
    assert_eq!(spawns, vec![1, 2], "one spawn event per scale-up, in order");

    let down = ngm.shutdown();
    assert!(down.clean() && down.balanced());
}

/// Scale-down retires the slot outside the resident floor only after
/// its books balance exactly, and the survivor keeps serving: the
/// shutdown report stays clean and per-shard balanced.
#[test]
fn scale_down_drain_preserves_per_shard_balance() {
    // Effectively infinite drain patience: the drain in this test must
    // finish because the shard *balances*, never because the controller
    // gave up (which would mask a leak as an abort).
    let policy = ElasticPolicy {
        drain_patience: u32::MAX,
        ..ElasticPolicy::new(1, 2)
    };
    let ngm = NgmConfig::new()
        .with_shards(2)
        .with_elastic_policy(Some(policy))
        .with_batch(1, 1)
        .with_placement(CorePlacement::Unpinned)
        .build()
        .expect("valid config");
    assert_eq!(ngm.serving_shards(), vec![0, 1]);

    // Real traffic across both shards, fully returned.
    let mut h = ngm.handle();
    let blocks = alloc_some(&mut h, 256);
    free_all(&mut h, blocks);
    drop(h);

    // Both shards settled and cold (windowed calls = 0 < low_water).
    for shard in 0..2 {
        ngm.inject_heat(shard, frame(1, 0));
        ngm.inject_heat(shard, frame(2, 0));
    }
    assert_eq!(ngm.scaling_tick(), ScaleDecision::Hold, "streak arming");
    assert_eq!(
        ngm.scaling_tick(),
        ScaleDecision::DrainBegun { shard: 1 },
        "the only slot outside the resident floor is the victim"
    );
    assert_eq!(ngm.shard_states()[1], ShardLifecycle::Draining);

    // The heap publishes its balance on service idle rounds, so drain
    // completion is eventual — poll the tick until it lands.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match ngm.scaling_tick() {
            ScaleDecision::Retired { shard } => {
                assert_eq!(shard, 1);
                break;
            }
            ScaleDecision::Hold => {
                assert!(Instant::now() < deadline, "drain never completed");
                std::thread::sleep(Duration::from_millis(1));
            }
            other => panic!("unexpected decision mid-drain: {other:?}"),
        }
    }
    assert_eq!(ngm.shard_states()[1], ShardLifecycle::Retired);
    assert_eq!(ngm.serving_shards(), vec![0]);
    assert_eq!(ngm.scale_counts(), (0, 1));

    // The tier still serves after the retire — everything lands on the
    // survivor and balances.
    let mut h = ngm.handle();
    let blocks = alloc_some(&mut h, 128);
    free_all(&mut h, blocks);
    drop(h);

    let down = ngm.shutdown();
    assert!(down.clean(), "no shard reported an error");
    assert!(
        down.balanced(),
        "some shard's allocs != frees: {:?}",
        down.shards
            .iter()
            .map(|s| (s.shard, s.service.allocs, s.service.frees))
            .collect::<Vec<_>>()
    );
}

#[cfg(feature = "faultinject")]
mod faultinject {
    use super::*;

    /// A shard wedged mid-drain must not hang the tier: allocations
    /// reroute to survivors while the drain is pending, and the
    /// controller aborts the drain (reopening the shard) once its
    /// patience runs out instead of waiting on the wedged shard
    /// forever. The test's own completion is the no-hang proof.
    #[test]
    fn wedged_mid_drain_reroutes_and_aborts() {
        const PATIENCE: u32 = 6;
        let policy = ElasticPolicy {
            drain_patience: PATIENCE,
            ..ElasticPolicy::new(1, 2)
        };
        let ngm = NgmConfig::new()
            .with_shards(2)
            .with_elastic_policy(Some(policy))
            .with_batch(1, 1)
            .with_placement(CorePlacement::Unpinned)
            .with_deadline(Some(Duration::from_millis(50)))
            .build()
            .expect("valid config");

        // Live blocks spread across both shards: the victim can never
        // balance while these are held, so the drain genuinely wedges.
        let mut h = ngm.handle();
        let held = alloc_some(&mut h, 128);

        assert!(ngm.begin_retire(1), "victim outside the floor, serving");
        assert_eq!(ngm.shard_states()[1], ShardLifecycle::Draining);
        ngm.fault_state(1).set_wedged(true);

        // Allocations during the wedged drain must succeed promptly by
        // rerouting — classes previously routed to shard 1 move to the
        // survivor on the first retiring refusal.
        let t0 = Instant::now();
        let during = alloc_some(&mut h, 64);
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "allocations rerouted, not hung on the wedged shard"
        );
        free_all(&mut h, during);

        // The drain can never complete; the controller must abort it
        // within `drain_patience` evaluations.
        let mut decision = ScaleDecision::Hold;
        for _ in 0..PATIENCE {
            decision = ngm.scaling_tick();
            if decision != ScaleDecision::Hold {
                break;
            }
        }
        assert_eq!(decision, ScaleDecision::DrainAborted { shard: 1 });
        assert_eq!(
            ngm.shard_states()[1],
            ShardLifecycle::Serving,
            "aborted drain reopens the shard"
        );
        assert_eq!(ngm.scale_counts(), (0, 0), "no retirement happened");

        // Recovery: unwedge, return every held block, come down clean.
        ngm.fault_state(1).set_wedged(false);
        free_all(&mut h, held);
        drop(h);

        let down = ngm.shutdown();
        assert!(down.clean(), "no shard reported an error");
        assert!(
            down.balanced(),
            "some shard's allocs != frees: {:?}",
            down.shards
                .iter()
                .map(|s| (s.shard, s.service.allocs, s.service.frees))
                .collect::<Vec<_>>()
        );
    }
}
