//! Concurrency stress for the multi-shard service tier.
//!
//! The scenario from `stress_batched` — N churning threads, magazines,
//! buffered frees, cross-thread orphan frees — but against a 4-shard
//! tier, with every thread forcing a routing rebalance mid-run. The
//! shutdown check is per shard, not just global: each shard's
//! `allocs == frees` exactly, which can only hold if every free routed
//! back to the shard that owns the block's address even after the alloc
//! routing moved. That is the tier's core invariant (frees are a pure
//! function of address; rebalancing only moves future allocations).
//!
//! Iteration count is bounded by `NGM_STRESS_ITERS` (per thread) so CI
//! can run this in release mode in well under a minute.

use std::alloc::Layout;
use std::collections::HashSet;
use std::ptr::NonNull;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use ngm_core::{CorePlacement, NgmConfig};

const THREADS: usize = 4;
const SHARDS: usize = 4;

fn iters_per_thread() -> usize {
    std::env::var("NGM_STRESS_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000)
}

/// Sizes cycle through several small classes so the class → shard map
/// spreads traffic across the whole tier.
fn size_for(i: usize, t: usize) -> usize {
    16 + (i * 13 + t * 7) % 2048
}

fn run_scenario(batch_size: usize, flush_threshold: usize) {
    let ngm = Arc::new(
        NgmConfig::new()
            .with_shards(SHARDS)
            .with_batch(batch_size, flush_threshold)
            .with_placement(CorePlacement::Unpinned)
            .build()
            .expect("valid config"),
    );
    let live: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));

    // Ring of channels: thread t ships some blocks to thread (t+1) % N,
    // which frees them cross-thread (orphan path, no layout).
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..THREADS).map(|_| mpsc::channel::<usize>()).unzip();
    let mut txs: Vec<Option<mpsc::Sender<usize>>> = txs.into_iter().map(Some).collect();
    txs.rotate_left(1);

    let iters = iters_per_thread();
    let joins: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(t, rx)| {
            let tx = txs[t].take().expect("each sender moved once");
            let ngm = Arc::clone(&ngm);
            let live = Arc::clone(&live);
            std::thread::spawn(move || {
                let mut h = ngm.handle();
                let mut held: Vec<(usize, Layout)> = Vec::new();
                let mut allocs = 0u64;
                for i in 0..iters {
                    if i == iters / 2 {
                        // Force a rebalance mid-run: future allocations of
                        // the remapped classes move to other shards, while
                        // everything already handed out must still free
                        // back to its original owner by address.
                        h.rebalance_away_from(t % SHARDS);
                    }
                    let size = size_for(i, t);
                    let layout = Layout::from_size_align(size, 8).expect("valid");
                    let p = h.alloc(layout).expect("alloc");
                    allocs += 1;
                    let addr = p.as_ptr() as usize;
                    assert!(
                        live.lock().expect("live set").insert(addr),
                        "address {addr:#x} handed out while already live"
                    );
                    // SAFETY: fresh block of `size` bytes.
                    unsafe { std::ptr::write_bytes(p.as_ptr(), (i % 251) as u8, size) };
                    held.push((addr, layout));
                    if i % 2 == 1 {
                        let (addr, layout) = held.swap_remove((i * 17) % held.len());
                        if i % 8 == 1 {
                            tx.send(addr).expect("neighbor alive");
                        } else {
                            assert!(live.lock().expect("live set").remove(&addr));
                            let p = NonNull::new(addr as *mut u8).expect("nonnull");
                            // SAFETY: live block from this allocator.
                            unsafe { h.dealloc(p, layout) };
                        }
                    }
                }
                for (addr, layout) in held.drain(..) {
                    assert!(live.lock().expect("live set").remove(&addr));
                    let p = NonNull::new(addr as *mut u8).expect("nonnull");
                    // SAFETY: live block from this allocator.
                    unsafe { h.dealloc(p, layout) };
                }
                drop(tx);
                while let Ok(addr) = rx.recv() {
                    assert!(live.lock().expect("live set").remove(&addr));
                    let p = NonNull::new(addr as *mut u8).expect("nonnull");
                    // SAFETY: live small block relinquished cross-thread.
                    unsafe { h.dealloc_orphan(p) };
                }
                drop(h); // Flushes buffered frees, returns magazine stash.
                allocs
            })
        })
        .collect();

    let mut app_allocs = 0u64;
    for j in joins {
        app_allocs += j.join().expect("worker");
    }
    assert_eq!(app_allocs, (THREADS * iters_per_thread()) as u64);
    assert!(live.lock().expect("live set").is_empty());

    // Orphans drain on each shard's idle hook; wait for all stacks.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while ngm.orphans_drained() < ngm.orphans_pushed() {
        assert!(
            std::time::Instant::now() < deadline,
            "orphan stacks not drained: {}/{}",
            ngm.orphans_drained(),
            ngm.orphans_pushed()
        );
        std::thread::yield_now();
    }

    let ngm = Arc::into_inner(ngm).expect("all clones dropped");
    let down = ngm.shutdown();

    // Every shard came down clean and balanced its own books exactly —
    // the per-shard form of the global invariant.
    assert!(down.clean(), "no shard reported an error");
    assert!(
        down.balanced(),
        "some shard's allocs != frees: {:?}",
        down.shards
            .iter()
            .map(|s| (s.shard, s.service.allocs, s.service.frees))
            .collect::<Vec<_>>()
    );
    let active = down.shards.iter().filter(|s| s.service.allocs > 0).count();
    assert!(active > 1, "traffic spread across the tier, got {active}");

    // Global accounting still holds across the tier.
    assert_eq!(down.service.allocs, down.service.frees);
    assert_eq!(
        down.service.allocs - down.service.magazine_returned,
        app_allocs
    );
    assert_eq!(down.service.failures, 0);
    assert_eq!(down.heap.live_blocks, 0, "heap fully reclaimed");
    assert_eq!(down.heap.live_bytes, 0);
    assert_eq!(down.runtime.magazine_occupancy, 0, "gauge settles at zero");
}

#[test]
fn stress_sharded_magazines() {
    run_scenario(16, 8);
}

#[test]
fn stress_sharded_unbatched() {
    run_scenario(1, 1);
}
