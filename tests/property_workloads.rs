//! Property-based tests of the workload generators: every generator, at
//! any parameter point, must emit a well-formed stream (no double frees,
//! no out-of-bounds touches, balanced mallocs/frees) and be
//! deterministic; traces must round-trip bit-exactly.

use ngm_workloads::events::validate;
use ngm_workloads::{cache_scratch, cache_thrash, churn, larson, trace, xalanc, xmalloc};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn xalanc_streams_are_valid(
        docs in 1u32..6,
        nodes in 10u32..200,
        live_docs in 1u32..4,
        pins in 0u32..400,
        queries in 0u32..12,
        seed in any::<u64>(),
    ) {
        let p = xalanc::XalancParams {
            docs,
            nodes_per_doc: nodes,
            live_docs,
            pin_per_mille: pins,
            queries_per_node: queries,
            parse_compute: 100,
            transform_compute: 100,
            seed,
        };
        let (events, warmup) = xalanc::collect_with_warmup(&p);
        let s = validate(events.iter().copied(), false).expect("valid stream");
        prop_assert_eq!(s.mallocs, s.frees);
        prop_assert!(warmup <= events.len());
    }

    #[test]
    fn xmalloc_streams_are_valid(
        threads in 1u8..9,
        allocs in 1u32..500,
        batch in 1u32..100,
        seed in any::<u64>(),
    ) {
        let p = xmalloc::XmallocParams {
            threads,
            allocs_per_thread: allocs,
            batch,
            seed,
            ..xmalloc::XmallocParams::default()
        };
        let s = validate(xmalloc::collect(&p).into_iter(), false).expect("valid stream");
        prop_assert_eq!(s.mallocs, u64::from(threads) * u64::from(allocs));
    }

    #[test]
    fn churn_streams_are_valid(
        threads in 1u8..5,
        total in 1u32..600,
        cap in 1u32..100,
        free_pct in 0u8..100,
        seed in any::<u64>(),
    ) {
        let p = churn::ChurnParams {
            threads,
            total_allocs: total,
            live_cap: cap,
            free_percent: free_pct,
            seed,
            ..churn::ChurnParams::default()
        };
        let s = validate(churn::collect(&p).into_iter(), false).expect("valid stream");
        prop_assert_eq!(s.mallocs, u64::from(total));
        prop_assert!(s.peak_live <= u64::from(cap) * u64::from(threads) + u64::from(threads));
    }

    #[test]
    fn larson_streams_are_valid(
        threads in 1u8..5,
        slots in 1u32..64,
        rounds in 0u32..300,
        migrate in 1u32..16,
        seed in any::<u64>(),
    ) {
        let p = larson::LarsonParams {
            threads,
            slots,
            rounds,
            migrate_every: migrate,
            seed,
            ..larson::LarsonParams::default()
        };
        let s = validate(larson::collect(&p).into_iter(), false).expect("valid stream");
        prop_assert_eq!(s.mallocs, s.frees);
    }

    #[test]
    fn hoard_benchmarks_are_valid(
        workers in 1u8..8,
        iters in 0u32..40,
        writes in 0u32..20,
    ) {
        let s1 = validate(
            cache_scratch::collect(&cache_scratch::CacheScratchParams {
                workers,
                iterations: iters,
                writes_per_iteration: writes,
                object_size: 8,
            })
            .into_iter(),
            false,
        )
        .expect("cache-scratch valid");
        prop_assert_eq!(s1.mallocs, s1.frees);

        let s2 = validate(
            cache_thrash::collect(&cache_thrash::CacheThrashParams {
                workers,
                iterations: iters,
                writes_per_iteration: writes,
                object_size: 8,
            })
            .into_iter(),
            false,
        )
        .expect("cache-thrash valid");
        prop_assert_eq!(s2.mallocs, s2.frees);
    }

    #[test]
    fn traces_roundtrip_any_stream(
        total in 1u32..300,
        seed in any::<u64>(),
    ) {
        let events = churn::collect(&churn::ChurnParams {
            total_allocs: total,
            seed,
            ..churn::ChurnParams::tiny()
        });
        let mut bin = Vec::new();
        trace::write_binary(events.iter(), &mut bin).expect("encode");
        prop_assert_eq!(trace::read_binary(&bin[..]).expect("decode"), events.clone());

        let mut json = Vec::new();
        trace::write_json(events.iter(), &mut json).expect("encode");
        prop_assert_eq!(
            trace::read_json(std::io::BufReader::new(&json[..])).expect("decode"),
            events
        );
    }

    #[test]
    fn generators_are_deterministic(seed in any::<u64>()) {
        let p = churn::ChurnParams {
            seed,
            ..churn::ChurnParams::tiny()
        };
        prop_assert_eq!(churn::collect(&p), churn::collect(&p));
        let x = xalanc::XalancParams {
            seed,
            ..xalanc::XalancParams::tiny()
        };
        prop_assert_eq!(xalanc::collect(&x), xalanc::collect(&x));
    }
}
