//! Allocator shootout: one workload, every allocator in the repository —
//! the real heaps for wall-clock and the simulator models for PMU shape.
//!
//! ```sh
//! cargo run --release --example allocator_shootout [-- scale]
//! ```

use ngm_bench::replay::{replay_heap, replay_ngm};
use ngm_core::Ngm;
use ngm_heap::{AggregatedHeap, LockedHeap, SegregatedHeap, ShardedHeap};
use ngm_simalloc::{run_kind_warm, ModelKind};
use ngm_workloads::xalanc::{self, XalancParams};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let params = XalancParams::small().scaled(scale);
    let (events, warmup) = xalanc::collect_with_warmup(&params);
    println!("workload: xalanc-like, {} events\n", events.len());

    // -- Real heaps, wall clock ------------------------------------------
    println!("real heaps (wall clock, this machine):");
    let mut checksum = None;
    let mut check = |name: &str, cs: u64, elapsed: std::time::Duration| {
        match checksum {
            None => checksum = Some(cs),
            Some(c) => assert_eq!(c, cs, "{name}: checksum diverged"),
        }
        println!("  {name:<28} {elapsed:?}");
    };

    let mut seg = SegregatedHeap::new(1);
    let r = replay_heap(&mut seg, events.iter().copied());
    check("segregated (single owner)", r.checksum, r.elapsed);

    let mut agg = AggregatedHeap::new(2);
    let r = replay_heap(&mut agg, events.iter().copied());
    check("aggregated (single owner)", r.checksum, r.elapsed);

    // Global-lock heap driven through its shared-reference API.
    let locked = LockedHeap::new(SegregatedHeap::new(3));
    let start = std::time::Instant::now();
    {
        // Adapter: LockedHeap's &self API wrapped into the Heap trait.
        struct Via<'a>(&'a LockedHeap<SegregatedHeap>);
        // SAFETY: defers to LockedHeap, which upholds the Heap contract
        // under its mutex.
        unsafe impl ngm_heap::Heap for Via<'_> {
            fn allocate(
                &mut self,
                l: std::alloc::Layout,
            ) -> Result<std::ptr::NonNull<u8>, ngm_heap::AllocError> {
                self.0.allocate(l)
            }
            unsafe fn deallocate(&mut self, p: std::ptr::NonNull<u8>, l: std::alloc::Layout) {
                // SAFETY: forwarded contract.
                unsafe { self.0.deallocate(p, l) }
            }
            fn stats(&self) -> ngm_heap::HeapStats {
                self.0.stats()
            }
        }
        let mut via = Via(&locked);
        let r = replay_heap(&mut via, events.iter().copied());
        check("global lock (ptmalloc-ish)", r.checksum, start.elapsed());
    }

    let sharded = ShardedHeap::new(1);
    let mut shard = sharded.handle(0);
    let r = replay_heap(&mut shard, events.iter().copied());
    check("sharded (mimalloc-ish)", r.checksum, r.elapsed);

    let ngm = Ngm::start();
    let mut h = ngm.handle();
    let r = replay_ngm(&mut h, events.iter().copied());
    check("NextGen-Malloc (offloaded)", r.checksum, r.elapsed);
    drop(h);
    let down = ngm.shutdown();
    assert_eq!(down.heap.live_blocks, 0);

    // -- Simulated PMU shape ----------------------------------------------
    println!("\nsimulated A72 (steady state, app cores):");
    println!(
        "  {:<16} {:>12} {:>10} {:>10}",
        "model", "wall cycles", "dTLB MPKI", "LLC MPKI"
    );
    for kind in [
        ModelKind::PtMalloc2,
        ModelKind::Jemalloc,
        ModelKind::TcMalloc,
        ModelKind::Mimalloc,
        ModelKind::Ngm,
    ] {
        let r = run_kind_warm(kind, 1, events.iter().copied(), warmup);
        let app = r.app_total(1);
        println!(
            "  {:<16} {:>12} {:>10.3} {:>10.3}",
            r.name,
            r.wall_cycles,
            app.dtlb_load_mpki(),
            app.llc_load_mpki()
        );
    }
}
