//! §3.3.2 "Other Functions to Offload": the offload runtime is not
//! malloc-specific. This example gives a *deduplication index* its own
//! room — a service that interns byte strings and hands out stable ids,
//! the kind of metadata-heavy helper the paper suggests offloading
//! (it name-checks FaaS heap-similarity monitoring as one candidate).
//!
//! ```sh
//! cargo run --release --example offload_service
//! ```

use std::collections::HashMap;

use ngm_offload::{OffloadRuntime, RuntimeConfig, Service};

/// An interning service: all the hash-map metadata lives on the service
/// core; clients exchange only small messages.
#[derive(Default)]
struct InternService {
    ids: HashMap<Vec<u8>, u64>,
    lookups: u64,
    inserts: u64,
}

impl Service for InternService {
    type Req = Vec<u8>;
    type Resp = u64;
    /// Fire-and-forget usage hints (e.g. "id X was used again").
    type Post = u64;

    fn call(&mut self, key: Vec<u8>) -> u64 {
        self.lookups += 1;
        let next = self.ids.len() as u64;
        *self.ids.entry(key).or_insert_with(|| {
            self.inserts += 1;
            next
        })
    }

    fn post(&mut self, _used_id: u64) {
        // A real index would bump LRU/usage counters here.
    }
}

fn main() {
    // A small trace ring per thread: enough to see the event flow without
    // keeping the whole run in memory.
    let rt = OffloadRuntime::try_start(
        InternService::default(),
        RuntimeConfig {
            trace_capacity: 1024,
            ..RuntimeConfig::new()
        },
    )
    .expect("spawn service thread");

    let mut joins = Vec::new();
    for t in 0..4u64 {
        let mut client = rt.register_client();
        joins.push(std::thread::spawn(move || {
            let mut hits = 0u64;
            for i in 0..5_000u64 {
                // Overlapping key space across threads: the service
                // deduplicates globally without any client-side locking.
                let key = format!("chunk-{:06}", (i * 7 + t * 13) % 2_000);
                let id = client.call(key.into_bytes());
                client.post(id);
                if id < 2_000 {
                    hits += 1;
                }
            }
            hits
        }));
    }
    for j in joins {
        j.join().expect("worker");
    }

    // The telemetry layer works for any tenant of the room, not just
    // malloc: latency histograms and the event trace come for free.
    let metrics = rt.metrics();
    let trace = rt.telemetry().drain_trace();

    let (svc, stats) = rt.shutdown();
    println!("interned keys        : {}", svc.ids.len());
    println!("lookups served       : {}", svc.lookups);
    println!("distinct inserts     : {}", svc.inserts);
    println!("usage hints drained  : {}", stats.posts_served);
    println!("service poll rounds  : {}", stats.poll_rounds);
    println!(
        "trace events kept    : {} ({} dropped on overflow)",
        trace.events.len(),
        trace.dropped_total
    );
    assert_eq!(svc.ids.len(), 2_000, "global dedup worked");

    println!(
        "\n--- Prometheus text exposition ---\n{}",
        metrics.to_prometheus_text()
    );
    println!("--- JSON snapshot ---\n{}", metrics.to_json());
    println!("\nsame runtime, different tenant: the room is programmable.");
}
