//! Record a workload to an allocation trace, replay it bit-exactly, and
//! compare encodings — the capture-once-compare-everywhere workflow the
//! benchmark harness uses.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use ngm_bench::replay::replay_heap;
use ngm_heap::{AggregatedHeap, Heap, SegregatedHeap};
use ngm_workloads::larson::{self, LarsonParams};
use ngm_workloads::trace;

fn main() {
    // Capture a larson-style server churn into both trace encodings.
    let params = LarsonParams {
        threads: 1, // single-threaded so the real replay is exact
        slots: 128,
        rounds: 20_000,
        ..LarsonParams::default()
    };
    let events = larson::collect(&params);

    let mut json = Vec::new();
    trace::write_json(events.iter(), &mut json).expect("encode json");
    let mut binary = Vec::new();
    trace::write_binary(events.iter(), &mut binary).expect("encode binary");
    println!("captured {} events", events.len());
    println!("  JSON lines : {:>9} bytes", json.len());
    println!(
        "  binary     : {:>9} bytes ({:.1}x smaller)",
        binary.len(),
        json.len() as f64 / binary.len() as f64
    );

    // Round trips are bit-exact.
    let from_json = trace::read_json(std::io::BufReader::new(&json[..])).expect("decode json");
    let from_bin = trace::read_binary(&binary[..]).expect("decode binary");
    assert_eq!(events, from_json);
    assert_eq!(events, from_bin);
    println!("round trips: OK (both encodings bit-exact)");

    // Replay the same trace against both metadata layouts (Figure 2's
    // two halves) and confirm identical computation.
    let mut seg = SegregatedHeap::new(1);
    let a = replay_heap(&mut seg, from_bin.iter().copied());
    let mut agg = AggregatedHeap::new(2);
    let b = replay_heap(&mut agg, from_json.iter().copied());
    assert_eq!(a.checksum, b.checksum, "layouts must not change results");
    println!("\nreplay (segregated layout): {:?}", a.elapsed);
    println!("replay (aggregated layout): {:?}", b.elapsed);
    println!(
        "peak footprint: {} bytes over {} segment(s); {} allocations each",
        seg.stats().peak_live_bytes,
        seg.stats().segments,
        seg.stats().total_allocs,
    );
}
