//! §3.3.2's garbage-collection scenario: the collector lives in the
//! allocator's room. Mutators build and churn an object graph; tracing
//! and sweeping run on the service core, triggered asynchronously — the
//! mutator never executes collector code.
//!
//! ```sh
//! cargo run --release --example offloaded_gc
//! ```

use std::time::Instant;

use ngm_gc::{GcRuntime, LocalGcHeap};

const CHURN: u64 = 30_000;

/// Stop-the-mutator baseline: the same heap embedded inline.
fn run_local() -> (std::time::Duration, u64) {
    let mut heap = LocalGcHeap::new();
    let root = heap.alloc(&[], 0);
    heap.add_root(root);
    let start = Instant::now();
    let mut kept = root;
    for i in 0..CHURN {
        // Churn: an unpublished temporary that becomes garbage at once.
        let _garbage = heap.alloc(&[], i);
        if i % 8 == 0 {
            // Grow the published chain.
            let n = heap.alloc(&[kept], i);
            heap.set_edge(root, 0, Some(n));
            kept = n;
        }
        if i % 2048 == 2047 {
            // Drop the chain and start over.
            heap.set_edge(root, 0, None);
            kept = root;
        }
        if i % 1024 == 1023 {
            heap.collect(); // the mutator pays the pause
        }
    }
    (start.elapsed(), heap.stats().collections)
}

/// Offloaded: identical mutator logic; collection hints are posts and
/// publication is atomic (`alloc_linked`).
fn run_offloaded() -> (std::time::Duration, u64) {
    let rt = GcRuntime::start(0);
    let mut m = rt.handle();
    let root = m.alloc(&[], 0);
    m.add_root(root);
    let start = Instant::now();
    let mut kept = root;
    for i in 0..CHURN {
        let _garbage = m.alloc(&[], i);
        if i % 8 == 0 {
            kept = m.alloc_linked(root, 0, &[kept], i);
        }
        if i % 2048 == 2047 {
            m.set_edge(root, 0, None);
            kept = root;
        }
        if i % 1024 == 1023 {
            m.hint_collect(); // fire-and-forget
        }
    }
    let elapsed = start.elapsed();
    let collections = m.stats().collections;
    drop(m);
    drop(rt);
    (elapsed, collections)
}

fn main() {
    let (local_time, local_gcs) = run_local();
    println!("stop-the-mutator : {local_time:?} ({local_gcs} collections inline)");
    let (off_time, off_gcs) = run_offloaded();
    println!("offloaded        : {off_time:?} ({off_gcs} collections on the service core)");
    println!(
        "\nmutator-visible GC pauses: zero in the offloaded run — the paper's\n\
         §3.3.2 pitch. (On a 1-vCPU machine the offloaded run timeshares the\n\
         core, so wall-clock parity is the expected outcome here; on a real\n\
         multi-core the collections overlap mutator compute.)"
    );
}
