//! Quickstart: start NextGen-Malloc, give the allocator its own room, and
//! allocate from several threads.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::alloc::Layout;

use ngm_core::Ngm;

fn main() {
    // Start the runtime: spawns the service thread and (when the machine
    // has a spare core) pins it — the paper's "own room in the house".
    let ngm = Ngm::start();
    println!(
        "service thread started (machine has {} cores)",
        ngm_offload::available_cores()
    );

    // Each thread registers a handle; allocation is a synchronous round
    // trip to the service core, free is fire-and-forget.
    let mut join = Vec::new();
    for t in 0..4u8 {
        let mut handle = ngm.handle();
        join.push(std::thread::spawn(move || {
            let mut peak = 0usize;
            let mut live = Vec::new();
            for i in 0..10_000usize {
                let size = 16 + (i * 37 + t as usize * 101) % 2048;
                let layout = Layout::from_size_align(size, 8).expect("valid layout");
                let p = handle.alloc(layout).expect("allocation");
                // SAFETY: fresh block of at least `size` bytes.
                unsafe { std::ptr::write_bytes(p.as_ptr(), t, size) };
                live.push((p, layout));
                peak = peak.max(live.len());
                if i % 3 != 0 {
                    let (p, l) = live.swap_remove((i * 7) % live.len());
                    // SAFETY: block came from this allocator, freed once.
                    unsafe { handle.dealloc(p, l) };
                }
            }
            for (p, l) in live {
                // SAFETY: as above.
                unsafe { handle.dealloc(p, l) };
            }
            peak
        }));
    }
    for (t, j) in join.into_iter().enumerate() {
        println!("thread {t}: peak live blocks {}", j.join().expect("worker"));
    }

    let down = ngm.shutdown();
    println!("\n-- service statistics --");
    println!("allocations served : {}", down.service.allocs);
    println!("frees applied      : {}", down.service.frees);
    println!("segments mapped    : {}", down.heap.segments);
    println!("peak live bytes    : {}", down.heap.peak_live_bytes);
    println!("pinned core        : {:?}", down.runtime.pinned_core);
    println!("idle poll fraction : {:.3}", down.runtime.idle_fraction());
    assert_eq!(down.heap.live_blocks, 0, "no leaks");
    println!("\nall blocks returned; no leaks.");
}
