//! The paper's motivating workload end-to-end: the xalancbmk-style XML
//! pipeline replayed against the real offloaded allocator, with the
//! simulated PMU comparison alongside.
//!
//! ```sh
//! cargo run --release --example xml_pipeline [-- scale]
//! ```

use ngm_bench::replay::{replay_heap, replay_ngm};
use ngm_core::Ngm;
use ngm_heap::SegregatedHeap;
use ngm_simalloc::{run_kind_warm, ModelKind};
use ngm_workloads::xalanc::{self, XalancParams};
use ngm_workloads::StreamSummary;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let params = XalancParams::small().scaled(scale);
    let (events, warmup) = xalanc::collect_with_warmup(&params);
    let summary = StreamSummary::scan(events.iter().copied());
    println!(
        "workload: {} events, {} mallocs, {} frees, peak {} live objects",
        summary.events, summary.mallocs, summary.frees, summary.peak_live
    );
    let op_instr = (summary.mallocs + summary.frees) as f64 * 100.0;
    println!(
        "allocator ops are ~{:.1}% of instructions — the paper's \"only 2% of time\" regime\n",
        op_instr / (op_instr + summary.compute as f64) * 100.0
    );

    // -- Real replay: single-owner heap vs offloaded NGM -----------------
    let mut heap = SegregatedHeap::new(1);
    let direct = replay_heap(&mut heap, events.iter().copied());
    println!(
        "direct segregated heap : {:?} ({} mallocs)",
        direct.elapsed, direct.mallocs
    );

    let ngm = Ngm::start();
    let mut handle = ngm.handle();
    let offloaded = replay_ngm(&mut handle, events.iter().copied());
    drop(handle);
    let down = ngm.shutdown();
    println!(
        "offloaded (NGM)        : {:?} (service on core {:?})",
        offloaded.elapsed, down.runtime.pinned_core
    );
    assert_eq!(direct.checksum, offloaded.checksum, "identical computation");
    assert_eq!(down.service.allocs, offloaded.mallocs);
    assert_eq!(down.heap.live_blocks, 0);

    // -- Simulated PMU view (the Table 1/3 machinery) ---------------------
    println!("\nsimulated A72 PMU counters (app cores, steady state):");
    for kind in [ModelKind::PtMalloc2, ModelKind::Mimalloc, ModelKind::Ngm] {
        let r = run_kind_warm(kind, 1, events.iter().copied(), warmup);
        let app = r.app_total(1);
        println!(
            "  {:<16} cycles {:>12}  dTLB-load-MPKI {:>6.3}  LLC-load-MPKI {:>6.3}",
            r.name,
            r.wall_cycles,
            app.dtlb_load_mpki(),
            app.llc_load_mpki()
        );
    }
    println!("\n(on a 1-vCPU machine the wall-clock comparison timeshares the");
    println!(" service core; the simulated counters carry the paper's story)");
}
