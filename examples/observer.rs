//! Live observability: run an elastic tier with the HTTP observer and a
//! flight recording, keep traffic flowing, and self-scrape at exit.
//!
//! ```sh
//! cargo run --release --example observer
//! # elsewhere, while it runs:
//! #   curl http://127.0.0.1:9464/metrics
//! #   curl http://127.0.0.1:9464/readyz
//! ```
//!
//! Environment knobs (all optional):
//! - `NGM_OBS_ADDR`   — listen address (default `127.0.0.1:9464`;
//!   use `127.0.0.1:0` for an ephemeral port, printed at startup)
//! - `NGM_OBS_RECORD` — flight-recording path (default
//!   `<tmp>/ngm-observer-example.jsonl`)
//! - `NGM_OBS_SECS`   — how long to keep traffic running (default 5)

use std::alloc::Layout;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ngm_core::{CorePlacement, NgmConfig, ObserverConfig};
use ngm_telemetry::export::validate_exposition;
use ngm_telemetry::recorder::read_recording;
use ngm_telemetry::server::http_get;

fn main() {
    let addr = std::env::var("NGM_OBS_ADDR").unwrap_or_else(|_| "127.0.0.1:9464".into());
    let record = std::env::var("NGM_OBS_RECORD")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("ngm-observer-example.jsonl"));
    let secs: u64 = std::env::var("NGM_OBS_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let ngm = Arc::new(
        NgmConfig::new()
            .with_shards(1)
            .elastic(1, 4)
            .with_placement(CorePlacement::Unpinned)
            .with_trace_capacity(4096)
            .with_observer(
                ObserverConfig::new(&addr)
                    .with_recording(&record)
                    .with_scrape_interval(Duration::from_millis(250)),
            )
            .build()
            .expect("valid config"),
    );
    let observer = ngm
        .start_observer()
        .expect("observer binds")
        .expect("config carries an observer");
    println!("observer listening on http://{}", observer.addr());
    println!("flight recording at {}", record.display());
    println!("endpoints: /metrics /heat /spans /blackbox /healthz /readyz");

    // Keep a small churn running so the endpoints have something to show.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|t: usize| {
            let ngm = Arc::clone(&ngm);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut h = ngm.handle();
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let l = Layout::from_size_align(16 * (1 + (i + t) % 8), 8).expect("valid");
                    let p = h.alloc(l).expect("alloc");
                    // SAFETY: block just allocated, freed once.
                    unsafe { h.dealloc(p, l) };
                    i += 1;
                }
                i
            })
        })
        .collect();
    std::thread::sleep(Duration::from_secs(secs));
    stop.store(true, Ordering::Relaxed);
    for (t, w) in workers.into_iter().enumerate() {
        println!(
            "worker {t}: {} alloc/free rounds",
            w.join().expect("worker")
        );
    }

    // Self-scrape before exiting: the same checks an external monitor
    // (or the CI smoke job) would run.
    let (status, body) = http_get(observer.addr(), "/metrics").expect("self-scrape");
    println!("GET /metrics -> {status} ({} bytes)", body.len());
    println!("exposition valid: {}", validate_exposition(&body).is_ok());
    let (status, body) = http_get(observer.addr(), "/readyz").expect("self-scrape");
    println!("GET /readyz -> {status} ({})", body.trim());

    observer.stop();
    let frames = read_recording(&record).map(|f| f.len()).unwrap_or(0);
    println!("recorded {frames} frame(s)");
    let ngm = Arc::into_inner(ngm).expect("observer released its references");
    let down = ngm.shutdown();
    println!(
        "shutdown clean: {}, balanced: {}",
        down.clean(),
        down.balanced()
    );
}
