//! Umbrella crate for the NextGen-Malloc reproduction.
//!
//! Re-exports the workspace's public surface so downstream users can
//! depend on one crate; the workspace-spanning integration tests and the
//! runnable examples live here. See the individual crates for the actual
//! implementations:
//!
//! * [`ngm_core`] — the offloaded allocator (the paper's contribution).
//! * [`ngm_offload`] — the dedicated-core service runtime.
//! * [`ngm_heap`] — real mmap-backed heaps with self-hosted metadata.
//! * [`ngm_sim`] / [`ngm_simalloc`] — the A72-class simulator and the
//!   allocator policy models that regenerate the paper's tables.
//! * [`ngm_workloads`] — workload generators and the trace format.
//! * [`ngm_model`] — §4.1's analytical break-even model.
//! * [`ngm_bench`] — the `repro` harness.

pub use ngm_bench as bench;
pub use ngm_core as core;
pub use ngm_heap as heap;
pub use ngm_model as model;
pub use ngm_offload as offload;
pub use ngm_sim as sim;
pub use ngm_simalloc as simalloc;
pub use ngm_workloads as workloads;
