//! NextGen-Malloc: a memory allocator with its own room in the house.
//!
//! This crate is the paper's primary contribution assembled from the
//! substrate crates: all `malloc`/`free` work executes on a tier of one
//! or more dedicated service threads (each pinned to its own core when
//! the machine has one to spare), each operating a disjoint
//! [`ngm_heap::SegregatedHeap`] whose metadata is decoupled from user
//! data and which — being single-owner — contains no atomic operations
//! at all.
//!
//! * Allocation is synchronous: the calling thread publishes a request in
//!   its [`ngm_offload::RequestSlot`] and spins/parks for the response
//!   (§4.2's `malloc_start`/`malloc_done` protocol).
//! * Deallocation is asynchronous: `free` posts to an SPSC ring on the
//!   *owning* shard (routed by address) and returns immediately (§3.1.2:
//!   the free phase is off the critical path).
//!
//! Three ways to use it:
//!
//! 1. [`NgmConfig`] → [`Ngm`] + [`NgmHandle`] — explicit handles, full
//!    control over shard count, placement, batching, and telemetry.
//! 2. [`NgmAllocator`] — a `GlobalAlloc` you can install with
//!    `#[global_allocator]`.
//! 3. [`service::MallocService`] directly on
//!    [`ngm_offload::OffloadRuntime`] for custom wiring.

#![warn(missing_docs)]

pub mod api;
pub mod bootstrap;
pub mod config;
pub mod global;
pub mod heat;
pub mod nonblocking;
pub mod observer;
pub mod orphan;
pub mod service;
pub mod watch;

pub use api::{Autoscaler, Ngm, NgmHandle, NgmShutdown, ScaleDecision, ShardShutdown};
pub use config::{
    CorePlacement, ElasticPolicy, NgmConfig, NgmError, ObserverConfig, ShardTopology,
    FALLBACK_OWNER, MAX_SHARDS, OWNER_BASE,
};
pub use global::NgmAllocator;
pub use heat::{pick_coolest, HeatReport, ShardHeat, ShardLifecycle};
pub use nonblocking::{AllocFuture, ReadyFuture, SubmissionQueue};
pub use observer::{derive_readiness, Observer, Readiness};
pub use service::{
    AddrBatch, AllocBatchReq, AllocReq, FreeMsg, FreePost, MallocReq, MallocResp, MallocService,
    ServiceStats, MAX_BATCH,
};
pub use watch::{SharedDemand, SharedHeapStats};

#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
pub use api::{NextGenMalloc, NgmBuilder};
