//! The one layered configuration for the whole allocator: [`NgmConfig`].
//!
//! This replaces the previous zoo of entry points (`NgmBuilder`,
//! `RuntimeBuilder`, `NgmAllocator::new()`/`batched()`) with a single
//! plain value: every knob is a public field, the whole thing is
//! `const`-constructible (so it can sit in a `#[global_allocator]`
//! static), chainable through `with_*` setters, `Default`-able, and
//! validated exactly once — [`NgmConfig::build`] returns a typed
//! [`NgmError`] instead of clamping silently or panicking.

use std::time::Duration;

use ngm_heap::AllocError;
use ngm_offload::{ServiceError, WaitStrategy};

use crate::service::MAX_BATCH;

/// Maximum number of service shards in one allocator.
///
/// Small on purpose: every shard is a dedicated pinned core (§2.3 — the
/// point is to give the allocator *a* room, not the whole house), and the
/// shard index must fit the owner-id encoding below.
pub const MAX_SHARDS: usize = 8;

/// Base of the heap owner-id space: shard `s` stamps `OWNER_BASE | s`
/// into every segment it creates ("ngm" shifted to leave the low byte for
/// the shard index). [`ngm_heap::owner_of_small_ptr`] then recovers the
/// owning shard from any small-block address — the pure-by-address
/// routing the sharded free path relies on.
pub const OWNER_BASE: u64 = 0x6e67_6d00;

/// Owner id stamped into segments of the inline fallback heap — the low
/// byte is `0xff`, outside the shard range (shards use `0..MAX_SHARDS`),
/// so the same address-routing read that sends a free to its shard sends
/// a degraded-mode block back to the fallback heap instead.
pub const FALLBACK_OWNER: u64 = OWNER_BASE | 0xff;

/// Where the service threads are pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorePlacement {
    /// Pin shard `i` to core `cores − 1 − i` when the machine has more
    /// cores than shards (the paper's "own room" at the top of the core
    /// list, generalized); float every shard otherwise.
    #[default]
    Auto,
    /// Never pin; shards float under the OS scheduler.
    Unpinned,
    /// Pin shard `i` to core `base + i`. Out-of-range cores degrade to a
    /// recorded pin failure, not an error (this box may be smaller than
    /// the deployment target).
    Base(usize),
}

/// Control knobs for the elastic shard tier (see
/// [`NgmConfig::elastic`]): the controller evaluated on every
/// `heat_report()`/`scaling_tick()` spawns a shard when the tier is
/// sustainedly hot and drains + retires the coolest shard when it is
/// sustainedly cold, always keeping `min..=max` shards serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticPolicy {
    /// Fewest shards the controller keeps serving (`>= 1`). Shards
    /// `0..min` are the tier's *resident floor*: they are never retired,
    /// and non-size-class (large) allocations hash over them alone so an
    /// address-less large free always finds its allocating shard open.
    pub min: usize,
    /// Most shards the controller will spawn (`<= MAX_SHARDS`).
    pub max: usize,
    /// Scale up when the mean per-serving-shard load (heat score plus
    /// windowed calls) stays above this for `sustain` consecutive
    /// evaluations.
    pub high_water: u64,
    /// Scale down when the mean per-serving-shard load stays below this
    /// for `sustain` consecutive evaluations (and more than `min` shards
    /// are serving).
    pub low_water: u64,
    /// Consecutive evaluations a water mark must stay crossed before the
    /// controller acts (`>= 1`); debounces one-scrape spikes.
    pub sustain: u32,
    /// Evaluations a draining shard gets to reach a zero balance before
    /// the controller aborts the retirement and returns it to serving
    /// (`>= 1`) — a wedged shard must not wedge the controller with it.
    pub drain_patience: u32,
}

impl ElasticPolicy {
    /// Policy with the default water marks: high 96, low 16, sustain 2
    /// evaluations, drain patience 8 evaluations.
    pub const fn new(min: usize, max: usize) -> Self {
        ElasticPolicy {
            min,
            max,
            high_water: 96,
            low_water: 16,
            sustain: 2,
            drain_patience: 8,
        }
    }

    /// Whether the policy's own fields are coherent (the shard-count
    /// relationship to `NgmConfig::shards` is checked by
    /// [`NgmConfig::validate`]).
    const fn is_valid(&self) -> bool {
        self.min >= 1
            && self.min <= self.max
            && self.max <= MAX_SHARDS
            && self.sustain >= 1
            && self.drain_patience >= 1
    }
}

/// Which socket/cluster each shard slot belongs to. The elastic
/// controller places a spawning shard on the least-loaded cluster, and
/// handles created with [`crate::api::Ngm::handle_on_cluster`] prefer
/// same-cluster shards when routing allocations — the paper's placement
/// concern (§2.3) extended across sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTopology {
    /// Cluster id per shard slot, indexed by shard.
    pub clusters: [u8; MAX_SHARDS],
}

impl ShardTopology {
    /// Every slot on one cluster — a flat (single-socket) machine.
    pub const fn flat() -> Self {
        ShardTopology {
            clusters: [0; MAX_SHARDS],
        }
    }

    /// Every slot its own cluster — the sim's `asymmetric_many` shape,
    /// where each service core sits in its own little cluster.
    pub const fn per_shard() -> Self {
        let mut clusters = [0u8; MAX_SHARDS];
        let mut i = 0;
        while i < MAX_SHARDS {
            clusters[i] = i as u8;
            i += 1;
        }
        ShardTopology { clusters }
    }

    /// An explicit per-slot cluster map.
    pub const fn from_clusters(clusters: [u8; MAX_SHARDS]) -> Self {
        ShardTopology { clusters }
    }
}

impl Default for ShardTopology {
    fn default() -> Self {
        Self::flat()
    }
}

/// Where — and how often — a tier exposes itself to the outside world.
///
/// Passed to [`NgmConfig::with_observer`]; consumed by
/// [`crate::api::Ngm::start_observer`], which binds the HTTP endpoint
/// (`/metrics`, `/heat`, `/spans`, `/blackbox`, `/healthz`, `/readyz`),
/// starts the scrape thread (which doubles as the elastic controller
/// tick, exactly like [`crate::api::Ngm::autoscaler`]), and — when
/// `record_path` is set — appends one flight-recorder frame per scrape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObserverConfig {
    /// Listen address for the HTTP endpoint (e.g. `"127.0.0.1:9464"`;
    /// port 0 binds an ephemeral port, readable from the running
    /// observer).
    pub addr: String,
    /// JSONL flight-recording path; `None` serves endpoints without
    /// recording.
    pub record_path: Option<std::path::PathBuf>,
    /// Spacing between scrapes (each scrape publishes heat frames,
    /// ticks the elastic controller, and appends one recording frame).
    /// Sub-millisecond values are clamped to 1ms by the scrape thread.
    pub scrape_interval: Duration,
    /// Size budget for the active recording file before it rotates to
    /// `<record_path>.1`; 0 selects the recorder's default.
    pub record_rotate_bytes: u64,
}

impl ObserverConfig {
    /// An observer on `addr` with a 250ms scrape interval and no
    /// recording.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        ObserverConfig {
            addr: addr.into(),
            record_path: None,
            scrape_interval: Duration::from_millis(250),
            record_rotate_bytes: 0,
        }
    }

    /// Enables the JSONL flight recording at `path`.
    #[must_use]
    pub fn with_recording(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.record_path = Some(path.into());
        self
    }

    /// Sets the scrape interval.
    #[must_use]
    pub fn with_scrape_interval(mut self, interval: Duration) -> Self {
        self.scrape_interval = interval;
        self
    }

    /// Sets the recording rotation budget in bytes (0 = default).
    #[must_use]
    pub fn with_rotate_bytes(mut self, bytes: u64) -> Self {
        self.record_rotate_bytes = bytes;
        self
    }
}

impl Default for ObserverConfig {
    /// Loopback on an ephemeral port: safe to start anywhere, never
    /// externally reachable unless the address says so.
    fn default() -> Self {
        Self::new("127.0.0.1:0")
    }
}

/// Why [`NgmConfig::build`] refused a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NgmError {
    /// `shards` was `0` or above [`MAX_SHARDS`].
    InvalidShards {
        /// The rejected shard count.
        requested: usize,
    },
    /// `batch_size` was `0` or above [`MAX_BATCH`].
    InvalidBatch {
        /// The rejected batch size.
        requested: usize,
    },
    /// `flush_threshold` was `0` or above [`MAX_BATCH`].
    InvalidFlush {
        /// The rejected flush threshold.
        requested: usize,
    },
    /// `free_ring_capacity` was `0`.
    ZeroRingCapacity,
    /// `inflight_limit` was `0`: a submission queue that can hold no
    /// in-flight entries can never complete anything.
    ZeroInflightLimit,
    /// The elastic policy was incoherent: the range must satisfy
    /// `1 <= min <= shards <= max <= MAX_SHARDS` and both `sustain` and
    /// `drain_patience` must be nonzero.
    InvalidElastic {
        /// The rejected minimum serving-shard count.
        min: usize,
        /// The rejected maximum serving-shard count.
        max: usize,
        /// The configured initial shard count.
        shards: usize,
    },
    /// A shard's service thread could not be spawned.
    Spawn(ServiceError),
    /// The operation could not make progress *right now* without
    /// blocking: the magazine is dry and the request slot (or free ring)
    /// is occupied. Purely transient — distinct from
    /// [`ServiceError::Deadline`] (a shard failed to answer within its
    /// budget) and [`ServiceError::ShardRetiring`] (a shard refuses new
    /// work). Drain completions (or await the [`crate::AllocFuture`]) and
    /// retry.
    WouldBlock,
    /// An offload-layer failure surfaced through the non-blocking API.
    /// `ServiceError::WouldBlock` maps to [`NgmError::WouldBlock`]
    /// instead, so callers match one transient variant.
    Service(ServiceError),
    /// A heap-layer failure surfaced through the non-blocking API.
    /// `AllocError::WouldBlock` maps to [`NgmError::WouldBlock`] instead.
    Alloc(AllocError),
}

impl From<ServiceError> for NgmError {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::WouldBlock => NgmError::WouldBlock,
            other => NgmError::Service(other),
        }
    }
}

impl From<AllocError> for NgmError {
    fn from(e: AllocError) -> Self {
        match e {
            AllocError::WouldBlock => NgmError::WouldBlock,
            other => NgmError::Alloc(other),
        }
    }
}

impl std::fmt::Display for NgmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NgmError::InvalidShards { requested } => {
                write!(f, "shard count {requested} not in 1..={MAX_SHARDS}")
            }
            NgmError::InvalidBatch { requested } => {
                write!(f, "batch size {requested} not in 1..={MAX_BATCH}")
            }
            NgmError::InvalidFlush { requested } => {
                write!(f, "flush threshold {requested} not in 1..={MAX_BATCH}")
            }
            NgmError::ZeroRingCapacity => write!(f, "free ring capacity must be nonzero"),
            NgmError::ZeroInflightLimit => write!(f, "in-flight submission limit must be nonzero"),
            NgmError::InvalidElastic { min, max, shards } => write!(
                f,
                "elastic range min={min} max={max} (initial shards={shards}) must satisfy \
                 1 <= min <= shards <= max <= {MAX_SHARDS} with nonzero sustain and patience"
            ),
            NgmError::Spawn(e) => write!(f, "failed to start a service shard: {e}"),
            NgmError::WouldBlock => write!(
                f,
                "allocation would block: magazine dry and submission in flight or ring full"
            ),
            NgmError::Service(e) => write!(f, "service tier error: {e}"),
            NgmError::Alloc(e) => write!(f, "heap error: {e}"),
        }
    }
}

impl std::error::Error for NgmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NgmError::Spawn(e) | NgmError::Service(e) => Some(e),
            NgmError::Alloc(e) => Some(e),
            _ => None,
        }
    }
}

/// Configuration for the whole allocator, shards included.
///
/// ```
/// use ngm_core::{CorePlacement, NgmConfig};
///
/// let ngm = NgmConfig::new()
///     .with_shards(2)
///     .with_batch(16, 8)
///     .with_placement(CorePlacement::Unpinned)
///     .build()
///     .expect("valid config");
/// # ngm.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct NgmConfig {
    /// Number of service shards, each a dedicated service thread owning
    /// its own [`ngm_heap::SegregatedHeap`] (`1..=`[`MAX_SHARDS`]).
    pub shards: usize,
    /// Core placement policy for the service threads.
    pub placement: CorePlacement,
    /// Wait policy for client threads blocked on `alloc`; `None` picks
    /// the machine-appropriate default when the runtime starts.
    pub client_wait: Option<WaitStrategy>,
    /// Wait policy for the service threads' polling loops; `None` picks
    /// the machine-appropriate default when the runtime starts.
    pub server_wait: Option<WaitStrategy>,
    /// Capacity of each client's per-shard asynchronous free ring.
    pub free_ring_capacity: usize,
    /// Per-thread event-trace ring capacity; `0` (the default) disables
    /// tracing entirely, leaving only the always-on latency histograms.
    pub trace_capacity: usize,
    /// Blocks fetched per magazine refill (`1..=`[`MAX_BATCH`]). `1`
    /// (the default) disables the magazine: every small alloc is its own
    /// round trip. Values ≥ 8 amortize the §4.1 handshake comfortably
    /// past break-even.
    pub batch_size: usize,
    /// Small-block frees buffered client-side before one batched flush
    /// post (`1..=`[`MAX_BATCH`]). `1` (the default) posts each free
    /// individually.
    pub flush_threshold: usize,
    /// Most entries a per-handle [`crate::SubmissionQueue`] keeps in
    /// flight at once (`>= 1`). Past the limit, `submit` refuses with
    /// [`NgmError::WouldBlock`] until completions drain — the client-side
    /// backpressure knob of the non-blocking front-end. Defaults to 256,
    /// comfortably above one magazine refill per size class.
    pub inflight_limit: usize,
    /// Enables PMU profiling (off by default): each service loop and one
    /// handle per client thread wrap their lifetimes in a
    /// [`ngm_pmu::PmuSession`], attributing cycles and cache/TLB misses
    /// to the service cores versus the app cores.
    pub profile: bool,
    /// Allocation-site profiling sample interval: attribute 1 in
    /// `site_sample` allocations to their call site (`1` = every
    /// allocation). `0` (the default) disables the site profiler.
    pub site_sample: u64,
    /// Per-request deadline for every blocking primitive (slot waits,
    /// free-ring retries). A request that exceeds it surfaces a typed
    /// error and degrades (reroute, then inline fallback) instead of
    /// hanging. Defaults to [`ngm_offload::DEFAULT_DEADLINE`]; `None`
    /// restores unbounded waits.
    pub deadline: Option<Duration>,
    /// Frames retained per shard for the rolling heat window (min 2):
    /// each `heat_report()` call pushes one cumulative frame, and the
    /// windowed aggregate spans the last `heat_window` reports. Defaults
    /// to [`ngm_telemetry::window::DEFAULT_HEAT_FRAMES`].
    pub heat_window: usize,
    /// Enables the blackbox flight recorder (on by default): deadline
    /// expiries, shard failovers, and the first degradation to the
    /// inline fallback dump the implicated shard's recent trace, slot
    /// states, and heat snapshot to stderr (and to the file named by the
    /// `NGM_BLACKBOX_PATH` environment variable). The global-allocator
    /// adapter forces this off: assembling a dump allocates, and
    /// re-entering a failing allocator mid-failure is not survivable.
    pub blackbox: bool,
    /// Elastic-tier policy; `None` (the default) keeps the tier fixed at
    /// `shards` shards with no controller. When set, `shards` is the
    /// *initial* serving count and the controller moves it within
    /// `[policy.min, policy.max]` as the heat windows demand.
    pub elastic: Option<ElasticPolicy>,
    /// Socket/cluster map for the shard slots (flat by default). Drives
    /// elastic spawn placement (least-loaded cluster) and same-cluster
    /// routing preference for [`crate::api::Ngm::handle_on_cluster`].
    pub topology: ShardTopology,
    /// Live-observability endpoint + flight recorder; `None` (the
    /// default) keeps the tier observable only in-process. When set,
    /// [`crate::api::Ngm::start_observer`] serves it. This is the one
    /// non-`Copy` knob — the `const` constructor leaves it `None`, so
    /// `#[global_allocator]` statics are unaffected.
    pub observer: Option<ObserverConfig>,
}

impl NgmConfig {
    /// The `const` default configuration: one shard, auto placement, no
    /// batching, no tracing or profiling.
    pub const fn new() -> Self {
        NgmConfig {
            shards: 1,
            placement: CorePlacement::Auto,
            client_wait: None,
            server_wait: None,
            free_ring_capacity: 4096,
            trace_capacity: 0,
            batch_size: 1,
            flush_threshold: 1,
            inflight_limit: 256,
            profile: false,
            site_sample: 0,
            deadline: Some(ngm_offload::DEFAULT_DEADLINE),
            heat_window: ngm_telemetry::window::DEFAULT_HEAT_FRAMES,
            blackbox: true,
            elastic: None,
            topology: ShardTopology::flat(),
            observer: None,
        }
    }

    /// Attaches a live-observability endpoint (and optionally a flight
    /// recording) to the tier; serve it with
    /// [`crate::api::Ngm::start_observer`] after `build()`. Not `const`:
    /// [`ObserverConfig`] carries owned strings, which a static
    /// initializer cannot build — and a global allocator should not be
    /// running an HTTP server anyway.
    #[must_use]
    pub fn with_observer(mut self, observer: ObserverConfig) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Makes the tier elastic between `min` and `max` serving shards with
    /// the default [`ElasticPolicy`] water marks. The configured `shards`
    /// count is the initial serving count and must lie in `[min, max]`.
    pub const fn elastic(mut self, min: usize, max: usize) -> Self {
        self.elastic = Some(ElasticPolicy::new(min, max));
        self
    }

    /// Sets the full elastic policy (`None` disables the controller).
    pub const fn with_elastic_policy(mut self, policy: Option<ElasticPolicy>) -> Self {
        self.elastic = policy;
        self
    }

    /// Sets the shard-slot socket/cluster map.
    pub const fn with_topology(mut self, topology: ShardTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the number of service shards.
    pub const fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the core placement policy.
    pub const fn with_placement(mut self, placement: CorePlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the client wait strategy.
    pub const fn with_client_wait(mut self, wait: WaitStrategy) -> Self {
        self.client_wait = Some(wait);
        self
    }

    /// Sets the service-thread wait strategy.
    pub const fn with_server_wait(mut self, wait: WaitStrategy) -> Self {
        self.server_wait = Some(wait);
        self
    }

    /// Sets the per-shard free-ring capacity.
    pub const fn with_free_ring_capacity(mut self, capacity: usize) -> Self {
        self.free_ring_capacity = capacity;
        self
    }

    /// Sets the per-thread event-trace ring capacity (0 disables).
    pub const fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Sets both batching knobs: magazine refill size and free-flush
    /// threshold.
    pub const fn with_batch(mut self, batch_size: usize, flush_threshold: usize) -> Self {
        self.batch_size = batch_size;
        self.flush_threshold = flush_threshold;
        self
    }

    /// Sets the per-handle in-flight submission limit for the
    /// non-blocking front-end (`>= 1`).
    pub const fn with_inflight_limit(mut self, limit: usize) -> Self {
        self.inflight_limit = limit;
        self
    }

    /// Enables or disables PMU profiling.
    pub const fn with_profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Sets the allocation-site sample interval (0 disables).
    pub const fn with_site_sample(mut self, interval: u64) -> Self {
        self.site_sample = interval;
        self
    }

    /// Sets the per-request deadline (`None` restores unbounded waits).
    pub const fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the heat-window depth (frames retained per shard; min 2).
    pub const fn with_heat_window(mut self, frames: usize) -> Self {
        self.heat_window = frames;
        self
    }

    /// Enables or disables the blackbox flight recorder.
    pub const fn with_blackbox(mut self, on: bool) -> Self {
        self.blackbox = on;
        self
    }

    /// Checks every field without building anything.
    ///
    /// # Errors
    ///
    /// The first [`NgmError`] a field violates, in declaration order.
    pub const fn validate(&self) -> Result<(), NgmError> {
        if self.shards == 0 || self.shards > MAX_SHARDS {
            return Err(NgmError::InvalidShards {
                requested: self.shards,
            });
        }
        if self.batch_size == 0 || self.batch_size > MAX_BATCH {
            return Err(NgmError::InvalidBatch {
                requested: self.batch_size,
            });
        }
        if self.flush_threshold == 0 || self.flush_threshold > MAX_BATCH {
            return Err(NgmError::InvalidFlush {
                requested: self.flush_threshold,
            });
        }
        if self.free_ring_capacity == 0 {
            return Err(NgmError::ZeroRingCapacity);
        }
        if self.inflight_limit == 0 {
            return Err(NgmError::ZeroInflightLimit);
        }
        if let Some(p) = self.elastic {
            if !p.is_valid() || self.shards < p.min || self.shards > p.max {
                return Err(NgmError::InvalidElastic {
                    min: p.min,
                    max: p.max,
                    shards: self.shards,
                });
            }
        }
        Ok(())
    }

    /// Clamps every field into its valid range, so `build` cannot fail
    /// validation. Contexts that cannot surface a `Result` — the
    /// `#[global_allocator]` path, the deprecated builder shims — go
    /// through this instead of aborting the process on a bad knob.
    pub const fn sanitized(mut self) -> Self {
        self.shards = clamp(self.shards, 1, MAX_SHARDS);
        self.batch_size = clamp(self.batch_size, 1, MAX_BATCH);
        self.flush_threshold = clamp(self.flush_threshold, 1, MAX_BATCH);
        if self.free_ring_capacity == 0 {
            self.free_ring_capacity = 4096;
        }
        self.inflight_limit = clamp(self.inflight_limit, 1, usize::MAX);
        // A window needs a baseline and a head; HeatWindow clamps the
        // same way, this just keeps the config honest about it.
        self.heat_window = clamp(self.heat_window, 2, usize::MAX);
        if let Some(p) = self.elastic {
            let min = clamp(p.min, 1, MAX_SHARDS);
            let max = clamp(p.max, min, MAX_SHARDS);
            self.elastic = Some(ElasticPolicy {
                min,
                max,
                high_water: p.high_water,
                low_water: p.low_water,
                sustain: clamp(p.sustain as usize, 1, u32::MAX as usize) as u32,
                drain_patience: clamp(p.drain_patience as usize, 1, u32::MAX as usize) as u32,
            });
            self.shards = clamp(self.shards, min, max);
        }
        self
    }

    /// Validates, then starts the allocator: `shards` pinned service
    /// threads, each owning its own segregated heap.
    ///
    /// # Errors
    ///
    /// A validation [`NgmError`], or [`NgmError::Spawn`] if the OS
    /// refuses a service thread.
    pub fn build(self) -> Result<crate::api::Ngm, NgmError> {
        self.validate()?;
        crate::api::Ngm::from_config(self)
    }
}

impl Default for NgmConfig {
    fn default() -> Self {
        Self::new()
    }
}

const fn clamp(v: usize, lo: usize, hi: usize) -> usize {
    if v < lo {
        lo
    } else if v > hi {
        hi
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(NgmConfig::new().validate(), Ok(()));
        NgmConfig::default().validate().unwrap();
    }

    #[test]
    fn const_construction_compiles() {
        // The whole chain must be usable in a static initializer.
        const CFG: NgmConfig = NgmConfig::new()
            .with_shards(4)
            .with_batch(16, 8)
            .with_placement(CorePlacement::Unpinned)
            .with_free_ring_capacity(1 << 12)
            .with_trace_capacity(0)
            .with_profile(false)
            .with_site_sample(0)
            .with_deadline(Some(Duration::from_millis(100)))
            .with_heat_window(4)
            .with_blackbox(false)
            .elastic(2, 6)
            .with_topology(ShardTopology::per_shard());
        assert_eq!(CFG.shards, 4);
        assert_eq!(CFG.batch_size, 16);
        assert_eq!((CFG.heat_window, CFG.blackbox), (4, false));
        assert_eq!(CFG.elastic, Some(ElasticPolicy::new(2, 6)));
        assert_eq!(CFG.topology.clusters[3], 3);
        assert_eq!(CFG.validate(), Ok(()));
    }

    #[test]
    fn invalid_fields_are_typed_errors() {
        assert_eq!(
            NgmConfig::new().with_shards(0).validate(),
            Err(NgmError::InvalidShards { requested: 0 })
        );
        assert_eq!(
            NgmConfig::new().with_shards(MAX_SHARDS + 1).validate(),
            Err(NgmError::InvalidShards {
                requested: MAX_SHARDS + 1
            })
        );
        assert_eq!(
            NgmConfig::new().with_batch(0, 1).validate(),
            Err(NgmError::InvalidBatch { requested: 0 })
        );
        assert_eq!(
            NgmConfig::new().with_batch(1, MAX_BATCH + 1).validate(),
            Err(NgmError::InvalidFlush {
                requested: MAX_BATCH + 1
            })
        );
        assert_eq!(
            NgmConfig::new().with_free_ring_capacity(0).validate(),
            Err(NgmError::ZeroRingCapacity)
        );
        assert_eq!(
            NgmConfig::new().with_inflight_limit(0).validate(),
            Err(NgmError::ZeroInflightLimit)
        );
        assert_eq!(
            NgmConfig::new()
                .with_inflight_limit(0)
                .sanitized()
                .inflight_limit,
            1
        );
        // Elastic range checks: min must be nonzero, the range ordered
        // and within MAX_SHARDS, and the initial count inside it.
        assert_eq!(
            NgmConfig::new().elastic(0, 4).validate(),
            Err(NgmError::InvalidElastic {
                min: 0,
                max: 4,
                shards: 1
            })
        );
        assert_eq!(
            NgmConfig::new().elastic(3, 2).validate(),
            Err(NgmError::InvalidElastic {
                min: 3,
                max: 2,
                shards: 1
            })
        );
        assert_eq!(
            NgmConfig::new().with_shards(1).elastic(2, 4).validate(),
            Err(NgmError::InvalidElastic {
                min: 2,
                max: 4,
                shards: 1
            })
        );
        assert_eq!(
            NgmConfig::new()
                .with_shards(2)
                .elastic(1, MAX_SHARDS)
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn sanitized_clamps_elastic_range_and_initial_count() {
        let cfg = NgmConfig::new()
            .with_shards(1)
            .with_elastic_policy(Some(ElasticPolicy {
                min: 0,
                max: 99,
                high_water: 96,
                low_water: 16,
                sustain: 0,
                drain_patience: 0,
            }))
            .sanitized();
        let p = cfg.elastic.unwrap();
        assert_eq!((p.min, p.max), (1, MAX_SHARDS));
        assert_eq!((p.sustain, p.drain_patience), (1, 1));
        assert_eq!(cfg.validate(), Ok(()));
        // Initial count outside the range is pulled inside it.
        let cfg = NgmConfig::new().with_shards(1).elastic(2, 4).sanitized();
        assert_eq!(cfg.shards, 2);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn observer_config_chains_and_clones() {
        let cfg = NgmConfig::new().with_observer(
            ObserverConfig::new("127.0.0.1:0")
                .with_recording("/tmp/ngm-flight.jsonl")
                .with_scrape_interval(Duration::from_millis(5))
                .with_rotate_bytes(1 << 20),
        );
        let obs = cfg.observer.as_ref().expect("observer set");
        assert_eq!(obs.addr, "127.0.0.1:0");
        assert_eq!(
            obs.record_path.as_deref(),
            Some(std::path::Path::new("/tmp/ngm-flight.jsonl"))
        );
        assert_eq!(obs.scrape_interval, Duration::from_millis(5));
        assert_eq!(obs.record_rotate_bytes, 1 << 20);
        // The config is Clone (no longer Copy): both copies agree.
        let cloned = cfg.clone();
        assert_eq!(cloned.observer, cfg.observer);
        assert_eq!(cfg.validate(), Ok(()));
        // Sanitizing leaves the observer untouched.
        assert_eq!(cfg.sanitized().observer.unwrap().addr, "127.0.0.1:0");
        assert_eq!(ObserverConfig::default().addr, "127.0.0.1:0");
    }

    #[test]
    fn build_surfaces_validation_errors() {
        let err = NgmConfig::new().with_shards(0).build().unwrap_err();
        assert_eq!(err, NgmError::InvalidShards { requested: 0 });
        assert!(err.to_string().contains("shard count"));
    }

    #[test]
    fn sanitized_clamps_everything_into_range() {
        let cfg = NgmConfig::new()
            .with_shards(99)
            .with_batch(0, 1000)
            .with_free_ring_capacity(0)
            .sanitized();
        assert_eq!(cfg.shards, MAX_SHARDS);
        assert_eq!(cfg.batch_size, 1);
        assert_eq!(cfg.flush_threshold, MAX_BATCH);
        assert_eq!(cfg.free_ring_capacity, 4096);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn owner_base_leaves_room_for_every_shard() {
        // The shard index lives in the low byte of the owner id, and 0xff
        // is reserved for the fallback heap.
        const { assert!(MAX_SHARDS < 0xff) }
        assert_eq!(OWNER_BASE & 0xff, 0);
        assert_eq!(FALLBACK_OWNER & 0xff, 0xff);
        assert!(FALLBACK_OWNER.wrapping_sub(OWNER_BASE) as usize >= MAX_SHARDS);
    }
}
