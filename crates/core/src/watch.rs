//! Live heap-statistics publication.
//!
//! The segregated heap is owned exclusively by the service thread — the
//! whole point of the design is that its metadata needs no atomics. That
//! makes its [`HeapStats`] invisible to other threads until shutdown. The
//! service fixes that by *publishing*: during idle rounds it copies its
//! stats into a [`SharedHeapStats`] — a relaxed-atomic mirror other
//! threads may read at any time. Publication costs a handful of relaxed
//! stores and runs only when no client is waiting, so the measurement
//! never perturbs the quantity measured.

use std::sync::atomic::{AtomicU64, Ordering};

use ngm_heap::HeapStats;

/// A cross-thread readable mirror of [`HeapStats`].
///
/// Readers see a near-current view: fields are stored individually with
/// relaxed ordering, so a snapshot may mix two adjacent publications.
/// For gauges sampled for telemetry that tear is harmless; anything
/// needing exactness should use the final stats returned at shutdown.
#[derive(Debug, Default)]
pub struct SharedHeapStats {
    live_blocks: AtomicU64,
    live_bytes: AtomicU64,
    segments: AtomicU64,
    pages_in_use: AtomicU64,
    large_allocs: AtomicU64,
    large_bytes: AtomicU64,
    total_allocs: AtomicU64,
    total_frees: AtomicU64,
    peak_live_bytes: AtomicU64,
}

impl SharedHeapStats {
    /// An all-zero mirror.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes `stats` (service thread only).
    pub fn publish(&self, stats: &HeapStats) {
        self.live_blocks.store(stats.live_blocks, Ordering::Relaxed);
        self.live_bytes.store(stats.live_bytes, Ordering::Relaxed);
        self.segments.store(stats.segments, Ordering::Relaxed);
        self.pages_in_use
            .store(stats.pages_in_use, Ordering::Relaxed);
        self.large_allocs
            .store(stats.large_allocs, Ordering::Relaxed);
        self.large_bytes.store(stats.large_bytes, Ordering::Relaxed);
        self.total_allocs
            .store(stats.total_allocs, Ordering::Relaxed);
        self.total_frees.store(stats.total_frees, Ordering::Relaxed);
        self.peak_live_bytes
            .store(stats.peak_live_bytes, Ordering::Relaxed);
    }

    /// Reads the last published view.
    #[must_use]
    pub fn load(&self) -> HeapStats {
        HeapStats {
            live_blocks: self.live_blocks.load(Ordering::Relaxed),
            live_bytes: self.live_bytes.load(Ordering::Relaxed),
            segments: self.segments.load(Ordering::Relaxed),
            pages_in_use: self.pages_in_use.load(Ordering::Relaxed),
            large_allocs: self.large_allocs.load(Ordering::Relaxed),
            large_bytes: self.large_bytes.load(Ordering::Relaxed),
            total_allocs: self.total_allocs.load(Ordering::Relaxed),
            total_frees: self.total_frees.load(Ordering::Relaxed),
            peak_live_bytes: self.peak_live_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A cross-thread readable mirror of the service's per-size-class refill
/// demand counters, published from the idle hook like [`SharedHeapStats`].
/// The heat report folds this in so a shard that is hot *because one size
/// class keeps refilling* is distinguishable from uniform load.
#[derive(Debug)]
pub struct SharedDemand {
    classes: Vec<AtomicU64>,
}

impl SharedDemand {
    /// An all-zero mirror for `classes` size classes.
    #[must_use]
    pub fn new(classes: usize) -> Self {
        SharedDemand {
            classes: (0..classes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publishes the cumulative demand counters (service thread only).
    pub fn publish(&self, demand: &[u64]) {
        for (slot, &v) in self.classes.iter().zip(demand) {
            slot.store(v, Ordering::Relaxed);
        }
    }

    /// Reads the last published view.
    #[must_use]
    pub fn load(&self) -> Vec<u64> {
        self.classes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_publish_load_roundtrip() {
        let d = SharedDemand::new(4);
        assert_eq!(d.load(), vec![0; 4]);
        d.publish(&[3, 0, 7, 1]);
        assert_eq!(d.load(), vec![3, 0, 7, 1]);
        // Short publishes leave the tail untouched rather than panicking.
        d.publish(&[9]);
        assert_eq!(d.load(), vec![9, 0, 7, 1]);
    }

    #[test]
    fn publish_load_roundtrip() {
        let w = SharedHeapStats::new();
        let s = HeapStats {
            live_blocks: 3,
            live_bytes: 192,
            segments: 1,
            pages_in_use: 2,
            large_allocs: 1,
            large_bytes: 1 << 20,
            total_allocs: 10,
            total_frees: 6,
            peak_live_bytes: 4096,
        };
        w.publish(&s);
        assert_eq!(w.load(), s);
    }

    #[test]
    fn fresh_watch_reads_zero() {
        assert_eq!(SharedHeapStats::new().load(), HeapStats::default());
    }
}
