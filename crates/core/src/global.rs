//! `GlobalAlloc` adapter: install NextGen-Malloc for a whole program.
//!
//! ```ignore
//! use ngm_core::{NgmAllocator, NgmConfig};
//!
//! #[global_allocator]
//! static ALLOC: NgmAllocator = NgmAllocator::with_config(
//!     NgmConfig::new().with_shards(2).with_batch(16, 8),
//! );
//! ```
//!
//! The adapter mirrors the paper's prototype, which interposes on the C
//! library's `malloc`/`free` and forwards them to the pinned service
//! thread. Rust's `GlobalAlloc` is the equivalent hook. Three routing
//! special cases keep it self-hosting:
//!
//! * **Bootstrap** — allocations made while the runtime or a per-thread
//!   handle is being constructed come from a static bump arena
//!   ([`crate::bootstrap`]); frees into that arena are ignored.
//! * **The service thread itself** — must never round-trip to itself, so
//!   its own (rare) allocations also use the arena.
//! * **Large blocks** — served as dedicated `mmap`s directly on the
//!   calling thread: the kernel already serializes them, offloading adds
//!   nothing (and it keeps `dealloc` layout-driven and symmetric).

use std::alloc::{GlobalAlloc, Layout};
use std::cell::{Cell, RefCell};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use ngm_heap::classes::layout_to_class;
use ngm_heap::sys::{round_to_os_page, Mapping};

use crate::api::{Ngm, NgmHandle};
use crate::bootstrap::{bootstrap_alloc, is_bootstrap_ptr};
use crate::config::NgmConfig;

static RUNTIME: OnceLock<Ngm> = OnceLock::new();

/// Set by the service thread once its polling loop is about to start.
/// Until then every allocation — including the service thread's own
/// startup allocations, which would otherwise deadlock by round-tripping
/// to themselves — comes from the bootstrap arena.
static SERVICE_READY: AtomicBool = AtomicBool::new(false);

std::thread_local! {
    /// True while this thread must not re-enter the offload path.
    static GUARD: Cell<bool> = const { Cell::new(false) };
    /// This thread's client handle, created lazily.
    static HANDLE: RefCell<Option<NgmHandle>> = const { RefCell::new(None) };
}

/// Marks the calling thread as the allocator service thread: all its
/// global allocations route to the bootstrap arena forever (a request to
/// itself would deadlock).
pub(crate) fn mark_allocator_thread() {
    let _ = GUARD.try_with(|g| g.set(true));
    SERVICE_READY.store(true, Ordering::Release);
}

fn runtime(cfg: &NgmConfig) -> &'static Ngm {
    RUNTIME.get_or_init(|| {
        // Everything allocated while spawning the runtime comes from the
        // bootstrap arena.
        let was = GUARD.with(|g| g.replace(true));
        let ngm = cfg.clone().build().expect("sanitized config is valid");
        GUARD.with(|g| g.set(was));
        ngm
    })
}

/// NextGen-Malloc as a `GlobalAlloc`.
///
/// Carries only an [`NgmConfig`] (so it can be built in a `const`
/// initializer — `#[global_allocator]` statics run before any environment
/// is readable); all live state is in a lazily-started [`Ngm`] runtime
/// shared by every `NgmAllocator` value. The value that triggers the
/// first allocation decides the configuration.
pub struct NgmAllocator {
    cfg: NgmConfig,
}

impl Default for NgmAllocator {
    fn default() -> Self {
        Self::with_config(NgmConfig::new())
    }
}

impl NgmAllocator {
    /// An adapter with the given configuration. Out-of-range knobs are
    /// clamped into range ([`NgmConfig::sanitized`]) rather than
    /// reported: a `#[global_allocator]` static has nowhere to surface a
    /// build error.
    ///
    /// The blackbox flight recorder is forced off regardless of the
    /// config: assembling a dump allocates, and an allocation from
    /// inside the global allocator's own failure path would re-enter the
    /// adapter (at best burning the bootstrap arena, at worst
    /// deadlocking on the very shard being dumped).
    pub const fn with_config(cfg: NgmConfig) -> Self {
        NgmAllocator {
            cfg: cfg.sanitized().with_blackbox(false),
        }
    }

    /// The unbatched adapter: every small alloc is one synchronous round
    /// trip, every free one post (the pre-magazine behavior).
    #[deprecated(
        since = "0.5.0",
        note = "use `NgmAllocator::with_config(NgmConfig::new())`"
    )]
    pub const fn new() -> Self {
        Self::with_config(NgmConfig::new())
    }

    /// An adapter with the magazine front-end enabled: per-thread,
    /// per-class stashes of `batch_size` addresses and free flushes of
    /// `flush_threshold` (both clamped to `1..=`[`crate::MAX_BATCH`]).
    #[deprecated(
        since = "0.5.0",
        note = "use `NgmAllocator::with_config(NgmConfig::new().with_batch(...))`"
    )]
    pub const fn batched(batch_size: usize, flush_threshold: usize) -> Self {
        Self::with_config(NgmConfig::new().with_batch(batch_size, flush_threshold))
    }

    fn alloc_small(&self, layout: Layout) -> *mut u8 {
        // Re-entrant or service-thread context: bump arena. If the arena
        // ever fills, guarded requests that cannot recurse have no
        // fallback (null aborts the process); 16 MiB makes that remote.
        let guarded = GUARD.try_with(Cell::get).unwrap_or(true);
        if guarded {
            return bootstrap_alloc(layout);
        }
        let rt = runtime(&self.cfg);
        if !SERVICE_READY.load(Ordering::Acquire) {
            // The service loop has not started polling yet; anything that
            // allocates in this window (the service thread's own startup
            // included) must not wait on it.
            return bootstrap_alloc(layout);
        }
        HANDLE
            .try_with(|h| {
                let mut slot = match h.try_borrow_mut() {
                    Ok(s) => s,
                    // Re-entered through this very thread's handle (e.g.
                    // allocation from inside handle creation): arena.
                    Err(_) => return bootstrap_alloc(layout),
                };
                if slot.is_none() {
                    let was = GUARD.with(|g| g.replace(true));
                    *slot = Some(rt.handle());
                    GUARD.with(|g| g.set(was));
                }
                let handle = slot.as_mut().expect("handle initialized above");
                match handle.alloc(layout) {
                    Ok(p) => p.as_ptr(),
                    Err(_) => std::ptr::null_mut(),
                }
            })
            // TLS destroyed (thread exiting): bounded leak via the arena.
            .unwrap_or_else(|_| bootstrap_alloc(layout))
    }

    unsafe fn dealloc_small(ptr: NonNull<u8>, layout: Layout) {
        if is_bootstrap_ptr(ptr.as_ptr()) {
            return; // Arena blocks are leaked by design.
        }
        let Some(rt) = RUNTIME.get() else {
            // A real block cannot exist before the runtime: arena covers
            // every pre-runtime allocation. Nothing to do but drop it.
            debug_assert!(false, "small free before runtime initialization");
            return;
        };
        let guarded = GUARD.try_with(Cell::get).unwrap_or(true);
        if !guarded {
            let done = HANDLE
                .try_with(|h| {
                    if let Ok(mut slot) = h.try_borrow_mut() {
                        if let Some(handle) = slot.as_mut() {
                            // SAFETY: forwarded caller contract (live block
                            // from this allocator, correct layout).
                            unsafe { handle.dealloc(ptr, layout) };
                            return true;
                        }
                    }
                    false
                })
                .unwrap_or(false);
            if done {
                return;
            }
        }
        // No usable handle (guarded context, TLS teardown, foreign thread
        // exiting): orphan the block onto its owning shard's stack; that
        // service reclaims it when idle.
        // SAFETY: live small block relinquished by the caller.
        unsafe { rt.orphan_push(ptr) };
    }
}

// SAFETY: `alloc` returns blocks that are uniquely owned, aligned to
// `layout.align()`, and valid for `layout.size()` bytes (service heap,
// bump arena, and direct mappings all guarantee this); `dealloc` releases
// exactly the block identified by `(ptr, layout)`.
unsafe impl GlobalAlloc for NgmAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout_to_class(layout.size(), layout.align()).is_some() {
            self.alloc_small(layout)
        } else {
            // Large: dedicated mapping on the calling thread.
            let len = round_to_os_page(layout.size());
            let m = if layout.align() > ngm_heap::sys::os_page_size() {
                Mapping::new_aligned(len, layout.align())
            } else {
                Mapping::new(len)
            };
            match m {
                Ok(m) => m.into_raw().0.as_ptr(),
                Err(_) => std::ptr::null_mut(),
            }
        }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        let Some(ptr) = NonNull::new(ptr) else {
            return;
        };
        if layout_to_class(layout.size(), layout.align()).is_some() {
            // SAFETY: forwarded caller contract.
            unsafe { Self::dealloc_small(ptr, layout) };
        } else {
            let len = round_to_os_page(layout.size());
            // SAFETY: large blocks are dedicated mappings of exactly `len`
            // bytes (see `alloc`).
            drop(unsafe { Mapping::from_raw(ptr, len) });
        }
    }
}

/// Runtime statistics of the global allocator, if it has started.
pub fn global_stats() -> Option<ngm_offload::StatsSnapshot> {
    RUNTIME.get().map(|rt| rt.runtime_stats())
}

/// The global allocator's exportable metrics snapshot (counters, gauges,
/// latency histograms, `ngm_heap_*` series), if the runtime has started.
pub fn global_metrics() -> Option<ngm_telemetry::export::MetricsSnapshot> {
    RUNTIME.get().map(|rt| rt.metrics())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(n: usize) -> Layout {
        Layout::from_size_align(n, 8).unwrap()
    }

    #[test]
    fn direct_alloc_dealloc_small() {
        let a = NgmAllocator::default();
        // SAFETY: standard GlobalAlloc usage with matching layouts.
        unsafe {
            let p = a.alloc(layout(100));
            assert!(!p.is_null());
            std::ptr::write_bytes(p, 0xCD, 100);
            assert_eq!(*p.add(99), 0xCD);
            a.dealloc(p, layout(100));
        }
    }

    #[test]
    fn direct_alloc_dealloc_large() {
        let a = NgmAllocator::default();
        let l = layout(1 << 20);
        // SAFETY: standard GlobalAlloc usage.
        unsafe {
            let p = a.alloc(l);
            assert!(!p.is_null());
            *p.add((1 << 20) - 1) = 3;
            a.dealloc(p, l);
        }
    }

    #[test]
    fn many_threads_through_adapter() {
        let a = &NgmAllocator::default();
        std::thread::scope(|s| {
            for t in 0..4u8 {
                s.spawn(move || {
                    let mut blocks = Vec::new();
                    for i in 0..300usize {
                        let l = layout(16 + (i * 29) % 2048);
                        // SAFETY: matched alloc/dealloc below.
                        let p = unsafe { a.alloc(l) };
                        assert!(!p.is_null());
                        // SAFETY: fresh block.
                        unsafe { std::ptr::write_bytes(p, t, 8) };
                        blocks.push((p as usize, l));
                    }
                    for (p, l) in blocks {
                        // SAFETY: blocks allocated above.
                        unsafe { a.dealloc(p as *mut u8, l) };
                    }
                });
            }
        });
        let stats = global_stats().expect("runtime started");
        assert!(stats.calls_served >= 1200);
    }

    #[test]
    fn guarded_context_uses_arena() {
        GUARD.with(|g| g.set(true));
        let a = NgmAllocator::default();
        // SAFETY: standard usage; arena blocks may be freed (ignored).
        unsafe {
            let p = a.alloc(layout(64));
            assert!(is_bootstrap_ptr(p));
            a.dealloc(p, layout(64));
        }
        GUARD.with(|g| g.set(false));
    }
}
