//! The handle-based public API: [`Ngm`], built from an
//! [`NgmConfig`], serving every thread through routed [`NgmHandle`]s.
//!
//! With `shards > 1` the allocator becomes a *tier* of service cores,
//! each owning a disjoint [`ngm_heap::SegregatedHeap`]. Routing keeps the
//! zero-atomics-per-shard invariant (§3.1.3):
//!
//! * **Allocations** route by size class through a handle-local,
//!   rebalanceable `class → shard` map (plus a pure hash for non-class
//!   layouts). Moving the map only redirects *future* allocations.
//! * **Frees** route by address: the owning shard is stamped into the
//!   segment header at creation ([`ngm_heap::owner_of_small_ptr`]), so a
//!   block always returns to the heap that made it — including after any
//!   rebalance, and including blocks freed on a different thread than
//!   allocated them.
//! * **Saturation** surfaces as full-ring retries on the free path; a
//!   handle that keeps hitting them moves its allocation traffic to the
//!   least-pressured shard ([`NgmHandle::rebalance_away_from`]).
//! * **Death** of one shard degrades gracefully: allocations fail over
//!   to survivors, frees owed to the dead shard are dropped and counted
//!   (`posts_dropped`), and the tier keeps serving.

use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Duration;

use ngm_heap::{AllocError, FallbackHeap, HeapStats};
#[cfg(feature = "legacy-api")]
use ngm_offload::WaitStrategy;
use ngm_offload::{
    ClientHandle, OffloadRuntime, PostError, RuntimeConfig, RuntimeHandles, RuntimeStats,
    RuntimeTelemetry, ServiceError, StatsSnapshot,
};
use ngm_pmu::PmuReport;
use ngm_telemetry::blackbox::{BlackboxDump, ShardState, DEFAULT_LAST_K};
use ngm_telemetry::clock::cycles_now;
use ngm_telemetry::export::MetricsSnapshot;
use ngm_telemetry::recorder::{RecordFrame, ShardSample};
use ngm_telemetry::sites::{SiteProfiler, SiteReport};
use ngm_telemetry::trace::{TraceEventKind, TraceRing};
use ngm_telemetry::window::HeatFrame;

use ngm_heap::classes::{layout_to_class, SizeClass, NUM_CLASSES};

#[cfg(feature = "legacy-api")]
use crate::config::ShardTopology;
use crate::config::{
    CorePlacement, ElasticPolicy, NgmConfig, NgmError, ObserverConfig, FALLBACK_OWNER, OWNER_BASE,
};
use crate::heat::{pick_coolest, HeatReport, ObsState, ShardHeat, ShardLifecycle};
use crate::orphan::OrphanStack;
use crate::service::{
    AddrBatch, AllocBatchReq, AllocReq, FreeMsg, FreePost, MallocReq, MallocResp, MallocService,
    ServiceStats, MAX_BATCH,
};
use crate::watch::SharedHeapStats;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wall-clock seconds since the Unix epoch, captured once at the first
/// metrics render (`process_start_time_seconds` is conventionally the
/// scrape target's start, and the tier starts when something first asks
/// it for metrics at the latest).
fn process_start_secs() -> i64 {
    static START: std::sync::OnceLock<i64> = std::sync::OnceLock::new();
    *START.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs() as i64)
    })
}

/// The compiled feature set, for the `ngm_build_info` label.
fn build_features() -> &'static str {
    if cfg!(feature = "faultinject") {
        "faultinject"
    } else {
        "default"
    }
}

/// The [`RecordFrame::states`] glyph for one lifecycle state.
fn state_glyph(state: ShardLifecycle) -> char {
    match state {
        ShardLifecycle::Dormant => '.',
        ShardLifecycle::Serving => 'S',
        ShardLifecycle::Draining => 'D',
        ShardLifecycle::Retired => 'R',
    }
}

/// The per-slot state that changes as the elastic controller spawns and
/// retires shards, shared between [`Ngm`] and every [`NgmHandle`].
///
/// A slot's *service* (heap, owner stamp, orphan stack) is created once
/// and lives for the tier's whole life; what comes and goes is the
/// *thread*. While a thread runs, `runtime` is `Some` and `parked` is
/// `None`; while the slot is dormant or retired it is the other way
/// around. `epoch` counts spawns so handles can tell a client registered
/// against a previous thread from a current one.
struct SlotCell {
    runtime: RwLock<Option<OffloadRuntime<MallocService>>>,
    parked: Mutex<Option<MallocService>>,
    epoch: AtomicU64,
    /// Set when a retirement's `try_shutdown` could not recover the
    /// service (the thread panicked); reported at final shutdown.
    failure: Mutex<Option<ServiceError>>,
}

/// One service-shard slot: the swappable thread cell plus everything that
/// persists across spawn/retire epochs — counters, telemetry, the
/// heap-stats mirror, the orphan stack, and placement.
struct Shard {
    cell: Arc<SlotCell>,
    orphans: Arc<OrphanStack>,
    heap_watch: Arc<SharedHeapStats>,
    /// Stats/telemetry/retiring-gate/fault knobs, shared by every epoch
    /// of this slot (see [`RuntimeHandles`]).
    handles: RuntimeHandles,
    core: Option<usize>,
    cluster: u8,
}

/// The running allocator: one or more dedicated service threads plus
/// registration of per-thread client handles.
pub struct Ngm {
    shards: Box<[Shard]>,
    batch_size: u32,
    flush_threshold: u32,
    sites: Option<Arc<SiteProfiler>>,
    /// The inline allocator of last resort, shared by every handle. Lazy:
    /// maps nothing until the first time a handle exhausts every shard
    /// (all deadlined or dead) and has to serve an allocation itself.
    fallback: Arc<FallbackHeap>,
    /// Shared heat windows + blackbox gate (see [`crate::heat`]).
    obs: Arc<ObsState>,
    /// The elastic policy, when the tier scales at runtime.
    elastic: Option<ElasticPolicy>,
    /// Scaling-controller state, serialized so at most one spawn or
    /// retirement is in flight at a time.
    controller: Mutex<ControllerState>,
    /// Template for per-slot [`RuntimeConfig`]s (core/shard/cluster are
    /// filled in per slot).
    runtime_cfg: RuntimeConfig,
    /// Controller-decision trace ring (on slot 0's telemetry hub — the
    /// resident floor always exists), when tracing is enabled.
    scale_trace: Option<Arc<TraceRing>>,
    /// The live-observer config captured at build time
    /// ([`NgmConfig::with_observer`]), consumed by
    /// [`Ngm::start_observer`].
    observer_cfg: Mutex<Option<ObserverConfig>>,
    /// How many slots non-size-class (large) layouts hash over. Elastic
    /// tiers pin this to the resident floor (`ElasticPolicy::min`) so a
    /// large free — which routes by layout hash, not by address — always
    /// finds its allocating shard still open.
    large_span: usize,
    /// Backpressure ceiling for [`crate::nonblocking::SubmissionQueue`]s
    /// built over this tier's handles ([`NgmConfig::with_inflight_limit`]).
    inflight_limit: usize,
}

#[derive(Debug, Default)]
struct ControllerState {
    hot_streak: u32,
    cold_streak: u32,
    draining: Option<DrainState>,
}

#[derive(Debug)]
struct DrainState {
    shard: usize,
    evals: u32,
}

/// What one elastic-controller evaluation decided (see
/// [`Ngm::scaling_tick`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No action: the tier is between the water marks, a streak has not
    /// sustained yet, some serving shard's heat window is not settled
    /// (the static-policy fallback), or the tier is not elastic.
    Hold,
    /// A dormant/retired slot was spawned and is now serving.
    ScaleUp {
        /// The spawned slot.
        shard: usize,
    },
    /// The coolest retirable shard was gated and is draining toward a
    /// zero alloc/free balance.
    DrainBegun {
        /// The draining shard.
        shard: usize,
    },
    /// A draining shard reached zero balance; its thread was joined and
    /// its service parked.
    Retired {
        /// The retired slot.
        shard: usize,
    },
    /// A draining shard failed to reach zero balance within the policy's
    /// `drain_patience` (e.g. it is wedged); it was returned to serving
    /// rather than wedging the controller with it.
    DrainAborted {
        /// The shard returned to serving.
        shard: usize,
    },
}

impl std::fmt::Debug for Ngm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ngm")
            .field("shards", &self.shards.len())
            .field("batch_size", &self.batch_size)
            .field("flush_threshold", &self.flush_threshold)
            .finish_non_exhaustive()
    }
}

impl Ngm {
    /// Starts with default configuration (one shard, no batching).
    pub fn start() -> Self {
        NgmConfig::new().build().expect("default config is valid")
    }

    /// Builds the tier from a validated config (reached via
    /// [`NgmConfig::build`]).
    ///
    /// Every slot up to the elastic maximum is built eagerly — service,
    /// owner stamp, orphan stack, stats, telemetry — but only the initial
    /// `cfg.shards` get threads; the rest park dormant until the
    /// controller spawns them.
    pub(crate) fn from_config(cfg: NgmConfig) -> Result<Self, NgmError> {
        let cores = ngm_offload::available_cores();
        let total = cfg.elastic.map_or(cfg.shards, |p| p.max);
        let runtime_cfg = RuntimeConfig {
            server_wait: cfg.server_wait,
            client_wait: cfg.client_wait,
            ring_capacity: cfg.free_ring_capacity,
            trace_capacity: cfg.trace_capacity,
            profile: cfg.profile,
            deadline: cfg.deadline,
            ..RuntimeConfig::new()
        };
        let mut shards = Vec::with_capacity(total);
        let mut demand_watches = Vec::with_capacity(total);
        let mut clusters = Vec::with_capacity(total);
        for i in 0..total {
            let orphans = Arc::new(OrphanStack::new());
            let service = MallocService::for_shard(i as u16, Arc::clone(&orphans));
            // Keep observing the heap (and refill demand) after the
            // service thread takes the service away from us.
            let heap_watch = Arc::clone(service.heap_watch());
            demand_watches.push(Arc::clone(service.demand_watch()));
            let core = match cfg.placement {
                // Highest cores first, leaving the low cores — where most
                // runtimes place app threads — alone; float when the
                // machine cannot give every shard its own room.
                CorePlacement::Auto => (cores > total).then(|| cores - 1 - i),
                CorePlacement::Unpinned => None,
                CorePlacement::Base(base) => Some(base + i),
            };
            let cluster = cfg.topology.clusters[i];
            clusters.push(cluster);
            shards.push(Shard {
                cell: Arc::new(SlotCell {
                    runtime: RwLock::new(None),
                    parked: Mutex::new(Some(service)),
                    epoch: AtomicU64::new(0),
                    failure: Mutex::new(None),
                }),
                orphans,
                heap_watch,
                handles: RuntimeHandles::fresh(&runtime_cfg),
                core,
                cluster,
            });
        }
        let mut ngm = Ngm {
            shards: shards.into_boxed_slice(),
            batch_size: cfg.batch_size as u32,
            flush_threshold: cfg.flush_threshold as u32,
            sites: (cfg.site_sample > 0).then(|| Arc::new(SiteProfiler::new(cfg.site_sample))),
            fallback: Arc::new(FallbackHeap::new(FALLBACK_OWNER)),
            obs: Arc::new(ObsState::new(
                cfg.blackbox,
                cfg.heat_window,
                demand_watches,
                clusters,
            )),
            elastic: cfg.elastic,
            controller: Mutex::new(ControllerState::default()),
            runtime_cfg,
            scale_trace: None,
            observer_cfg: Mutex::new(cfg.observer),
            large_span: cfg.elastic.map_or(cfg.shards, |p| p.min),
            inflight_limit: cfg.inflight_limit,
        };
        for i in 0..cfg.shards {
            ngm.spawn_slot(i).map_err(NgmError::Spawn)?;
        }
        // The controller's decision ring claims its thread id only after
        // the initial spawns, so slot 0's service loop keeps id 0.
        ngm.scale_trace = ngm.shards[0].handles.telemetry.new_ring();
        Ok(ngm)
    }

    /// Per-slot runtime config: the shared template plus this slot's
    /// placement.
    fn slot_runtime_cfg(&self, slot: usize) -> RuntimeConfig {
        RuntimeConfig {
            core: self.shards[slot].core,
            shard: slot,
            cluster: self.shards[slot].cluster as usize,
            ..self.runtime_cfg
        }
    }

    /// Takes the slot's parked service and gives it a (new) thread. The
    /// slot's stats, telemetry, and fault knobs persist across epochs
    /// (see [`RuntimeHandles`]); the epoch bump tells handles their old
    /// clients are stale.
    fn spawn_slot(&self, slot: usize) -> Result<(), ServiceError> {
        let shard = &self.shards[slot];
        let mut rt_guard = shard
            .cell
            .runtime
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if rt_guard.is_some() {
            return Ok(());
        }
        let service = lock(&shard.cell.parked)
            .take()
            .ok_or(ServiceError::SpawnFailed)?;
        let runtime =
            OffloadRuntime::try_start_shared(service, self.slot_runtime_cfg(slot), &shard.handles)?;
        *rt_guard = Some(runtime);
        shard.cell.epoch.fetch_add(1, Ordering::AcqRel);
        drop(rt_guard);
        self.obs.set_state(slot, ShardLifecycle::Serving);
        Ok(())
    }

    /// Deprecated builder entry point.
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.5.0",
        note = "use `NgmConfig::new()` and its `with_*` setters"
    )]
    #[allow(deprecated)]
    pub fn builder() -> NgmBuilder {
        NgmBuilder::default()
    }

    /// Number of service-shard slots in this tier. For a static tier
    /// this is the configured shard count; for an elastic tier it is the
    /// policy's `max` (use [`Ngm::serving_shards`] for the currently
    /// serving subset).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Registers a handle for the calling (or any) thread. The handle
    /// holds one client endpoint per serving shard and routes between
    /// them, registering endpoints to later-spawned shards lazily.
    pub fn handle(&self) -> NgmHandle {
        self.handle_inner(None)
    }

    /// As [`Ngm::handle`], but preferring same-cluster shards when
    /// routing allocations: the handle's class map spreads over the
    /// serving shards on `cluster` when any exist, falling back to the
    /// whole serving set otherwise. Frees are address-routed and ignore
    /// the preference.
    pub fn handle_on_cluster(&self, cluster: u8) -> NgmHandle {
        self.handle_inner(Some(cluster))
    }

    fn handle_inner(&self, preferred_cluster: Option<u8>) -> NgmHandle {
        let n = self.shards.len();
        let mut clients = Vec::with_capacity(n);
        let mut client_epoch = Vec::with_capacity(n);
        for (i, s) in self.shards.iter().enumerate() {
            let guard = s
                .cell
                .runtime
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            // A PMU session counts its whole thread; arming one handle
            // per shard would re-count this thread once per shard, so
            // only the shard-0 endpoint arms.
            clients.push(guard.as_ref().map(|rt| rt.register_client_with_pmu(i == 0)));
            client_epoch.push(s.cell.epoch.load(Ordering::Acquire));
        }
        let mut handle = NgmHandle {
            clients: clients.into_boxed_slice(),
            slots: self.shards.iter().map(|s| Arc::clone(&s.cell)).collect(),
            client_epoch: client_epoch.into_boxed_slice(),
            seen_generation: self.obs.generation(),
            preferred_cluster,
            shard_stats: self
                .shards
                .iter()
                .map(|s| Arc::clone(&s.handles.stats))
                .collect(),
            shard_telemetry: self
                .shards
                .iter()
                .map(|s| Arc::clone(&s.handles.telemetry))
                .collect(),
            large_span: self.large_span,
            orphans: self.shards.iter().map(|s| Arc::clone(&s.orphans)).collect(),
            batch_size: self.batch_size,
            flush_threshold: self.flush_threshold,
            magazines: [AddrBatch::empty(); NUM_CLASSES],
            mag_shard: [0u16; NUM_CLASSES],
            class_shard: [0u16; NUM_CLASSES],
            free_bufs: vec![AddrBatch::empty(); n].into_boxed_slice(),
            stash_by_shard: vec![0i64; n].into_boxed_slice(),
            published_occupancy: vec![0i64; n].into_boxed_slice(),
            post_weights: vec![std::collections::VecDeque::new(); n].into_boxed_slice(),
            pressure: vec![0u32; n].into_boxed_slice(),
            failed: vec![false; n].into_boxed_slice(),
            sites: self.sites.clone(),
            fallback: Arc::clone(&self.fallback),
            obs: Arc::clone(&self.obs),
            nb_pending: vec![None; n].into_boxed_slice(),
            inflight_limit: self.inflight_limit,
        };
        handle.recompute_class_routes();
        handle
    }

    /// Samples every shard into its heat window and returns the windowed
    /// aggregates: recent calls, deadline/retry/fallback rates, ring
    /// occupancy, windowed phase percentiles, and per-size-class refill
    /// demand. Each call pushes one frame per shard, so the window depth
    /// ([`NgmConfig::with_heat_window`]) spans the last N sampling
    /// intervals at whatever cadence the caller reports.
    pub fn heat_report(&self) -> HeatReport {
        let fallbacks = self.fallback.allocs();
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                // Counters live in the slot's persistent handles, so a
                // dormant slot samples as zeros and a respawned slot's
                // window stays monotonic across epochs.
                let stats = s.handles.stats.snapshot();
                let frame = HeatFrame {
                    tsc: cycles_now(),
                    ring_occupancy: stats.ring_occupancy as u64,
                    calls: stats.calls_served,
                    deadlines: stats.deadlines,
                    retries: stats.post_full_retries,
                    fallbacks,
                    phases: s
                        .handles
                        .telemetry
                        .phase_cycles
                        .iter()
                        .map(|h| h.snapshot())
                        .collect(),
                    demand: self.obs.demand(i),
                };
                ShardHeat {
                    shard: i,
                    heat: self.obs.push_frame(i, frame),
                }
            })
            .collect();
        // The scrape path doubles as the controller's evaluation tick;
        // contention (another scrape or an explicit tick mid-decision)
        // just skips this evaluation rather than blocking a metrics
        // scrape on a thread join.
        if self.elastic.is_some() {
            if let Ok(mut st) = self.controller.try_lock() {
                let _ = self.evaluate_scaling(&mut st);
            }
        }
        HeatReport { shards }
    }

    // ---- elastic controller ----

    /// Runs one controller evaluation against the heat frames already in
    /// the windows (pushing none), and returns what it decided. The same
    /// evaluation runs automatically at the end of every
    /// [`Ngm::heat_report`] (hence every metrics scrape); this explicit
    /// tick exists for background drivers ([`Ngm::autoscaler`]) and for
    /// deterministic tests that inject frames via [`Ngm::inject_heat`].
    ///
    /// Always [`ScaleDecision::Hold`] for a non-elastic tier.
    pub fn scaling_tick(&self) -> ScaleDecision {
        let mut st = lock(&self.controller);
        self.evaluate_scaling(&mut st)
    }

    fn evaluate_scaling(&self, st: &mut ControllerState) -> ScaleDecision {
        let Some(policy) = self.elastic else {
            return ScaleDecision::Hold;
        };
        // A drain in progress owns the controller until it completes or
        // runs out of patience; no other scaling happens meanwhile.
        if let Some(drain) = &mut st.draining {
            let shard = drain.shard;
            if self.drain_complete(shard) {
                st.draining = None;
                self.finish_retire(shard);
                return ScaleDecision::Retired { shard };
            }
            drain.evals += 1;
            if drain.evals >= policy.drain_patience {
                // Wedged mid-drain: reopen the shard rather than hang.
                st.draining = None;
                if let Some(rt) = self.shards[shard]
                    .cell
                    .runtime
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .as_ref()
                {
                    rt.end_retire();
                }
                self.obs.set_state(shard, ShardLifecycle::Serving);
                self.push_scale_event(4, shard);
                return ScaleDecision::DrainAborted { shard };
            }
            return ScaleDecision::Hold;
        }
        let serving = self.serving_shards();
        if serving.is_empty() {
            return ScaleDecision::Hold;
        }
        // Load metric: windowed heat score plus windowed calls, averaged
        // per serving shard. Every serving shard's window must be settled
        // (>= 2 frames) or the controller falls back to the static
        // policy — a single cumulative-since-start frame reads as a
        // garbage delta.
        let mut loads = Vec::with_capacity(serving.len());
        for &s in &serving {
            match self.obs.settled_heat(s) {
                Some(heat) => {
                    let calls = heat.calls;
                    let score = ShardHeat { shard: s, heat }.score();
                    loads.push((s, score.saturating_add(calls)));
                }
                None => {
                    st.hot_streak = 0;
                    st.cold_streak = 0;
                    return ScaleDecision::Hold;
                }
            }
        }
        let mean = loads.iter().map(|&(_, l)| l).sum::<u64>() / serving.len() as u64;
        if mean > policy.high_water && serving.len() < policy.max {
            st.hot_streak += 1;
            st.cold_streak = 0;
            if st.hot_streak >= policy.sustain {
                st.hot_streak = 0;
                if let Some(slot) = self.pick_spawn_slot(&serving) {
                    if self.spawn_slot(slot).is_ok() {
                        self.obs.record_scale_up();
                        self.push_scale_event(1, slot);
                        return ScaleDecision::ScaleUp { shard: slot };
                    }
                }
            }
        } else if mean < policy.low_water && serving.len() > policy.min {
            st.cold_streak += 1;
            st.hot_streak = 0;
            if st.cold_streak >= policy.sustain {
                st.cold_streak = 0;
                // Retire the coolest shard outside the resident floor
                // (slots `0..min` never retire: large layouts hash over
                // them, so their frees must always find them open).
                let candidates = loads
                    .iter()
                    .filter(|&&(s, _)| s >= policy.min)
                    .map(|&(s, l)| (s, l, false));
                if let Some(victim) = pick_coolest(candidates) {
                    self.gate_for_drain(victim);
                    st.draining = Some(DrainState {
                        shard: victim,
                        evals: 0,
                    });
                    self.push_scale_event(2, victim);
                    return ScaleDecision::DrainBegun { shard: victim };
                }
            }
        } else {
            st.hot_streak = 0;
            st.cold_streak = 0;
        }
        ScaleDecision::Hold
    }

    /// The dormant/retired slot to spawn next: least-loaded cluster
    /// (fewest serving shards), ties to the lowest slot index — the same
    /// tie-breaking as [`pick_coolest`], with "cool" meaning "empty".
    fn pick_spawn_slot(&self, serving: &[usize]) -> Option<usize> {
        let serving_in_cluster = |cluster: u8| {
            serving
                .iter()
                .filter(|&&s| self.shards[s].cluster == cluster)
                .count() as u64
        };
        let candidates = (0..self.shards.len()).filter_map(|s| {
            let parked = matches!(
                self.obs.state(s),
                ShardLifecycle::Dormant | ShardLifecycle::Retired
            ) && lock(&self.shards[s].cell.parked).is_some();
            parked.then(|| (s, serving_in_cluster(self.shards[s].cluster), false))
        });
        pick_coolest(candidates)
    }

    /// Gates `shard` against new synchronous calls and marks it draining.
    fn gate_for_drain(&self, shard: usize) {
        if let Some(rt) = self.shards[shard]
            .cell
            .runtime
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            rt.begin_retire();
        }
        self.obs.set_state(shard, ShardLifecycle::Draining);
    }

    /// Starts draining `shard` toward retirement, as if the controller
    /// had picked it: new allocations route elsewhere while address-
    /// routed frees keep landing until its balance reaches zero, at which
    /// point a later evaluation joins its thread. Returns `false` (and
    /// does nothing) when the tier is not elastic, another drain is in
    /// flight, `shard` is inside the resident floor or not serving, or
    /// retiring it would leave fewer than `min` shards.
    pub fn begin_retire(&self, shard: usize) -> bool {
        let Some(policy) = self.elastic else {
            return false;
        };
        let mut st = lock(&self.controller);
        if st.draining.is_some()
            || shard < policy.min
            || shard >= self.shards.len()
            || self.obs.state(shard) != ShardLifecycle::Serving
            || self.serving_shards().len() <= policy.min
        {
            return false;
        }
        self.gate_for_drain(shard);
        st.draining = Some(DrainState { shard, evals: 0 });
        self.push_scale_event(2, shard);
        true
    }

    /// Whether `shard` has handed every block back: the service heap
    /// balances, nothing is left in its rings, no handle still stashes
    /// its blocks in a magazine, and its orphan stack is drained.
    fn drain_complete(&self, shard: usize) -> bool {
        let slot = &self.shards[shard];
        let heap = slot.heap_watch.load();
        if heap.total_allocs != heap.total_frees {
            return false;
        }
        if slot.orphans.pushed() != slot.orphans.drained() {
            return false;
        }
        let stats = slot.handles.stats.snapshot();
        stats.ring_occupancy == 0 && stats.magazine_occupancy == 0
    }

    /// Joins a drained shard's thread and parks its service for a later
    /// respawn.
    fn finish_retire(&self, shard: usize) {
        let runtime = self.shards[shard]
            .cell
            .runtime
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(rt) = runtime {
            match rt.try_shutdown() {
                Ok((mut svc, _stats)) => {
                    // The stop path drains rings but runs no further idle
                    // rounds; reclaim any last-moment orphans now.
                    svc.reclaim_orphans();
                    *lock(&self.shards[shard].cell.parked) = Some(svc);
                }
                Err(failure) => {
                    *lock(&self.shards[shard].cell.failure) = Some(failure.error);
                }
            }
        }
        self.obs.set_state(shard, ShardLifecycle::Retired);
        self.obs.record_scale_down();
        self.push_scale_event(3, shard);
    }

    fn push_scale_event(&self, code: u64, shard: usize) {
        if let Some(ring) = &self.scale_trace {
            ring.push(TraceEventKind::Scale, code, shard as u64);
        }
    }

    /// The slots currently serving, in index order.
    pub fn serving_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&s| self.obs.state(s) == ShardLifecycle::Serving)
            .collect()
    }

    /// Every slot's lifecycle state, indexed by slot.
    pub fn shard_states(&self) -> Vec<ShardLifecycle> {
        (0..self.shards.len()).map(|s| self.obs.state(s)).collect()
    }

    /// Pushes a heat frame into `shard`'s window, exactly as a
    /// [`Ngm::heat_report`] sample would — the deterministic way for
    /// tests (and replay drivers) to steer the controller without real
    /// load. Frames are cumulative: the window differentiates them.
    pub fn inject_heat(&self, shard: usize, frame: HeatFrame) {
        let _ = self.obs.push_frame(shard, frame);
    }

    /// Times the controller scales up / down so far (exported as
    /// `ngm_scale_up_total` / `ngm_scale_down_total`).
    pub fn scale_counts(&self) -> (u64, u64) {
        (self.obs.scale_up_total(), self.obs.scale_down_total())
    }

    /// The most recent blackbox dumps, newest last (empty when the
    /// blackbox is disabled or nothing has fired). Dumps also go to
    /// stderr and the `NGM_BLACKBOX_PATH` file at emit time; this ring
    /// is what the observer's `/blackbox` endpoint serves.
    pub fn blackbox_dumps(&self) -> Vec<BlackboxDump> {
        self.obs
            .blackbox
            .as_ref()
            .map(|r| r.recent())
            .unwrap_or_default()
    }

    /// Shared observability state, for the observer endpoints.
    pub(crate) fn obs_state(&self) -> &ObsState {
        &self.obs
    }

    /// Takes the observer config stashed by [`NgmConfig::with_observer`]
    /// (at most once).
    pub(crate) fn take_observer_cfg(&self) -> Option<ObserverConfig> {
        lock(&self.observer_cfg).take()
    }

    /// One flight-recorder frame of tier state, assembled while holding
    /// the controller mutex. Every scale transition stamps its trace
    /// event under that same mutex, so a frame can never observe a
    /// serving count that disagrees with the `Scale` events timestamped
    /// before and after it — which is what lets the offline analyzer
    /// cross-check a recording against the event stream *exactly*.
    pub(crate) fn observer_frame(&self) -> RecordFrame {
        let _st = lock(&self.controller);
        let states: String = (0..self.shards.len())
            .map(|s| state_glyph(self.obs.state(s)))
            .collect();
        let serving = states.chars().filter(|&c| c == 'S').count() as u64;
        let stats = self.runtime_stats();
        let shards = (0..self.shards.len())
            .filter_map(|s| {
                let heat = self.obs.settled_heat(s)?;
                let sh = ShardHeat { shard: s, heat };
                Some(ShardSample {
                    shard: s as u64,
                    score: sh.score(),
                    calls: sh.heat.calls,
                    deadlines: sh.heat.deadlines,
                    retries: sh.heat.retries,
                    ring: sh.heat.ring_occupancy,
                })
            })
            .collect();
        RecordFrame {
            tsc: cycles_now(),
            serving,
            states,
            deadlines: stats.deadlines,
            fallbacks: self.fallback.allocs(),
            scale_up: self.obs.scale_up_total(),
            scale_down: self.obs.scale_down_total(),
            obs_cycles: self.obs.obs_cycles_total(),
            shards,
        }
    }

    /// One shard's runtime-level health ([`ngm_offload::ShardHealth`]):
    /// `None` for a slot with no thread (dormant/retired), otherwise
    /// whether the thread is serving, gated for drain, or dead.
    pub fn shard_health(&self, shard: usize) -> Option<ngm_offload::ShardHealth> {
        self.shards[shard]
            .cell
            .runtime
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(OffloadRuntime::health)
    }

    /// Serving slots whose service thread has exited without the
    /// controller noticing yet — a wedged shard. Handles fail traffic
    /// over on their own; this surfaces the condition to `/readyz`.
    pub(crate) fn wedged_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&s| {
                self.obs.state(s) == ShardLifecycle::Serving
                    && self.shard_health(s) == Some(ngm_offload::ShardHealth::Down)
            })
            .collect()
    }

    /// Whether an in-flight drain has already outlived the policy's
    /// `drain_patience` (the controller will abort it on its next tick;
    /// until then the tier reports degraded). `false` when the
    /// controller is busy deciding — a held lock means ticks are live.
    pub(crate) fn drain_overdue(&self) -> bool {
        let Some(policy) = self.elastic else {
            return false;
        };
        match self.controller.try_lock() {
            Ok(st) => st
                .draining
                .as_ref()
                .is_some_and(|d| d.evals >= policy.drain_patience),
            Err(_) => false,
        }
    }

    /// Spawns a background thread that drives [`Ngm::heat_report`] (and
    /// with it the elastic controller) every `interval`, for deployments
    /// without a metrics scraper to piggyback on. The thread holds only a
    /// weak reference and exits on its own once the tier is dropped; stop
    /// it explicitly (or drop the returned handle) before
    /// [`Ngm::shutdown`] to avoid it briefly reviving the `Arc`.
    pub fn autoscaler(self: &Arc<Self>, interval: Duration) -> Autoscaler {
        let weak = Arc::downgrade(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("ngm-autoscaler".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    std::thread::sleep(interval);
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Some(ngm) = weak.upgrade() else { break };
                    let _ = ngm.heat_report();
                }
            })
            .expect("failed to spawn autoscaler thread");
        Autoscaler {
            stop,
            thread: Some(thread),
        }
    }

    /// The shared degradation heap (diagnostics: `allocs()` > 0 means
    /// some request exhausted every shard and was served inline).
    pub fn fallback_heap(&self) -> &Arc<FallbackHeap> {
        &self.fallback
    }

    /// Shard `shard`'s live fault-injection knobs (`faultinject` builds
    /// only): wedge the service loop, drop or delay responses, kill the
    /// thread mid-serve — while the tier runs.
    #[cfg(feature = "faultinject")]
    pub fn fault_state(&self, shard: usize) -> &Arc<ngm_offload::FaultState> {
        &self.shards[shard].handles.fault
    }

    /// Shard `shard`'s orphan stack (used by the global-allocator adapter
    /// and tests; frees pushed here are reclaimed by that shard's idle
    /// hook).
    pub fn shard_orphans(&self, shard: usize) -> &Arc<OrphanStack> {
        &self.shards[shard].orphans
    }

    /// Shard 0's orphan stack.
    #[deprecated(
        since = "0.5.0",
        note = "orphans are per shard: use `orphan_push` to free, \
                `orphans_pushed`/`orphans_drained` for totals"
    )]
    pub fn orphans(&self) -> &Arc<OrphanStack> {
        &self.shards[0].orphans
    }

    /// Frees a small block via its owning shard's orphan stack, routing
    /// by address. The right path for contexts that cannot hold a handle
    /// (thread teardown, guarded global-allocator re-entry).
    ///
    /// # Safety
    ///
    /// `ptr` must be a live small-class block allocated by this `Ngm`,
    /// relinquished by the caller.
    pub unsafe fn orphan_push(&self, ptr: NonNull<u8>) {
        // SAFETY: forwarded contract — a live small block from one of our
        // segregated heaps (shard or fallback).
        let owner = unsafe { ngm_heap::owner_of_small_ptr(ptr) };
        if self.fallback.is_active() && owner == FALLBACK_OWNER {
            // Degraded-mode block: no shard ever owned it, so no orphan
            // stack can reclaim it. Free it inline.
            // SAFETY: forwarded contract.
            unsafe { self.fallback.deallocate(ptr) };
            return;
        }
        let shard = self.shard_of_owned(owner);
        // SAFETY: forwarded contract.
        unsafe { self.shards[shard].orphans.push(ptr) };
    }

    fn shard_of_owned(&self, owner: u64) -> usize {
        let shard = owner.wrapping_sub(OWNER_BASE) as usize;
        debug_assert!(shard < self.shards.len(), "foreign owner id {owner:#x}");
        if shard < self.shards.len() {
            shard
        } else {
            0
        }
    }

    /// Total blocks ever pushed onto any shard's orphan stack.
    pub fn orphans_pushed(&self) -> u64 {
        self.shards.iter().map(|s| s.orphans.pushed()).sum()
    }

    /// Total orphaned blocks reclaimed by the service shards so far.
    pub fn orphans_drained(&self) -> u64 {
        self.shards.iter().map(|s| s.orphans.drained()).sum()
    }

    /// Offload-runtime counters, merged across every shard (counters and
    /// occupancy gauges sum; `service_down` is true if *any* shard is
    /// down).
    pub fn runtime_stats(&self) -> StatsSnapshot {
        let mut merged = self.shards[0].handles.stats.snapshot();
        for s in &self.shards[1..] {
            merged.absorb(&s.handles.stats.snapshot());
        }
        merged
    }

    /// One shard's offload-runtime counters.
    pub fn shard_runtime_stats(&self, shard: usize) -> StatsSnapshot {
        self.shards[shard].handles.stats.snapshot()
    }

    /// Asks shard `shard`'s service thread to stop: it drains outstanding
    /// frees, then exits. Handles observe the death and fail allocation
    /// traffic over to the surviving shards; frees owed to the stopped
    /// shard are dropped and counted. [`Ngm::shutdown`] later recovers
    /// the shard's final stats normally. A no-op for a slot with no
    /// thread.
    pub fn stop_shard(&self, shard: usize) {
        if let Some(rt) = self.shards[shard]
            .cell
            .runtime
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            rt.request_stop();
        }
    }

    /// Whether shard `shard`'s service thread has exited (orderly or by
    /// panic) — or never had one (a dormant/retired slot).
    pub fn shard_finished(&self, shard: usize) -> bool {
        self.shards[shard]
            .cell
            .runtime
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .is_none_or(OffloadRuntime::is_finished)
    }

    /// Shard 0's telemetry hub (histograms of a single-shard tier; for
    /// the merged view use [`Ngm::metrics`]).
    pub fn telemetry(&self) -> &Arc<RuntimeTelemetry> {
        &self.shards[0].handles.telemetry
    }

    /// One shard's telemetry hub.
    pub fn shard_telemetry(&self, shard: usize) -> &Arc<RuntimeTelemetry> {
        &self.shards[shard].handles.telemetry
    }

    /// A near-current view of the service heaps (summed across shards),
    /// published by each service thread during idle rounds. Fields may
    /// lag a busy service by one publication; the stats returned by
    /// [`Ngm::shutdown`] are exact.
    pub fn live_heap_stats(&self) -> HeapStats {
        let mut merged = HeapStats::default();
        for s in self.shards.iter() {
            merged.absorb(&s.heap_watch.load());
        }
        merged
    }

    /// One shard's near-current heap view.
    pub fn shard_live_heap_stats(&self, shard: usize) -> HeapStats {
        self.shards[shard].heap_watch.load()
    }

    /// The full exportable metrics snapshot, merged across shards:
    /// offload-runtime counters, gauges, and latency histograms, plus
    /// `ngm_heap_*` series mirrored from the service heaps.
    pub fn metrics(&self) -> MetricsSnapshot {
        let stats = self.runtime_stats();
        let peers: Vec<&RuntimeTelemetry> = self.shards[1..]
            .iter()
            .map(|s| &*s.handles.telemetry)
            .collect();
        let mut m = self.shards[0]
            .handles
            .telemetry
            .metrics_merged(&stats, &peers);
        let heap = self.live_heap_stats();
        m.counter("ngm_heap_allocs_total", heap.total_allocs)
            .counter("ngm_heap_frees_total", heap.total_frees)
            .counter("ngm_heap_large_allocs_total", heap.large_allocs)
            .counter("ngm_fallback_allocs_total", self.fallback.allocs())
            .counter("ngm_scale_up_total", self.obs.scale_up_total())
            .counter("ngm_scale_down_total", self.obs.scale_down_total())
            .gauge("ngm_service_shards", self.serving_shards().len() as i64)
            .gauge("ngm_heap_live_blocks", heap.live_blocks as i64)
            .gauge("ngm_heap_live_bytes", heap.live_bytes as i64)
            .gauge("ngm_heap_segments", heap.segments as i64)
            .gauge("ngm_heap_pages_in_use", heap.pages_in_use as i64)
            .gauge("ngm_heap_peak_live_bytes", heap.peak_live_bytes as i64);
        // Scrape-target conventions: liveness, build identity, process
        // start, and the running cost of observability itself.
        m.counter("ngm_obs_scrape_cycles_total", self.obs.obs_cycles_total())
            .gauge("ngm_up", 1)
            .gauge("process_start_time_seconds", process_start_secs())
            .labeled_gauge(
                "ngm_build_info",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("features", build_features()),
                ],
                1,
            );
        // Metrics sampling doubles as heat sampling: every scrape pushes
        // one frame per shard, so the heat window spans the last N
        // scrape intervals.
        self.heat_report().publish(&mut m);
        if let Some(report) = self.site_report() {
            report.publish(&mut m);
        }
        m
    }

    /// The service-cores-vs-app-cores PMU report, when
    /// [`NgmConfig::profile`] was set and at least one measured thread
    /// has retired. Each shard's service loop is its own column
    /// (`shard<N>`); client columns merge, since only one endpoint per
    /// thread arms. Grab [`Ngm::telemetry`] with `Arc::clone` before
    /// [`Ngm::shutdown`] to read the service columns after it.
    pub fn pmu_report(&self) -> Option<PmuReport> {
        if self.shards.len() == 1 {
            return self.shards[0].handles.telemetry.pmu_report();
        }
        let mut out = PmuReport::new("PMU: service shards vs app cores");
        let mut any = false;
        for (i, s) in self.shards.iter().enumerate() {
            if let Some(rep) = s.handles.telemetry.pmu_report() {
                for col in rep.cols {
                    any = true;
                    if col.name.starts_with("service") {
                        out.push(format!("shard{i}"), col.reading);
                    } else {
                        out.push(col.name, col.reading);
                    }
                }
            }
        }
        any.then_some(out)
    }

    /// The allocation-site attribution snapshot, when
    /// [`NgmConfig::site_sample`] enabled the profiler. Rendered at
    /// shutdown this is the leak report: surviving sites are leak
    /// suspects.
    pub fn site_report(&self) -> Option<SiteReport> {
        self.sites.as_ref().map(|s| s.report())
    }

    /// Stops every service shard and returns final statistics, per shard
    /// and merged.
    ///
    /// All handles must be dropped or idle; posted frees are drained
    /// before each thread exits. A shard whose thread panicked comes back
    /// with [`ShardShutdown::error`] set and its last-published heap view
    /// instead of propagating the panic.
    pub fn shutdown(self) -> NgmShutdown {
        let mut shards = Vec::new();
        let mut service = ServiceStats::default();
        let mut heap = HeapStats::default();
        let mut runtime: Option<StatsSnapshot> = None;
        for (i, shard) in Vec::from(self.shards).into_iter().enumerate() {
            let taken = shard
                .cell
                .runtime
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            let out = match taken {
                Some(rt) => match rt.try_shutdown() {
                    Ok((mut svc, stats)) => {
                        // The stop path drains rings but never runs
                        // another idle round, so orphans pushed late
                        // (deadline-rerouted frees, teardown races) are
                        // still pending — reclaim them now that we own
                        // the service again.
                        svc.reclaim_orphans();
                        ShardShutdown {
                            shard: i,
                            service: svc.service_stats(),
                            heap: svc.heap_stats(),
                            runtime: stats,
                            error: None,
                        }
                    }
                    Err(failure) => ShardShutdown {
                        shard: i,
                        service: ServiceStats::default(),
                        // The service state died with its thread; the
                        // idle-published mirror is the best remaining
                        // estimate.
                        heap: shard.heap_watch.load(),
                        runtime: failure.stats,
                        error: Some(failure.error),
                    },
                },
                // No thread: the slot is dormant (never spawned) or
                // retired (drained to zero balance and parked). The
                // parked service reports its exact cumulative books; a
                // slot whose retirement lost the service (it panicked
                // mid-drain) reports the stored failure instead.
                None => match lock(&shard.cell.parked).take() {
                    Some(mut svc) => {
                        svc.reclaim_orphans();
                        ShardShutdown {
                            shard: i,
                            service: svc.service_stats(),
                            heap: svc.heap_stats(),
                            runtime: shard.handles.stats.snapshot(),
                            error: lock(&shard.cell.failure).take(),
                        }
                    }
                    None => ShardShutdown {
                        shard: i,
                        service: ServiceStats::default(),
                        heap: shard.heap_watch.load(),
                        runtime: shard.handles.stats.snapshot(),
                        error: lock(&shard.cell.failure).take(),
                    },
                },
            };
            service.absorb(&out.service);
            heap.absorb(&out.heap);
            match &mut runtime {
                Some(r) => r.absorb(&out.runtime),
                None => runtime = Some(out.runtime),
            }
            shards.push(out);
        }
        // Fold the degradation heap into the merged totals: its blocks
        // are real allocations the application received, so they must
        // participate in the allocs == frees invariant.
        service.fallback_allocs = self.fallback.allocs();
        service.allocs += self.fallback.allocs();
        service.frees += self.fallback.frees();
        heap.absorb(&self.fallback.stats());
        NgmShutdown {
            shards,
            service,
            heap,
            runtime: runtime.expect("a tier has at least one shard"),
        }
    }
}

/// Guard for the background scaling driver spawned by
/// [`Ngm::autoscaler`]: stops and joins the thread on [`Autoscaler::stop`]
/// or drop.
#[derive(Debug)]
pub struct Autoscaler {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Autoscaler {
    /// Stops the driver thread and waits for it to exit.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Autoscaler {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Final statistics from [`Ngm::shutdown`]: exact per-shard results plus
/// the merged totals.
#[derive(Debug, Clone)]
pub struct NgmShutdown {
    /// Per-shard results, indexed by shard.
    pub shards: Vec<ShardShutdown>,
    /// Service counters summed across shards.
    pub service: ServiceStats,
    /// Heap statistics summed across shards (`peak_live_bytes` is the sum
    /// of per-shard peaks — an upper bound on the true combined peak).
    pub heap: HeapStats,
    /// Offload-runtime counters merged across shards.
    pub runtime: StatsSnapshot,
}

impl NgmShutdown {
    /// Whether every shard shut down cleanly (no panics, no double
    /// shutdowns).
    pub fn clean(&self) -> bool {
        self.shards.iter().all(|s| s.error.is_none())
    }

    /// Whether allocation/free accounting balances on every clean shard
    /// — the invariant `allocs == frees` must hold *per shard*, not just
    /// globally, or cross-shard frees went to the wrong heap.
    pub fn balanced(&self) -> bool {
        self.shards
            .iter()
            .filter(|s| s.error.is_none())
            .all(|s| s.service.allocs == s.service.frees)
    }
}

/// One shard's final statistics.
#[derive(Debug, Clone)]
pub struct ShardShutdown {
    /// The shard index.
    pub shard: usize,
    /// The shard's service counters (zeroed when the service state died
    /// with its thread — see `error`).
    pub service: ServiceStats,
    /// The shard's heap statistics (the last idle-published view when the
    /// thread died).
    pub heap: HeapStats,
    /// The shard's offload-runtime counters.
    pub runtime: StatsSnapshot,
    /// Why the shard's service state could not be recovered, if it
    /// couldn't.
    pub error: Option<ServiceError>,
}

/// Deprecated alias for [`Ngm`].
#[cfg(feature = "legacy-api")]
#[deprecated(since = "0.5.0", note = "renamed to `Ngm`")]
pub type NextGenMalloc = Ngm;

/// Deprecated configuration shim; superseded by [`NgmConfig`].
///
/// Field-for-field compatible with the old builder. `start()` clamps
/// out-of-range knobs exactly as it used to, instead of surfacing
/// [`NgmError`].
#[cfg(feature = "legacy-api")]
#[deprecated(since = "0.5.0", note = "use `NgmConfig` and `NgmConfig::build`")]
#[derive(Debug, Clone, Copy)]
pub struct NgmBuilder {
    /// Core to pin the service thread to; `None` leaves it floating.
    pub service_core: Option<usize>,
    /// Wait policy for client threads blocked on `alloc`.
    pub client_wait: WaitStrategy,
    /// Wait policy for the service thread's polling loop.
    pub server_wait: WaitStrategy,
    /// Capacity of each client's asynchronous free ring.
    pub free_ring_capacity: usize,
    /// Per-thread event-trace ring capacity; `0` disables tracing.
    pub trace_capacity: usize,
    /// Blocks fetched per magazine refill (clamped to
    /// `1..=`[`crate::service::MAX_BATCH`]).
    pub batch_size: usize,
    /// Small-block frees buffered before one batched flush post (clamped
    /// to `1..=`[`crate::service::MAX_BATCH`]).
    pub flush_threshold: usize,
    /// Enables PMU profiling.
    pub profile: bool,
    /// Allocation-site sample interval (`0` disables).
    pub site_sample: u64,
}

#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
impl Default for NgmBuilder {
    fn default() -> Self {
        // Pin to the last core when the machine has more than one — the
        // paper's "own room" — otherwise float.
        let cores = ngm_offload::available_cores();
        NgmBuilder {
            service_core: (cores > 1).then(|| cores - 1),
            client_wait: WaitStrategy::default(),
            server_wait: WaitStrategy::default(),
            free_ring_capacity: 4096,
            trace_capacity: 0,
            batch_size: 1,
            flush_threshold: 1,
            profile: false,
            site_sample: 0,
        }
    }
}

#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
impl NgmBuilder {
    /// Starts the allocator runtime (single shard, historical clamping
    /// behavior).
    pub fn start(self) -> Ngm {
        let cfg = NgmConfig {
            shards: 1,
            placement: match self.service_core {
                Some(core) => CorePlacement::Base(core),
                None => CorePlacement::Unpinned,
            },
            client_wait: Some(self.client_wait),
            server_wait: Some(self.server_wait),
            free_ring_capacity: self.free_ring_capacity,
            trace_capacity: self.trace_capacity,
            batch_size: self.batch_size,
            flush_threshold: self.flush_threshold,
            profile: self.profile,
            site_sample: self.site_sample,
            deadline: Some(ngm_offload::DEFAULT_DEADLINE),
            heat_window: ngm_telemetry::window::DEFAULT_HEAT_FRAMES,
            blackbox: true,
            elastic: None,
            topology: ShardTopology::flat(),
            observer: None,
            inflight_limit: 256,
        };
        cfg.sanitized().build().expect("sanitized config is valid")
    }
}

/// What a shard's request slot is carrying for the non-blocking
/// front-end: enough context to route the response when it lands —
/// whether the poller is the original submitter or an unrelated pump
/// settling the slot for its own submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NbPending {
    /// A single-block [`MallocReq::One`]; the layout identifies the
    /// rightful consumer (and recovers the block as a free if that
    /// consumer never returns to collect it).
    One {
        /// Requested size of the in-flight layout.
        size: usize,
        /// Requested alignment of the in-flight layout.
        align: usize,
    },
    /// A batched magazine refill ([`MallocReq::Batch`]) for one class.
    Batch {
        /// The class whose magazine the response tops up.
        class: SizeClass,
    },
}

/// A per-thread endpoint to the allocator tier.
///
/// With `batch_size > 1` the handle keeps a per-size-class **magazine** of
/// pre-handed-out addresses: the common-case `alloc` is a pop from an
/// inline array (no round trip, no atomics — the handle is `!Sync`, so
/// this state is L1-resident and single-owner per §3.1.3), and one
/// [`AllocBatchReq`] refill round trip is paid every `batch_size` allocs.
/// Symmetrically, `flush_threshold > 1` buffers small-block frees
/// per owning shard and flushes them as one batched post.
///
/// All routing state (class map, magazines, free buffers, pressure
/// counters) is handle-local: no shared writes, no atomics on the fast
/// path, and two handles may route the same class differently without
/// coordinating — frees are address-pure, so it cannot matter.
pub struct NgmHandle {
    /// What each shard's request slot currently carries on behalf of the
    /// non-blocking front-end (`None` when the slot is free). At most one
    /// submission rides each slot; completing or retracting it clears the
    /// entry.
    nb_pending: Box<[Option<NbPending>]>,
    /// Backpressure ceiling for submission queues built over this handle
    /// ([`NgmConfig::with_inflight_limit`]).
    inflight_limit: usize,
    /// One client endpoint per slot, indexed by slot — `None` for slots
    /// with no thread (dormant/retired) or whose thread this handle has
    /// not yet registered with.
    clients: Box<[Option<ClientHandle<MallocService>>]>,
    /// Each slot's thread cell, for lazy client (re-)registration as the
    /// elastic controller spawns and retires shards.
    slots: Box<[Arc<SlotCell>]>,
    /// The slot epoch each client in `clients` was registered against; a
    /// mismatch with the cell's current epoch means the client belongs to
    /// a joined thread and must be re-registered.
    client_epoch: Box<[u64]>,
    /// The route generation this handle last synced at. One relaxed load
    /// per operation compares it against [`ObsState::generation`]; a
    /// mismatch triggers [`NgmHandle::resync_routes`].
    seen_generation: u64,
    /// Cluster whose shards this handle prefers for allocations (see
    /// [`Ngm::handle_on_cluster`]); `None` routes over all serving.
    preferred_cluster: Option<u8>,
    /// Each slot's persistent runtime counters — valid even when the slot
    /// has no thread (and thus no client to reach them through).
    shard_stats: Box<[Arc<RuntimeStats>]>,
    /// Each slot's persistent telemetry hub, for blackbox snapshots.
    shard_telemetry: Box<[Arc<RuntimeTelemetry>]>,
    /// How many slots large layouts hash over (see [`Ngm::large_span`]).
    large_span: usize,
    /// Each shard's orphan stack, for [`NgmHandle::dealloc_orphan`].
    orphans: Box<[Arc<OrphanStack>]>,
    batch_size: u32,
    flush_threshold: u32,
    /// One magazine per size class, inline so no allocation ever happens
    /// on the fast path (crucial under the global-allocator adapter).
    magazines: [AddrBatch; NUM_CLASSES],
    /// Which shard refilled each class's magazine. A magazine refills
    /// only when empty, so every address in it shares this one source —
    /// returns at drop go back where the blocks came from even if the
    /// class has since been rebalanced elsewhere.
    mag_shard: [u16; NUM_CLASSES],
    /// Where this handle's *allocation* traffic for each class goes.
    /// Rebalancing rewrites this map; frees never consult it.
    class_shard: [u16; NUM_CLASSES],
    /// Client-side buffers of small-block frees, one per owning shard,
    /// each awaiting one batched post to that shard.
    free_bufs: Box<[AddrBatch]>,
    /// Blocks currently stashed in magazines, per source shard (local
    /// mirror; the shared gauge is updated at refill/drop boundaries).
    stash_by_shard: Box<[i64]>,
    /// What this handle last published into each shard's magazine gauge.
    published_occupancy: Box<[i64]>,
    /// Frees carried by each not-yet-trimmed post per shard, oldest
    /// first; the last `pending_posts()` entries are exactly the
    /// undrained messages. Only maintained when `flush_threshold > 1`.
    post_weights: Box<[std::collections::VecDeque<u32>]>,
    /// Accumulated full-ring retries per shard — the saturation signal
    /// that triggers a rebalance at [`NgmHandle::REBALANCE_PRESSURE`].
    pressure: Box<[u32]>,
    /// Shards this handle has observed dead (failover already recorded
    /// and allocation traffic moved off).
    failed: Box<[bool]>,
    /// The shared allocation-site profiler, when enabled.
    sites: Option<Arc<SiteProfiler>>,
    /// The shared inline allocator of last resort (see [`Ngm`]).
    fallback: Arc<FallbackHeap>,
    /// Shared heat windows + blackbox gate (see [`crate::heat`]).
    obs: Arc<ObsState>,
}

impl NgmHandle {
    /// Full-ring retries accumulated against one shard before this handle
    /// moves its allocation traffic elsewhere.
    const REBALANCE_PRESSURE: u32 = 64;

    fn nshards(&self) -> usize {
        self.clients.len()
    }

    /// One relaxed load per operation: when the tier's route generation
    /// moved (a shard spawned, began draining, or retired), resync this
    /// handle's clients and class routes. Static tiers never bump the
    /// generation after build, so this stays a compare-and-branch.
    #[inline]
    fn maybe_resync(&mut self) {
        let generation = self.obs.generation();
        if generation != self.seen_generation {
            self.resync_routes(generation);
        }
    }

    /// Reconciles this handle with the tier's current lifecycle states:
    /// registers clients to newly-serving slots (or re-registers across a
    /// respawn epoch), hands a draining shard everything this handle
    /// still owes it (buffered frees, stashed magazines) so its balance
    /// can reach zero, drops clients to slots with no thread, and
    /// re-spreads the class map over the serving set.
    fn resync_routes(&mut self, generation: u64) {
        self.seen_generation = generation;
        for s in 0..self.nshards() {
            match self.obs.state(s) {
                ShardLifecycle::Serving => {
                    let _ = self.ensure_client(s);
                }
                ShardLifecycle::Draining => {
                    self.settle_nb(s);
                    self.flush_shard_frees(s);
                    self.return_magazines_from(s);
                }
                ShardLifecycle::Dormant | ShardLifecycle::Retired => {
                    self.settle_nb(s);
                    self.clients[s] = None;
                }
            }
        }
        self.recompute_class_routes();
    }

    /// Makes sure `clients[s]` is a client of the slot's *current*
    /// thread; returns `false` when the slot has no thread.
    fn ensure_client(&mut self, s: usize) -> bool {
        let epoch = self.slots[s].epoch.load(Ordering::Acquire);
        if self.clients[s].is_some() && self.client_epoch[s] == epoch {
            return true;
        }
        // The old client (if any) belongs to a joined thread: whatever
        // non-blocking submission still rode its slot can never complete.
        // Take it back unserved if possible; count the loss otherwise.
        if self.nb_pending[s].is_some() {
            let retracted = self.clients[s]
                .as_mut()
                .is_some_and(ClientHandle::nb_retract);
            self.nb_pending[s] = None;
            self.shard_stats[s].add_inflight(-1);
            if !retracted {
                self.shard_stats[s].record_post_dropped();
            }
        }
        let guard = self.slots[s]
            .runtime
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        match guard.as_ref() {
            Some(rt) => {
                // Same PMU rule as handle construction: only the shard-0
                // endpoint arms, so this thread is counted once.
                self.clients[s] = Some(rt.register_client_with_pmu(s == 0));
                self.client_epoch[s] = epoch;
                // A respawned slot is a fresh thread: clear the grudges
                // held against its predecessor.
                self.failed[s] = false;
                self.pressure[s] = 0;
                true
            }
            None => {
                self.clients[s] = None;
                false
            }
        }
    }

    /// Recomputes the class → shard spread over the serving shards this
    /// handle can route to, preferring its cluster's shards when it has a
    /// preference and any of them serve.
    fn recompute_class_routes(&mut self) {
        let serving: Vec<usize> = (0..self.nshards())
            .filter(|&s| self.obs.state(s) == ShardLifecycle::Serving && !self.failed[s])
            .collect();
        if serving.is_empty() {
            return;
        }
        let preferred: Vec<usize> = match self.preferred_cluster {
            Some(cluster) => {
                let same: Vec<usize> = serving
                    .iter()
                    .copied()
                    .filter(|&s| self.obs.cluster(s) == cluster)
                    .collect();
                if same.is_empty() {
                    serving
                } else {
                    same
                }
            }
            None => serving,
        };
        for (c, slot) in self.class_shard.iter_mut().enumerate() {
            *slot = preferred[c % preferred.len()] as u16;
        }
    }

    /// Returns every magazine refilled by `source` to it, so a draining
    /// shard gets its stashed blocks back.
    fn return_magazines_from(&mut self, source: usize) {
        for ci in 0..NUM_CLASSES {
            if self.mag_shard[ci] as usize == source && !self.magazines[ci].is_empty() {
                let batch = std::mem::take(&mut self.magazines[ci]);
                self.stash_by_shard[source] -= batch.len() as i64;
                self.post_routed(source, FreePost::MagazineReturn(batch));
            }
        }
        self.publish_occupancy(source);
    }

    /// The next slot after `from` this handle could route allocations to
    /// (serving, not written off, client reachable and open); `from`
    /// itself when none exists.
    fn next_route_candidate(&mut self, from: usize) -> usize {
        let n = self.nshards();
        for step in 1..n {
            let cand = (from + step) % n;
            if self.failed[cand] || self.obs.state(cand) != ShardLifecycle::Serving {
                continue;
            }
            if self.ensure_client(cand)
                && self.clients[cand]
                    .as_ref()
                    .is_some_and(ClientHandle::is_open)
            {
                return cand;
            }
        }
        from
    }

    /// Captures and emits a blackbox dump for a failure edge implicating
    /// `shard`: that shard's last-K trace events, every shard's slot/ring
    /// state, and the current heat picture. Gated on the config knob and
    /// the tier's rate limiter, so the common suppressed case costs one
    /// branch and one relaxed load — never an allocation. Emitted dumps
    /// land on stderr, the `NGM_BLACKBOX_PATH` file, and the in-memory
    /// ring behind [`Ngm::blackbox_dumps`] / the observer's `/blackbox`
    /// endpoint.
    fn blackbox(&self, reason: &'static str, shard: usize) {
        let Some(recorder) = self.obs.blackbox.as_ref() else {
            return;
        };
        if !recorder.should_emit() {
            return;
        }
        let shards = (0..self.nshards())
            .map(|s| match &self.clients[s] {
                Some(c) => ShardState {
                    shard: s,
                    slot_state: c.slot_state_label(),
                    ring_occupancy: c.pending_posts() as u64,
                    down: !c.is_open(),
                },
                None => ShardState {
                    shard: s,
                    slot_state: self.obs.state(s).label(),
                    ring_occupancy: 0,
                    down: true,
                },
            })
            .collect();
        recorder.emit(BlackboxDump {
            reason: reason.into(),
            shard,
            tsc: cycles_now(),
            events: self.shard_telemetry[shard].peek_trace(DEFAULT_LAST_K),
            shards,
            heat: self.obs.render_current(),
        });
    }

    /// The shard that owns `ptr`, read from its segment header — a pure
    /// function of the address, stable for the block's whole lifetime.
    fn shard_of_small(&self, ptr: NonNull<u8>) -> usize {
        if self.nshards() == 1 {
            return 0;
        }
        // SAFETY: callers only pass live small-class blocks allocated by
        // this tier's segregated heaps.
        let owner = unsafe { ngm_heap::owner_of_small_ptr(ptr) };
        let shard = owner.wrapping_sub(OWNER_BASE) as usize;
        debug_assert!(shard < self.nshards(), "foreign owner id {owner:#x}");
        if shard < self.nshards() {
            shard
        } else {
            0
        }
    }

    /// The shard serving a non-class (large) layout: a deterministic hash
    /// of the layout, identical at alloc and free time (a large free
    /// carries its layout), so it is address-stable the same way the
    /// owner-id read is. Elastic tiers hash over the resident floor only
    /// (`ElasticPolicy::min` slots, which never retire), so the shard a
    /// large free hashes to is always still open.
    fn shard_of_large(&self, layout: Layout) -> usize {
        if self.large_span == 1 {
            return 0;
        }
        let h =
            (layout.size() ^ layout.align().rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) % self.large_span
    }

    /// Where this handle currently sends allocation traffic for `class`.
    pub fn class_route(&self, class: SizeClass) -> usize {
        self.class_shard[class.0 as usize] as usize
    }

    /// Routes future allocations of `class` to `shard`, exactly as a
    /// rebalance or controller-driven resync would — the deterministic
    /// hook for tests that interleave explicit class→shard map migrations
    /// with traffic. Frees are unaffected: they route by address.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn route_class_to(&mut self, class: SizeClass, shard: usize) {
        assert!(shard < self.nshards(), "shard {shard} out of range");
        self.class_shard[class.0 as usize] = shard as u16;
    }

    /// Allocates a block.
    ///
    /// Small layouts with batching enabled are served from the per-class
    /// magazine (refilled in one batched round trip when empty); anything
    /// else is a synchronous round trip to the class's current shard.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the service reports failure (or
    /// every shard is gone) and [`AllocError::ZeroSize`] for zero-sized
    /// layouts.
    #[track_caller]
    pub fn alloc(&mut self, layout: Layout) -> Result<NonNull<u8>, AllocError> {
        let caller = std::panic::Location::caller();
        let ptr = self.alloc_untracked(layout)?;
        if let Some(prof) = &self.sites {
            // Label formatting is deferred into the closure: unsampled
            // allocations never pay for it.
            prof.record_alloc(ptr.as_ptr() as usize, layout.size(), || caller.to_string());
        }
        Ok(ptr)
    }

    /// [`NgmHandle::alloc`] without site attribution (also the body both
    /// paths share).
    pub fn alloc_untracked(&mut self, layout: Layout) -> Result<NonNull<u8>, AllocError> {
        if layout.size() == 0 {
            return Err(AllocError::ZeroSize);
        }
        self.maybe_resync();
        match layout_to_class(layout.size(), layout.align()) {
            Some(class) if self.batch_size > 1 => self.alloc_batched(class, layout),
            Some(class) => {
                let shard = self.class_shard[class.0 as usize] as usize;
                self.call_alloc(shard, layout)
            }
            None => {
                let shard = self.shard_of_large(layout);
                self.call_alloc(shard, layout)
            }
        }
    }

    /// One synchronous allocation round trip. A *dead* target fails over
    /// to survivors; a merely *slow* one (deadline fired) is rerouted
    /// around without being written off — deadlines are transient, so the
    /// shard stays eligible once it catches up. When every shard has been
    /// tried and none answered, the request degrades to the inline
    /// fallback heap rather than hanging or failing.
    fn call_alloc(&mut self, shard: usize, layout: Layout) -> Result<NonNull<u8>, AllocError> {
        let mut shard = shard;
        for _ in 0..self.nshards() {
            if !self.ensure_client(shard) {
                // No thread on this slot (dormant/retired): route on.
                let next = self.next_route_candidate(shard);
                if next == shard {
                    break;
                }
                shard = next;
                continue;
            }
            let client = self.clients[shard].as_mut().expect("client just ensured");
            let t0 = client.trace_ring().is_some().then(cycles_now);
            match client.try_call(MallocReq::One(AllocReq::from_layout(layout))) {
                Ok(MallocResp::One(addr)) => {
                    if let Some(t0) = t0 {
                        let rtt = cycles_now().saturating_sub(t0);
                        if let Some(ring) = self.clients[shard]
                            .as_ref()
                            .and_then(ClientHandle::trace_ring)
                        {
                            ring.push(TraceEventKind::Alloc, layout.size() as u64, rtt);
                        }
                    }
                    return NonNull::new(addr as *mut u8).ok_or(AllocError::OutOfMemory);
                }
                Ok(MallocResp::Batch(_)) => unreachable!("One request answered with a batch"),
                Err(ServiceError::Deadline { .. }) => {
                    self.blackbox("deadline", shard);
                    shard = self.reroute_after_deadline(shard);
                }
                Err(ServiceError::ShardRetiring { .. }) => {
                    // The controller is draining this shard: not a
                    // failure, just move the traffic and keep going.
                    self.rebalance_away_from(shard);
                    let next = self.next_route_candidate(shard);
                    if next == shard {
                        break;
                    }
                    shard = next;
                }
                Err(_) => shard = self.fail_over(shard),
            }
        }
        self.fallback_alloc(layout, shard)
    }

    /// Moves allocation traffic off a shard that just blew a deadline and
    /// picks the next shard to try. Unlike [`NgmHandle::fail_over`] this
    /// does not mark the shard failed: a deadline is congestion or a
    /// transient wedge, and the shard rejoins the rotation as soon as
    /// routing sends traffic back its way.
    fn reroute_after_deadline(&mut self, slow: usize) -> usize {
        self.rebalance_away_from(slow);
        self.next_route_candidate(slow)
    }

    /// The degradation endpoint: every shard deadlined or died, so serve
    /// the allocation inline from the shared [`FallbackHeap`] (small
    /// classes only — its docs explain why large layouts cannot degrade).
    /// `shard` is the last shard tried, implicated in the dump.
    fn fallback_alloc(&mut self, layout: Layout, shard: usize) -> Result<NonNull<u8>, AllocError> {
        self.blackbox("fallback", shard);
        self.fallback.allocate(layout)
    }

    /// Marks `dead` failed (once), moves its allocation traffic to the
    /// next open shard, and returns that shard (or `dead` itself when no
    /// shard survives).
    fn fail_over(&mut self, dead: usize) -> usize {
        let next = self.next_route_candidate(dead);
        if !self.failed[dead] {
            self.failed[dead] = true;
            self.blackbox("shard-death", dead);
            self.shard_stats[dead].record_failover();
            if next != dead {
                for slot in self.class_shard.iter_mut() {
                    if *slot as usize == dead {
                        *slot = next as u16;
                    }
                }
            }
        }
        next
    }

    /// The magazine fast path: pop, refilling first when empty.
    fn alloc_batched(
        &mut self,
        class: SizeClass,
        layout: Layout,
    ) -> Result<NonNull<u8>, AllocError> {
        let ci = class.0 as usize;
        if self.magazines[ci].is_empty() {
            if let Err(e) = self.refill(class) {
                // No shard could refill (all deadlined, dead, or empty):
                // degrade this one allocation to the inline fallback
                // instead of failing it, keeping the app alive through
                // the outage.
                let shard = self.class_shard[ci] as usize;
                return self.fallback_alloc(layout, shard).map_err(|_| e);
            }
        }
        let addr = self.magazines[ci]
            .pop()
            .expect("magazine nonempty after refill");
        self.stash_by_shard[self.mag_shard[ci] as usize] -= 1;
        if let Some(ring) = self.clients[self.mag_shard[ci] as usize]
            .as_ref()
            .and_then(ClientHandle::trace_ring)
        {
            ring.push(TraceEventKind::Alloc, layout.size() as u64, 0);
        }
        NonNull::new(addr as *mut u8).ok_or(AllocError::OutOfMemory)
    }

    /// One batched round trip to top up `class`'s magazine from its
    /// current shard, failing over if that shard is dead.
    fn refill(&mut self, class: SizeClass) -> Result<(), AllocError> {
        let ci = class.0 as usize;
        for _ in 0..self.nshards() {
            let shard = self.class_shard[ci] as usize;
            if !self.ensure_client(shard) {
                let next = self.next_route_candidate(shard);
                self.class_shard[ci] = next as u16;
                if next == shard {
                    break;
                }
                continue;
            }
            let req = MallocReq::Batch(AllocBatchReq {
                class,
                count: self.batch_size,
            });
            let client = self.clients[shard].as_mut().expect("client just ensured");
            match client.try_call_batched(req) {
                Ok(MallocResp::Batch(batch)) => {
                    if batch.is_empty() {
                        return Err(AllocError::OutOfMemory);
                    }
                    let got = batch.len();
                    self.magazines[ci] = batch;
                    self.mag_shard[ci] = shard as u16;
                    self.stash_by_shard[shard] += got as i64;
                    // Publish occupancy only here (and at drop) — pops
                    // since the last refill fold into this one delta,
                    // keeping the alloc fast path free of shared-memory
                    // traffic.
                    self.publish_occupancy(shard);
                    if let Some(ring) = self.clients[shard]
                        .as_ref()
                        .and_then(ClientHandle::trace_ring)
                    {
                        ring.push(TraceEventKind::Refill, u64::from(class.0), got as u64);
                    }
                    return Ok(());
                }
                Ok(MallocResp::One(_)) => unreachable!("Batch request answered with One"),
                Err(ServiceError::Deadline { .. }) => {
                    // Slow, not dead: route the class elsewhere for now
                    // without burying the shard.
                    self.blackbox("deadline", shard);
                    let next = self.reroute_after_deadline(shard);
                    self.class_shard[ci] = next as u16;
                    if next == shard {
                        // No alternative shard exists; stop burning a
                        // full deadline per loop iteration and degrade.
                        break;
                    }
                }
                Err(ServiceError::ShardRetiring { .. }) => {
                    // Draining, not dead: move the class without marking
                    // the shard failed.
                    self.rebalance_away_from(shard);
                    let next = self.next_route_candidate(shard);
                    self.class_shard[ci] = next as u16;
                    if next == shard {
                        break;
                    }
                }
                Err(_) => {
                    let next = self.fail_over(shard);
                    self.class_shard[ci] = next as u16;
                }
            }
        }
        Err(AllocError::OutOfMemory)
    }

    /// Non-blocking [`NgmHandle::alloc`]: never waits on a service.
    ///
    /// The magazine pop is identical to the blocking fast path. When the
    /// magazine is dry the refill round trip is *submitted* rather than
    /// awaited: the call returns [`NgmError::WouldBlock`] and a later
    /// `try_alloc` (or a poll of an [`crate::nonblocking::AllocFuture`])
    /// collects the response from the slot. Dead, draining, and deadlined
    /// shards are routed around exactly as in the blocking path — only
    /// the *wait* is removed, so the `allocs == frees` ledger and every
    /// reroute/fallback rule are unchanged.
    ///
    /// # Errors
    ///
    /// [`NgmError::WouldBlock`] when a submission is in flight and its
    /// response has not landed yet (retry after pumping or a wake);
    /// otherwise the same failures as [`NgmHandle::alloc`], lifted into
    /// [`NgmError`].
    pub fn try_alloc(&mut self, layout: Layout) -> Result<NonNull<u8>, NgmError> {
        if layout.size() == 0 {
            return Err(AllocError::ZeroSize.into());
        }
        self.maybe_resync();
        match layout_to_class(layout.size(), layout.align()) {
            Some(class) if self.batch_size > 1 => {
                let ci = class.0 as usize;
                if self.magazines[ci].is_empty() {
                    match self.try_refill(class) {
                        Ok(()) => {}
                        Err(NgmError::WouldBlock) => return Err(NgmError::WouldBlock),
                        Err(e) => {
                            // Every shard dead or empty: degrade inline,
                            // exactly like the blocking batched path.
                            let shard = self.class_shard[ci] as usize;
                            return self.fallback_alloc(layout, shard).map_err(|_| e);
                        }
                    }
                }
                let addr = self.magazines[ci]
                    .pop()
                    .expect("magazine nonempty after refill");
                self.stash_by_shard[self.mag_shard[ci] as usize] -= 1;
                NonNull::new(addr as *mut u8).ok_or(NgmError::Alloc(AllocError::OutOfMemory))
            }
            Some(class) => {
                let shard = self.class_shard[class.0 as usize] as usize;
                self.try_call_alloc(shard, layout)
            }
            None => {
                let shard = self.shard_of_large(layout);
                self.try_call_alloc(shard, layout)
            }
        }
    }

    /// Non-blocking magazine refill: completes an in-flight batch if its
    /// response already landed, otherwise submits a fresh
    /// [`AllocBatchReq`] and returns [`NgmError::WouldBlock`] without
    /// waiting. Dead/draining shards fail over exactly like
    /// [`NgmHandle::refill`] — submission is instant, so the loop never
    /// blocks.
    fn try_refill(&mut self, class: SizeClass) -> Result<(), NgmError> {
        let ci = class.0 as usize;
        let shard = self.class_shard[ci] as usize;
        if self.nb_pending[shard].is_some() {
            if self.poll_pending(shard).is_none() {
                return Err(NgmError::WouldBlock);
            }
            if !self.magazines[ci].is_empty() {
                // The settled submission was this class's refill.
                return Ok(());
            }
        }
        for _ in 0..self.nshards() {
            let shard = self.class_shard[ci] as usize;
            if !self.ensure_client(shard) {
                let next = self.next_route_candidate(shard);
                self.class_shard[ci] = next as u16;
                if next == shard {
                    break;
                }
                continue;
            }
            let req = MallocReq::Batch(AllocBatchReq {
                class,
                count: self.batch_size,
            });
            let client = self.clients[shard].as_mut().expect("client just ensured");
            match client.nb_begin_batched(req) {
                Ok(()) => {
                    self.nb_pending[shard] = Some(NbPending::Batch { class });
                    self.shard_stats[shard].add_inflight(1);
                    // One opportunistic poll: a same-core service may have
                    // answered already, saving the caller a retry.
                    if self.poll_pending(shard).is_some() && !self.magazines[ci].is_empty() {
                        return Ok(());
                    }
                    return Err(NgmError::WouldBlock);
                }
                Err((_, ServiceError::WouldBlock)) => return Err(NgmError::WouldBlock),
                Err((_, ServiceError::ShardRetiring { .. })) => {
                    self.rebalance_away_from(shard);
                    let next = self.next_route_candidate(shard);
                    self.class_shard[ci] = next as u16;
                    if next == shard {
                        break;
                    }
                }
                Err(_) => {
                    let next = self.fail_over(shard);
                    self.class_shard[ci] = next as u16;
                    if next == shard {
                        break;
                    }
                }
            }
        }
        Err(AllocError::OutOfMemory.into())
    }

    /// One non-blocking single-allocation round trip: collect our own
    /// in-flight submission if its layout matches, settle an unrelated
    /// one, or submit fresh — never waiting. Mirrors
    /// [`NgmHandle::call_alloc`]'s failover ladder.
    fn try_call_alloc(&mut self, shard: usize, layout: Layout) -> Result<NonNull<u8>, NgmError> {
        let mut shard = shard;
        let pending = self.nb_pending[shard];
        match pending {
            Some(NbPending::One { size, align })
                if size == layout.size() && align == layout.align() =>
            {
                return self.try_take_one(shard);
            }
            // The slot carries someone else's submission (a refill, or a
            // One for a different layout): settle it if its response
            // landed, else report backpressure.
            Some(_) if self.poll_pending(shard).is_none() => {
                return Err(NgmError::WouldBlock);
            }
            _ => {}
        }
        for _ in 0..self.nshards() {
            if !self.ensure_client(shard) {
                let next = self.next_route_candidate(shard);
                if next == shard {
                    break;
                }
                shard = next;
                continue;
            }
            if self.nb_pending[shard].is_some() && self.poll_pending(shard).is_none() {
                return Err(NgmError::WouldBlock);
            }
            let client = self.clients[shard].as_mut().expect("client just ensured");
            match client.nb_begin(MallocReq::One(AllocReq::from_layout(layout))) {
                Ok(()) => {
                    self.nb_pending[shard] = Some(NbPending::One {
                        size: layout.size(),
                        align: layout.align(),
                    });
                    self.shard_stats[shard].add_inflight(1);
                    return self.try_take_one(shard);
                }
                Err((_, ServiceError::WouldBlock)) => return Err(NgmError::WouldBlock),
                Err((_, ServiceError::ShardRetiring { .. })) => {
                    self.rebalance_away_from(shard);
                    let next = self.next_route_candidate(shard);
                    if next == shard {
                        break;
                    }
                    shard = next;
                }
                Err(_) => {
                    let next = self.fail_over(shard);
                    if next == shard {
                        break;
                    }
                    shard = next;
                }
            }
        }
        self.fallback_alloc(layout, shard).map_err(NgmError::from)
    }

    /// Polls `shard`'s in-flight `One` submission for its address,
    /// clearing the pending entry on completion.
    fn try_take_one(&mut self, shard: usize) -> Result<NonNull<u8>, NgmError> {
        let Some(client) = self.clients[shard].as_mut() else {
            self.nb_pending[shard] = None;
            return Err(NgmError::WouldBlock);
        };
        match client.nb_poll() {
            Some(MallocResp::One(addr)) => {
                self.nb_pending[shard] = None;
                self.shard_stats[shard].add_inflight(-1);
                NonNull::new(addr as *mut u8).ok_or(NgmError::Alloc(AllocError::OutOfMemory))
            }
            Some(MallocResp::Batch(_)) => unreachable!("One submission answered with a batch"),
            None => Err(NgmError::WouldBlock),
        }
    }

    /// Polls `shard`'s in-flight submission, folding a landed response
    /// into handle state ([`NgmHandle::complete_nb`]). `Some(())` means
    /// the slot is free again.
    fn poll_pending(&mut self, shard: usize) -> Option<()> {
        let pending = self.nb_pending[shard]?;
        let Some(client) = self.clients[shard].as_mut() else {
            // The client is gone (resync dropped it): the submission can
            // never complete. Clear it so the route is usable again.
            self.nb_pending[shard] = None;
            self.shard_stats[shard].add_inflight(-1);
            self.shard_stats[shard].record_post_dropped();
            return None;
        };
        let resp = client.nb_poll()?;
        self.nb_pending[shard] = None;
        self.shard_stats[shard].add_inflight(-1);
        self.complete_nb(shard, pending, resp);
        Some(())
    }

    /// Routes a completed non-blocking response into handle state. A
    /// batch tops up its class's magazine (or, if the class was refilled
    /// from elsewhere meanwhile, diverts to the serving shard's orphan
    /// stack so the ledger still balances without a blocking return
    /// post). A `One` collected here has lost its consumer — the block
    /// is immediately freed back along the normal address-routed path.
    fn complete_nb(&mut self, shard: usize, pending: NbPending, resp: MallocResp) {
        match (pending, resp) {
            (NbPending::Batch { class }, MallocResp::Batch(batch)) => {
                let ci = class.0 as usize;
                if batch.is_empty() {
                    return;
                }
                if self.magazines[ci].is_empty() {
                    let got = batch.len();
                    self.magazines[ci] = batch;
                    self.mag_shard[ci] = shard as u16;
                    self.stash_by_shard[shard] += got as i64;
                    self.publish_occupancy(shard);
                    if let Some(ring) = self.clients[shard]
                        .as_ref()
                        .and_then(ClientHandle::trace_ring)
                    {
                        ring.push(TraceEventKind::Refill, u64::from(class.0), got as u64);
                    }
                } else {
                    for &addr in batch.as_slice() {
                        if let Some(p) = NonNull::new(addr as *mut u8) {
                            // SAFETY: fresh small-class blocks the service
                            // just handed out; nothing else refers to them.
                            unsafe { self.orphans[shard].push(p) };
                        }
                    }
                }
            }
            (NbPending::One { size, align }, MallocResp::One(addr)) => {
                let Some(ptr) = NonNull::new(addr as *mut u8) else {
                    return; // the service reported failure; nothing to return
                };
                if let Ok(layout) = Layout::from_size_align(size, align) {
                    // SAFETY: a live block the service just produced whose
                    // consumer abandoned it; freeing it here is the only
                    // reference.
                    unsafe { self.dealloc(ptr, layout) };
                }
            }
            _ => unreachable!("response kind does not match submission kind"),
        }
    }

    /// Resolves `shard`'s in-flight submission before its client goes
    /// away: retract if the service has not claimed it, otherwise spin
    /// out the (imminent) response so no allocated block leaks. Only the
    /// shard-death edge — service gone mid-serve — abandons the
    /// submission, counted like a dropped post.
    fn settle_nb(&mut self, shard: usize) {
        if self.nb_pending[shard].is_none() {
            return;
        }
        let Some(client) = self.clients[shard].as_mut() else {
            self.nb_pending[shard] = None;
            self.shard_stats[shard].add_inflight(-1);
            self.shard_stats[shard].record_post_dropped();
            return;
        };
        if client.nb_retract() {
            self.nb_pending[shard] = None;
            self.shard_stats[shard].add_inflight(-1);
            return;
        }
        let mut spins = 0u32;
        while self.nb_pending[shard].is_some() {
            if self.poll_pending(shard).is_some() {
                return;
            }
            let open = self.clients[shard]
                .as_ref()
                .is_some_and(ClientHandle::is_open);
            if !open || spins > 1_000_000 {
                self.nb_pending[shard] = None;
                self.shard_stats[shard].add_inflight(-1);
                self.shard_stats[shard].record_post_dropped();
                return;
            }
            spins += 1;
            std::hint::spin_loop();
        }
    }

    /// Drives every in-flight non-blocking submission one poll forward,
    /// folding landed responses into handle state. Returns how many
    /// submissions completed. The pump a submission queue (or any manual
    /// `try_alloc` retry loop) calls between wakes.
    pub fn nb_pump(&mut self) -> usize {
        self.maybe_resync();
        let mut completed = 0;
        for shard in 0..self.nshards() {
            if self.nb_pending[shard].is_some() && self.poll_pending(shard).is_some() {
                completed += 1;
            }
        }
        completed
    }

    /// How many non-blocking submissions this handle currently has in
    /// flight across all shards.
    pub fn nb_inflight(&self) -> usize {
        self.nb_pending.iter().filter(|p| p.is_some()).count()
    }

    /// The configured in-flight ceiling for submission queues built over
    /// this handle ([`NgmConfig::with_inflight_limit`]).
    pub fn inflight_limit(&self) -> usize {
        self.inflight_limit
    }

    /// Registers `waker` on every shard slot carrying an in-flight
    /// submission, so the RESPONSE release edge of *any* of them wakes
    /// the task. A response that already landed fires the waker from
    /// this call (see [`ClientHandle::register_waker`]); spurious wakes
    /// are possible and harmless under the `Future` contract.
    pub fn register_waker(&self, waker: &std::task::Waker) {
        for shard in 0..self.nshards() {
            if self.nb_pending[shard].is_some() {
                if let Some(client) = self.clients[shard].as_ref() {
                    client.register_waker(waker);
                }
            }
        }
    }

    /// Records the submission-queue depth observed at a pump boundary
    /// into the tier's `ngm_submit_depth` histogram (slot 0's hub — the
    /// resident floor always exists).
    pub fn record_submit_depth(&self, depth: u64) {
        self.shard_telemetry[0].submit_depth.record(depth);
    }

    /// Non-blocking [`NgmHandle::dealloc`]: accepts the free (buffered
    /// or posted) or hands it back.
    ///
    /// `Ok(())` means the block is now the tier's responsibility —
    /// buffered client-side awaiting a flush, in the owning shard's ring,
    /// freed inline (fallback blocks), or diverted to the owning shard's
    /// orphan stack (dead shard) — so accounting stays exact in every
    /// accepted case. [`NgmError::WouldBlock`] means the owning shard's
    /// ring is full *and* the client-side buffer cannot absorb the free:
    /// the caller still owns `ptr` and must retry after pumping.
    ///
    /// # Safety
    ///
    /// As [`NgmHandle::dealloc`]; on `Err` the block is *not* freed and
    /// the caller retains ownership.
    pub unsafe fn try_dealloc(&mut self, ptr: NonNull<u8>, layout: Layout) -> Result<(), NgmError> {
        self.maybe_resync();
        if let Some(prof) = &self.sites {
            prof.record_free(ptr.as_ptr() as usize);
        }
        let small = layout_to_class(layout.size(), layout.align()).is_some();
        // SAFETY (owner read): small blocks from this tier are segment-
        // backed, per this method's contract.
        if small
            && self.fallback.is_active()
            && unsafe { ngm_heap::owner_of_small_ptr(ptr) } == FALLBACK_OWNER
        {
            // SAFETY: forwarded contract — a live fallback block the
            // caller relinquished.
            unsafe { self.fallback.deallocate(ptr) };
            return Ok(());
        }
        let shard = if small {
            self.shard_of_small(ptr)
        } else {
            self.shard_of_large(layout)
        };
        if self.flush_threshold > 1 && small {
            if self.free_bufs[shard].len() >= MAX_BATCH {
                // Buffer at capacity: it must drain into the ring before
                // this free can be accepted.
                self.try_flush_shard(shard)?;
            }
            self.free_bufs[shard].push(ptr.as_ptr() as usize);
            if self.free_bufs[shard].len() >= self.flush_threshold as usize {
                // Opportunistic flush; a full ring is not an error here —
                // the free is already safely buffered.
                let _ = self.try_flush_shard(shard);
            }
            if let Some(ring) = self.clients[shard]
                .as_ref()
                .and_then(ClientHandle::trace_ring)
            {
                ring.push(TraceEventKind::Free, layout.size() as u64, 0);
            }
            return Ok(());
        }
        let msg = FreeMsg {
            addr: ptr.as_ptr() as usize,
            size: layout.size(),
            align: layout.align(),
        };
        self.try_post_routed(shard, FreePost::One(msg), 1)?;
        if let Some(ring) = self.clients[shard]
            .as_ref()
            .and_then(ClientHandle::trace_ring)
        {
            ring.push(TraceEventKind::Free, layout.size() as u64, 0);
        }
        Ok(())
    }

    /// Non-blocking flush of one shard's buffered frees: a single ring
    /// push attempt. On a full ring the batch goes straight back into
    /// the buffer (nothing is lost) and the caller sees
    /// [`NgmError::WouldBlock`].
    fn try_flush_shard(&mut self, shard: usize) -> Result<(), NgmError> {
        if self.free_bufs[shard].is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.free_bufs[shard]);
        let weight = batch.len() as u32;
        self.try_post_routed(shard, FreePost::Batch(batch), weight)
    }

    /// One non-blocking post to `shard`, with the same never-lose rules
    /// as [`NgmHandle::post_routed`]: a dead shard diverts the frees to
    /// its orphan stack; only a *full ring* hands the message back — a
    /// batch returns to the client-side buffer, and the caller retries.
    fn try_post_routed(
        &mut self,
        shard: usize,
        msg: FreePost,
        weight: u32,
    ) -> Result<(), NgmError> {
        if !self.ensure_client(shard) {
            self.reroute_frees_to_orphans(shard, msg);
            return Ok(());
        }
        let client = self.clients[shard].as_mut().expect("client just ensured");
        match client.try_post_nonblocking(msg) {
            Ok(_) => {
                self.record_post_weight(shard, weight);
                Ok(())
            }
            Err(PostError::Stopped) => {
                let _ = self.fail_over(shard);
                Ok(())
            }
            Err(PostError::WouldBlock { msg }) => {
                self.pressure[shard] = self.pressure[shard].saturating_add(1);
                if self.pressure[shard] >= Self::REBALANCE_PRESSURE {
                    self.rebalance_away_from(shard);
                }
                match msg {
                    FreePost::Batch(b) => {
                        // Back into the buffer it came from; capacity is
                        // guaranteed (the buffer was just drained).
                        self.free_bufs[shard] = b;
                    }
                    FreePost::One(_) | FreePost::MagazineReturn(_) => {}
                }
                Err(NgmError::WouldBlock)
            }
            Err(PostError::Deadline { msg, .. }) => {
                // A single-push attempt never runs a deadline; route the
                // impossible edge like the blocking path so nothing leaks.
                self.reroute_frees_to_orphans(shard, msg);
                Ok(())
            }
        }
    }

    fn publish_occupancy(&mut self, shard: usize) {
        let delta = self.stash_by_shard[shard] - self.published_occupancy[shard];
        if delta != 0 {
            self.shard_stats[shard].add_magazine_occupancy(delta);
            self.published_occupancy[shard] = self.stash_by_shard[shard];
        }
    }

    /// Records the number of frees carried by the post about to be sent
    /// to `shard`, trimming entries for messages that shard has drained.
    fn record_post_weight(&mut self, shard: usize, weight: u32) {
        if self.flush_threshold <= 1 {
            return;
        }
        let in_ring = self.clients[shard]
            .as_ref()
            .map_or(0, ClientHandle::pending_posts);
        while self.post_weights[shard].len() > in_ring {
            self.post_weights[shard].pop_front();
        }
        self.post_weights[shard].push_back(weight);
    }

    /// Posts to one shard, feeding ring-pressure into the rebalance
    /// logic and handling shard death (the message is dropped and counted
    /// by the offload layer; allocation traffic moves to survivors).
    ///
    /// A ring that stays full past the deadline hands the message back;
    /// small-block frees are then rerouted to the owning shard's orphan
    /// stack (reclaimed on its next idle round, or at shutdown) so the
    /// blocks are never leaked and accounting stays exact.
    fn post_routed(&mut self, shard: usize, msg: FreePost) {
        if !self.ensure_client(shard) {
            // No service thread behind this slot: divert to the orphan
            // stack so the owning heap reclaims the blocks at respawn or
            // shutdown and the per-shard ledger still balances.
            self.reroute_frees_to_orphans(shard, msg);
            return;
        }
        let client = self.clients[shard].as_mut().expect("client just ensured");
        match client.try_post_deadline(msg) {
            Ok(outcome) => {
                if outcome.full_retries > 0 {
                    self.pressure[shard] =
                        self.pressure[shard].saturating_add(outcome.full_retries);
                    if self.pressure[shard] >= Self::REBALANCE_PRESSURE {
                        self.rebalance_away_from(shard);
                    }
                }
            }
            Err(PostError::Stopped) => {
                let _ = self.fail_over(shard);
            }
            Err(PostError::Deadline { msg, .. }) => {
                self.blackbox("post-deadline", shard);
                self.reroute_frees_to_orphans(shard, msg);
                self.rebalance_away_from(shard);
            }
            Err(PostError::WouldBlock { msg }) => {
                // The deadline path never surfaces WouldBlock (it spins
                // out its budget instead), but route it like a deadline
                // so no free is ever leaked.
                self.reroute_frees_to_orphans(shard, msg);
                self.rebalance_away_from(shard);
            }
        }
    }

    /// Diverts the contents of an undeliverable free post to `shard`'s
    /// orphan stack. Large frees cannot ride the orphan stack (their
    /// layout is not recoverable from the address), so they are dropped
    /// and counted like frees owed to a dead shard.
    fn reroute_frees_to_orphans(&mut self, shard: usize, msg: FreePost) {
        match msg {
            FreePost::One(m) => {
                if layout_to_class(m.size, m.align).is_some() {
                    if let Some(p) = NonNull::new(m.addr as *mut u8) {
                        // SAFETY: the free path relinquished this live
                        // small block when it built the post.
                        unsafe { self.orphans[shard].push(p) };
                    }
                } else {
                    self.shard_stats[shard].record_post_dropped();
                }
            }
            FreePost::Batch(b) | FreePost::MagazineReturn(b) => {
                for &addr in b.as_slice() {
                    if let Some(p) = NonNull::new(addr as *mut u8) {
                        // SAFETY: as above — batched frees carry only
                        // relinquished live small blocks.
                        unsafe { self.orphans[shard].push(p) };
                    }
                }
            }
        }
    }

    /// Moves this handle's allocation traffic off `overloaded` onto the
    /// coolest surviving shard, and resets the pressure signal.
    ///
    /// Called automatically when a shard's free ring keeps saturating;
    /// public so operators can steer traffic by hand. The target is the
    /// shard with the lowest combined score: its tier-wide windowed heat
    /// ([`crate::heat::ShardHeat::score`] — recent deadlines, retries,
    /// ring backlog, sampled by [`Ngm::heat_report`]) plus this handle's
    /// own accumulated ring-saturation pressure against it. Before any
    /// heat frame exists the heat term is zero and the choice degrades to
    /// the old pressure-only policy. Only *future allocations* move —
    /// frees route by address, so blocks already handed out still drain
    /// back to the shard that owns them, and the accounting stays exact
    /// through any number of rebalances.
    pub fn rebalance_away_from(&mut self, overloaded: usize) {
        let n = self.nshards();
        self.pressure[overloaded] = 0;
        if n == 1 {
            return;
        }
        let candidates: Vec<(usize, u64, bool)> = (0..n)
            .filter(|&s| {
                s != overloaded
                    && !self.failed[s]
                    && self.obs.state(s) == ShardLifecycle::Serving
                    && self.clients[s].as_ref().is_none_or(ClientHandle::is_open)
            })
            .map(|s| {
                let score = u64::from(self.pressure[s]).saturating_add(self.obs.heat_score(s));
                let affinity = self.preferred_cluster == Some(self.obs.cluster(s));
                (s, score, affinity)
            })
            .collect();
        let Some(target) = pick_coolest(candidates) else {
            return;
        };
        let mut moved = false;
        for slot in self.class_shard.iter_mut() {
            if *slot as usize == overloaded {
                *slot = target as u16;
                moved = true;
            }
        }
        if moved {
            self.shard_stats[overloaded].record_rebalance();
        }
    }

    /// Frees a block asynchronously; returns as soon as the message is in
    /// the owning shard's ring (§3.1.2: free is off the critical path).
    /// With `flush_threshold > 1`, small-block frees are buffered per
    /// owning shard and flushed as one batched post.
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`NgmHandle::alloc`] on the same [`Ngm`]
    /// instance with the same `layout`, and must not be used afterwards.
    pub unsafe fn dealloc(&mut self, ptr: NonNull<u8>, layout: Layout) {
        self.maybe_resync();
        if let Some(prof) = &self.sites {
            prof.record_free(ptr.as_ptr() as usize);
        }
        let small = layout_to_class(layout.size(), layout.align()).is_some();
        // The fallback gate comes before any shard shortcut (including
        // the single-shard one inside `shard_of_small`): once the tier
        // has ever degraded, any small block might be fallback-owned.
        // SAFETY (owner read): small blocks from this tier are segment-
        // backed, per this method's contract.
        if small
            && self.fallback.is_active()
            && unsafe { ngm_heap::owner_of_small_ptr(ptr) } == FALLBACK_OWNER
        {
            // SAFETY: forwarded contract — a live fallback block the
            // caller relinquished.
            unsafe { self.fallback.deallocate(ptr) };
            return;
        }
        let shard = if small {
            self.shard_of_small(ptr)
        } else {
            self.shard_of_large(layout)
        };
        if self.flush_threshold > 1 && small {
            self.free_bufs[shard].push(ptr.as_ptr() as usize);
            if self.free_bufs[shard].len() >= self.flush_threshold as usize {
                self.flush_shard_frees(shard);
            }
            if let Some(ring) = self.clients[shard]
                .as_ref()
                .and_then(ClientHandle::trace_ring)
            {
                ring.push(TraceEventKind::Free, layout.size() as u64, 0);
            }
            return;
        }
        self.record_post_weight(shard, 1);
        self.post_routed(
            shard,
            FreePost::One(FreeMsg {
                addr: ptr.as_ptr() as usize,
                size: layout.size(),
                align: layout.align(),
            }),
        );
        if let Some(ring) = self.clients[shard]
            .as_ref()
            .and_then(ClientHandle::trace_ring)
        {
            ring.push(TraceEventKind::Free, layout.size() as u64, 0);
        }
    }

    /// Posts all buffered frees (if any), each shard's buffer as one
    /// batched message to that shard. Called automatically when a buffer
    /// reaches `flush_threshold` and at handle drop; callers needing
    /// promptness bounds may flush manually.
    pub fn flush_frees(&mut self) {
        for shard in 0..self.nshards() {
            self.flush_shard_frees(shard);
        }
    }

    fn flush_shard_frees(&mut self, shard: usize) {
        if self.free_bufs[shard].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.free_bufs[shard]);
        self.record_post_weight(shard, batch.len() as u32);
        self.post_routed(shard, FreePost::Batch(batch));
    }

    /// Frees a small block by pushing it onto its owning shard's orphan
    /// stack (no handle state touched). Used by the global adapter in
    /// contexts where the ring may not be used.
    ///
    /// # Safety
    ///
    /// As [`NgmHandle::dealloc`], and the block must be a small-class
    /// block (under [`ngm_heap::SMALL_MAX`]).
    pub unsafe fn dealloc_orphan(&self, ptr: NonNull<u8>) {
        if let Some(prof) = &self.sites {
            prof.record_free(ptr.as_ptr() as usize);
        }
        // SAFETY (owner read): callers only pass live small blocks from
        // this tier's segment-backed heaps.
        if self.fallback.is_active()
            && unsafe { ngm_heap::owner_of_small_ptr(ptr) } == FALLBACK_OWNER
        {
            // SAFETY: forwarded contract — a relinquished fallback block.
            unsafe { self.fallback.deallocate(ptr) };
            return;
        }
        let shard = self.shard_of_small(ptr);
        // SAFETY: forwarded contract.
        unsafe { self.orphans[shard].push(ptr) };
    }

    /// Frees this handle has accepted but no service has yet applied:
    /// those buffered client-side awaiting a flush plus those carried by
    /// messages still in any shard's ring.
    pub fn pending_frees(&self) -> usize {
        let mut total: usize = self.free_bufs.iter().map(AddrBatch::len).sum();
        for shard in 0..self.nshards() {
            let in_ring = self.clients[shard]
                .as_ref()
                .map_or(0, ClientHandle::pending_posts);
            if self.flush_threshold <= 1 {
                // Degenerate mode: every ring message is exactly one free.
                total += in_ring;
            } else {
                let carried: u64 = self.post_weights[shard]
                    .iter()
                    .rev()
                    .take(in_ring)
                    .map(|&w| u64::from(w))
                    .sum();
                total += carried as usize;
            }
        }
        total
    }

    /// Blocks currently stashed in `class`'s magazine.
    pub fn magazine_len(&self, class: SizeClass) -> usize {
        self.magazines[class.0 as usize].len()
    }

    /// Blocks currently stashed across all magazines.
    pub fn magazine_occupancy(&self) -> usize {
        self.stash_by_shard.iter().sum::<i64>() as usize
    }

    /// The addresses currently stashed in `class`'s magazine (test/
    /// diagnostic use).
    pub fn magazine_contents(&self, class: SizeClass) -> &[usize] {
        self.magazines[class.0 as usize].as_slice()
    }

    /// Small-block frees buffered client-side, not yet posted.
    pub fn buffered_frees(&self) -> usize {
        self.free_bufs.iter().map(AddrBatch::len).sum()
    }
}

impl Drop for NgmHandle {
    /// Returns everything in flight to the services: buffered frees are
    /// flushed to their owning shards, and every address still stashed in
    /// a magazine goes back to the shard that *refilled* it via
    /// [`FreePost::MagazineReturn`] — not the class's current route, which
    /// a rebalance may have moved — so shutdown accounting stays exact
    /// per shard (`allocs == frees`) with batching on.
    fn drop(&mut self) {
        // Settle in-flight non-blocking submissions first: a batch that
        // lands after this point would have no magazine to live in, and
        // its blocks would never be freed.
        for shard in 0..self.nshards() {
            self.settle_nb(shard);
        }
        self.flush_frees();
        for ci in 0..NUM_CLASSES {
            if self.magazines[ci].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut self.magazines[ci]);
            let source = self.mag_shard[ci] as usize;
            self.stash_by_shard[source] -= batch.len() as i64;
            self.post_routed(source, FreePost::MagazineReturn(batch));
        }
        for shard in 0..self.nshards() {
            self.publish_occupancy(shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(n: usize) -> Layout {
        Layout::from_size_align(n, 8).unwrap()
    }

    #[test]
    fn alloc_free_roundtrip() {
        let ngm = Ngm::start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(256)).unwrap();
        // SAFETY: fresh 256-byte block.
        unsafe {
            std::ptr::write_bytes(p.as_ptr(), 0x42, 256);
            assert_eq!(*p.as_ptr().add(255), 0x42);
            h.dealloc(p, layout(256));
        }
        drop(h);
        let down = ngm.shutdown();
        assert!(down.clean());
        assert_eq!(down.service.allocs, 1);
        assert_eq!(down.service.frees, 1);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn many_threads_allocate_concurrently() {
        let ngm = Ngm::start();
        let mut joins = Vec::new();
        for t in 0..4u8 {
            let mut h = ngm.handle();
            joins.push(std::thread::spawn(move || {
                let mut blocks = Vec::new();
                for i in 0..200usize {
                    let l = layout(16 + (i * 13) % 1024);
                    let p = h.alloc(l).unwrap();
                    // SAFETY: fresh block of at least that size.
                    unsafe { std::ptr::write_bytes(p.as_ptr(), t, 16) };
                    blocks.push((p, l));
                }
                for (p, l) in blocks {
                    // SAFETY: blocks from this handle's allocator.
                    unsafe { h.dealloc(p, l) };
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, 800);
        assert_eq!(down.service.frees, 800);
        assert_eq!(down.heap.live_blocks, 0);
        assert_eq!(down.runtime.clients_registered, 4);
    }

    #[test]
    fn zero_size_alloc_is_error() {
        let ngm = Ngm::start();
        let mut h = ngm.handle();
        assert_eq!(
            h.alloc(Layout::from_size_align(0, 1).unwrap()),
            Err(AllocError::ZeroSize)
        );
    }

    #[test]
    fn large_blocks_route_through_service() {
        let ngm = Ngm::start();
        let mut h = ngm.handle();
        let l = layout(1 << 20);
        let p = h.alloc(l).unwrap();
        // SAFETY: 1 MiB block.
        unsafe {
            *p.as_ptr().add((1 << 20) - 1) = 9;
            h.dealloc(p, l);
        }
        drop(h);
        let down = ngm.shutdown();
        assert_eq!(down.heap.large_allocs, 0);
    }

    #[test]
    fn orphan_path_reclaims() {
        let ngm = Ngm::start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(64)).unwrap();
        // SAFETY: small live block relinquished to the orphan stack.
        unsafe { h.dealloc_orphan(p) };
        // Orphans are drained by the service's idle hook.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while ngm.orphans_drained() == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        drop(h);
        let down = ngm.shutdown();
        assert_eq!(down.service.orphans_reclaimed, 1);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn latency_histograms_capture_alloc_and_free() {
        let ngm = Ngm::start();
        let mut h = ngm.handle();
        for _ in 0..32 {
            let p = h.alloc(layout(64)).unwrap();
            // SAFETY: block from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
        }
        let calls = ngm.telemetry().call_cycles.snapshot();
        let posts = ngm.telemetry().post_cycles.snapshot();
        assert_eq!(calls.count(), 32);
        assert_eq!(posts.count(), 32);
        assert!(calls.p50() <= calls.p99());
    }

    #[test]
    fn tracing_records_allocs_and_frees_with_sizes() {
        let ngm = NgmConfig::new().with_trace_capacity(256).build().unwrap();
        let mut h = ngm.handle();
        let p = h.alloc(layout(96)).unwrap();
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout(96)) };
        let drain = ngm.telemetry().drain_trace();
        let allocs: Vec<_> = drain
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Alloc)
            .collect();
        let frees: Vec<_> = drain
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Free)
            .collect();
        assert_eq!(allocs.len(), 1);
        assert_eq!(allocs[0].a, 96, "alloc event carries the size");
        assert_eq!(frees.len(), 1);
        assert_eq!(frees[0].a, 96, "free event carries the size");
    }

    #[test]
    fn metrics_include_heap_series_after_idle_publish() {
        let ngm = Ngm::start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(128)).unwrap();
        // The watch refreshes on the service's idle rounds.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while ngm.live_heap_stats().live_blocks == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let m = ngm.metrics();
        assert_eq!(m.get_gauge("ngm_heap_live_blocks"), Some(1));
        assert_eq!(m.get_counter("ngm_heap_allocs_total"), Some(1));
        assert_eq!(m.get_gauge("ngm_service_shards"), Some(1));
        assert!(m.get_histogram("ngm_call_cycles").is_some());
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout(128)) };
    }

    fn batched(batch_size: usize, flush_threshold: usize) -> NgmConfig {
        NgmConfig::new().with_batch(batch_size, flush_threshold)
    }

    #[test]
    fn batched_roundtrip_balances_at_shutdown() {
        let ngm = batched(16, 8).build().unwrap();
        let mut h = ngm.handle();
        let mut blocks = Vec::new();
        for _ in 0..100 {
            let p = h.alloc(layout(64)).unwrap();
            // SAFETY: fresh 64-byte block.
            unsafe { std::ptr::write_bytes(p.as_ptr(), 0x5A, 64) };
            blocks.push(p);
        }
        for p in blocks {
            // SAFETY: blocks from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
        }
        drop(h);
        let down = ngm.shutdown();
        assert!(
            down.service.batch_refills > 0,
            "magazine path was exercised"
        );
        assert_eq!(
            down.service.allocs, down.service.frees,
            "every refilled block came back"
        );
        assert_eq!(
            down.service.allocs - down.service.magazine_returned,
            100,
            "app-visible allocs separable from unused stash"
        );
        assert_eq!(down.heap.live_blocks, 0);
    }

    /// Spins a non-blocking alloc to completion the way a caller without
    /// an executor would: retry on `WouldBlock`, pumping in between.
    fn spin_try_alloc(h: &mut NgmHandle, l: Layout) -> NonNull<u8> {
        loop {
            match h.try_alloc(l) {
                Ok(p) => return p,
                Err(NgmError::WouldBlock) => {
                    h.nb_pump();
                    std::hint::spin_loop();
                }
                Err(e) => panic!("try_alloc failed: {e}"),
            }
        }
    }

    #[test]
    fn try_alloc_roundtrip_balances_at_shutdown() {
        let ngm = batched(16, 8).build().unwrap();
        let mut h = ngm.handle();
        let mut blocks = Vec::new();
        let mut saw_wouldblock = false;
        for _ in 0..100 {
            match h.try_alloc(layout(64)) {
                Ok(p) => blocks.push(p),
                Err(NgmError::WouldBlock) => {
                    saw_wouldblock = true;
                    blocks.push(spin_try_alloc(&mut h, layout(64)));
                }
                Err(e) => panic!("try_alloc failed: {e}"),
            }
        }
        assert!(
            saw_wouldblock,
            "a dry magazine must surface at least one WouldBlock"
        );
        for p in blocks {
            loop {
                // SAFETY: block from this handle's tier; on Err the
                // caller still owns it and retries.
                match unsafe { h.try_dealloc(p, layout(64)) } {
                    Ok(()) => break,
                    Err(NgmError::WouldBlock) => std::hint::spin_loop(),
                    Err(e) => panic!("try_dealloc failed: {e}"),
                }
            }
        }
        drop(h);
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, down.service.frees);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn try_alloc_unbatched_and_large_layouts_complete() {
        let ngm = batched(1, 1).build().unwrap();
        let mut h = ngm.handle();
        // Small one-shot (no magazine) and a large (non-class) layout
        // both ride the One submission path.
        for l in [layout(64), Layout::from_size_align(1 << 20, 64).unwrap()] {
            let p = spin_try_alloc(&mut h, l);
            loop {
                // SAFETY: block from this handle's tier.
                match unsafe { h.try_dealloc(p, l) } {
                    Ok(()) => break,
                    Err(NgmError::WouldBlock) => std::hint::spin_loop(),
                    Err(e) => panic!("try_dealloc failed: {e}"),
                }
            }
        }
        drop(h);
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, down.service.frees);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn try_alloc_zero_size_is_typed_not_wouldblock() {
        let ngm = Ngm::start();
        let mut h = ngm.handle();
        assert_eq!(
            h.try_alloc(Layout::from_size_align(0, 8).unwrap()),
            Err(NgmError::Alloc(AllocError::ZeroSize))
        );
        drop(h);
        ngm.shutdown();
    }

    #[test]
    fn blocking_and_nonblocking_paths_share_one_ledger() {
        // Interleave the two front-ends on one handle: blocks allocated
        // blocking may be freed non-blocking and vice versa, and the
        // per-shard ledger still balances.
        let ngm = batched(8, 4).with_shards(2).build().unwrap();
        let mut h = ngm.handle();
        let mut blocks = Vec::new();
        for i in 0..60 {
            let p = if i % 2 == 0 {
                h.alloc(layout(128)).unwrap()
            } else {
                spin_try_alloc(&mut h, layout(128))
            };
            blocks.push(p);
        }
        for (i, p) in blocks.into_iter().enumerate() {
            if i % 3 == 0 {
                // SAFETY: block from this handle's tier.
                unsafe { h.dealloc(p, layout(128)) };
            } else {
                loop {
                    // SAFETY: block from this handle's tier.
                    match unsafe { h.try_dealloc(p, layout(128)) } {
                        Ok(()) => break,
                        Err(NgmError::WouldBlock) => std::hint::spin_loop(),
                        Err(e) => panic!("try_dealloc failed: {e}"),
                    }
                }
            }
        }
        drop(h);
        let down = ngm.shutdown();
        assert!(down.balanced(), "{down:?}");
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn explicit_batch_size_one_degenerates_to_unbatched() {
        let ngm = batched(1, 1).build().unwrap();
        let mut h = ngm.handle();
        for _ in 0..10 {
            let p = h.alloc(layout(64)).unwrap();
            // SAFETY: block from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
        }
        drop(h);
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, 10);
        assert_eq!(down.service.frees, 10);
        assert_eq!(down.service.batch_refills, 0);
        assert_eq!(down.service.magazine_returned, 0);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn pending_frees_includes_client_buffered_frees() {
        // Regression: pending_frees() used to report only ring posts, so
        // frees parked in the client flush buffer were invisible.
        let ngm = batched(8, 8).build().unwrap();
        let mut h = ngm.handle();
        let a = h.alloc(layout(64)).unwrap();
        let b = h.alloc(layout(64)).unwrap();
        // SAFETY: blocks from this handle's allocator.
        unsafe {
            h.dealloc(a, layout(64));
            h.dealloc(b, layout(64));
        }
        assert_eq!(h.buffered_frees(), 2, "below threshold: nothing posted");
        assert_eq!(h.pending_frees(), 2, "buffered frees must be counted");
        h.flush_frees();
        assert_eq!(h.buffered_frees(), 0);
    }

    #[test]
    fn magazine_occupancy_gauge_tracks_refills_and_drop() {
        let ngm = batched(16, 1).build().unwrap();
        let mut h = ngm.handle();
        let p = h.alloc(layout(64)).unwrap();
        // The refill published its full batch before the pop.
        assert_eq!(ngm.runtime_stats().magazine_occupancy, 16);
        assert_eq!(h.magazine_occupancy(), 15, "one block went to the app");
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout(64)) };
        drop(h);
        assert_eq!(
            ngm.runtime_stats().magazine_occupancy,
            0,
            "drop returns the stash and zeroes the gauge"
        );
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, down.service.frees);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn refills_land_in_refill_histogram_not_call_histogram() {
        let ngm = batched(8, 1).build().unwrap();
        let mut h = ngm.handle();
        let mut blocks = Vec::new();
        for _ in 0..16 {
            blocks.push(h.alloc(layout(64)).unwrap());
        }
        let refills = ngm.telemetry().refill_cycles.snapshot();
        let calls = ngm.telemetry().call_cycles.snapshot();
        assert_eq!(refills.count(), 2, "16 allocs at batch 8 = 2 refills");
        assert_eq!(calls.count(), 0, "no per-op round trips happened");
        for p in blocks {
            // SAFETY: blocks from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
        }
    }

    #[test]
    fn profiled_runtime_produces_core_attributed_pmu_report() {
        let ngm = NgmConfig::new().with_profile(true).build().unwrap();
        let mut h = ngm.handle();
        for _ in 0..32 {
            let p = h.alloc(layout(64)).unwrap();
            // SAFETY: block from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
        }
        drop(h);
        let telemetry = Arc::clone(ngm.telemetry());
        ngm.shutdown();
        let rep = telemetry.pmu_report().expect("profiling was on");
        let rendered = rep.render();
        assert!(rendered.contains("service/"), "{rendered}");
        assert!(rendered.contains("clients(1)/"), "{rendered}");
    }

    #[test]
    fn site_profiler_attributes_allocs_and_reports_leaks() {
        let ngm = NgmConfig::new().with_site_sample(1).build().unwrap();
        let mut h = ngm.handle();
        let freed = h.alloc(layout(64)).unwrap(); // both sites in this fn
        let leaked = h.alloc(layout(128)).unwrap();
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(freed, layout(64)) };
        let report = ngm.site_report().expect("site profiling was on");
        assert_eq!(report.sites.len(), 2, "two distinct call sites");
        let surviving = report.surviving();
        assert_eq!(surviving.len(), 1, "only the unfreed site survives");
        assert_eq!(surviving[0].live_bytes, 128);
        assert!(
            surviving[0].label.contains("api.rs"),
            "track_caller points into this file: {}",
            surviving[0].label
        );
        // The report flows into the exporter as labeled series.
        let m = ngm.metrics();
        assert_eq!(m.labeled_gauge_count("ngm_site_live_bytes"), 2);
        assert_eq!(m.get_gauge("ngm_site_surviving_count"), Some(1));
        // Clean up so shutdown accounting stays exact.
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(leaked, layout(128)) };
        assert!(ngm.site_report().unwrap().leak_free());
    }

    #[test]
    fn leak_free_batched_run_has_zero_surviving_sites() {
        // Acceptance: round-trip through the exporter with a leak-free
        // run showing zero surviving sites — batching on, so magazine
        // pops and batched flushes are attributed correctly too.
        let ngm = batched(8, 8).with_site_sample(1).build().unwrap();
        let mut h = ngm.handle();
        let mut blocks = Vec::new();
        for i in 0..64usize {
            blocks.push((h.alloc(layout(16 + i % 128)).unwrap(), layout(16 + i % 128)));
        }
        for (p, l) in blocks {
            // SAFETY: blocks from this handle's allocator.
            unsafe { h.dealloc(p, l) };
        }
        let report = ngm.site_report().unwrap();
        assert!(report.leak_free(), "leak report:\n{}", report.render());
        let mut m = MetricsSnapshot::new();
        report.publish(&mut m);
        assert_eq!(m.get_gauge("ngm_site_surviving_count"), Some(0));
        assert!(m.to_prometheus_text().contains("ngm_site_peak_bytes"));
        drop(h);
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, down.service.frees);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn profiling_disabled_reports_are_absent() {
        let ngm = Ngm::start();
        assert!(ngm.pmu_report().is_none());
        assert!(ngm.site_report().is_none());
    }

    #[test]
    fn service_core_pin_recorded_when_possible() {
        let ngm = NgmConfig::new()
            .with_placement(CorePlacement::Base(0))
            .build()
            .unwrap();
        // Give the service thread a moment to start and pin.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let stats = ngm.runtime_stats();
        assert_eq!(stats.pinned_core, Some(0));
    }

    #[cfg(feature = "legacy-api")]
    #[test]
    #[allow(deprecated)]
    fn deprecated_builder_shim_still_starts() {
        let ngm = NgmBuilder {
            batch_size: 1000, // clamped, as the old builder did
            ..NgmBuilder::default()
        }
        .start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(64)).unwrap();
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout(64)) };
        drop(h);
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, down.service.frees);
    }

    // ---- sharded-tier tests ----

    fn sharded(n: usize) -> NgmConfig {
        // Unpinned: CI machines rarely have a spare core per shard, and
        // pinning is orthogonal to what these tests check.
        NgmConfig::new()
            .with_shards(n)
            .with_placement(CorePlacement::Unpinned)
    }

    #[test]
    fn shards_balance_individually_at_shutdown() {
        let ngm = sharded(4).build().unwrap();
        assert_eq!(ngm.num_shards(), 4);
        let mut h = ngm.handle();
        let mut blocks = Vec::new();
        // Sizes spanning many classes so every shard sees traffic.
        for i in 0..400usize {
            let l = layout(16 << (i % 5));
            blocks.push((h.alloc(l).unwrap(), l));
        }
        for (p, l) in blocks {
            // SAFETY: blocks from this handle's allocator.
            unsafe { h.dealloc(p, l) };
        }
        drop(h);
        let down = ngm.shutdown();
        assert!(down.clean());
        assert!(down.balanced(), "per-shard alloc/free imbalance: {down:?}");
        assert_eq!(down.service.allocs, 400);
        assert_eq!(down.service.frees, 400);
        assert_eq!(down.heap.live_blocks, 0);
        // More than one shard actually served allocations.
        let active = down.shards.iter().filter(|s| s.service.allocs > 0).count();
        assert!(active > 1, "traffic never spread: {down:?}");
    }

    #[test]
    fn heat_report_windows_recent_activity() {
        let ngm = sharded(2).build().unwrap();
        let mut h = ngm.handle();
        for _ in 0..16 {
            let p = h.alloc(layout(64)).unwrap();
            // SAFETY: block from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
        }
        let first = ngm.heat_report();
        assert_eq!(first.shards.len(), 2);
        let total: u64 = first.shards.iter().map(|s| s.heat.calls).sum();
        assert_eq!(total, 16, "first report reads cumulative-since-start");
        assert!(
            first.shards.iter().any(|s| s.heat.phases[0].count() > 0),
            "phase percentiles ride along for shards that served calls"
        );
        assert!(first.render().contains("shard 0:"));
        // A second report with no traffic in between: the window is
        // [first, second] and must read zero new calls.
        let second = ngm.heat_report();
        let recent: u64 = second.shards.iter().map(|s| s.heat.calls).sum();
        assert_eq!(recent, 0, "windowed view excludes pre-window traffic");
        drop(h);
        ngm.shutdown();
    }

    #[test]
    fn metrics_export_heat_series_and_renamed_fallback_counter() {
        let ngm = sharded(2).build().unwrap();
        let mut h = ngm.handle();
        let p = h.alloc(layout(64)).unwrap();
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout(64)) };
        let m = ngm.metrics();
        assert_eq!(m.get_counter("ngm_fallback_allocs_total"), Some(0));
        assert_eq!(m.get_counter("ngm_fallback_allocs"), None, "old name gone");
        assert_eq!(m.labeled_gauge_count("ngm_shard_heat_score"), 2);
        assert!(m.get_histogram("ngm_phase_queue_cycles").is_some());
        drop(h);
        ngm.shutdown();
    }

    #[test]
    fn rebalance_targets_the_coolest_shard_by_heat() {
        let ngm = sharded(3).build().unwrap();
        let mut h = ngm.handle();
        // Manufacture heat: shard 1 recently blew deadlines, shard 2 is
        // equally busy but healthy. Moving off shard 0 must skip 1.
        ngm.inject_heat(
            1,
            HeatFrame {
                tsc: 1,
                calls: 50,
                deadlines: 50,
                ..HeatFrame::default()
            },
        );
        ngm.inject_heat(
            2,
            HeatFrame {
                tsc: 1,
                calls: 50,
                ..HeatFrame::default()
            },
        );
        let victim = (0..NUM_CLASSES)
            .find(|&c| h.class_route(SizeClass(c as u16)) == 0)
            .expect("some class routes to shard 0");
        h.rebalance_away_from(0);
        assert_eq!(
            h.class_route(SizeClass(victim as u16)),
            2,
            "the hot shard was skipped"
        );
        drop(h);
        ngm.shutdown();
    }

    #[test]
    fn frees_route_home_after_rebalance() {
        // The routing-purity regression: allocate, move the class's alloc
        // route elsewhere, then free — the free must still reach the
        // allocating shard (by address), not the new route.
        let ngm = sharded(2).build().unwrap();
        let mut h = ngm.handle();
        let class = ngm_heap::size_to_class(64).unwrap();
        let home = h.class_route(class);
        let p = h.alloc(layout(64)).unwrap();
        h.rebalance_away_from(home);
        assert_ne!(h.class_route(class), home, "rebalance moved the route");
        let q = h.alloc(layout(64)).unwrap();
        // SAFETY: blocks from this handle's allocator.
        unsafe {
            h.dealloc(p, layout(64));
            h.dealloc(q, layout(64));
        }
        drop(h);
        let down = ngm.shutdown();
        assert!(down.balanced(), "a free went to the wrong shard: {down:?}");
        assert_eq!(down.heap.live_blocks, 0);
        assert!(down.runtime.rebalances >= 1, "rebalance was recorded");
    }

    #[test]
    fn magazine_returns_to_refilling_shard_after_rebalance() {
        // Regression for cross-shard magazine accounting: refill a
        // magazine from shard A, rebalance the class to shard B, then
        // drop the handle. The unused stash must return to A (its
        // refiller), keeping A's allocs == frees — returning it to the
        // class's *current* route would corrupt both shards' accounting.
        let ngm = sharded(2).with_batch(16, 1).build().unwrap();
        let mut h = ngm.handle();
        let class = ngm_heap::size_to_class(64).unwrap();
        let home = h.class_route(class);
        let p = h.alloc(layout(64)).unwrap(); // refills 16 from `home`
        assert!(h.magazine_len(class) > 0);
        h.rebalance_away_from(home);
        assert_ne!(h.class_route(class), home);
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout(64)) };
        drop(h); // returns the magazine — must go to `home`
        let down = ngm.shutdown();
        assert!(
            down.balanced(),
            "magazine returned to wrong shard: {down:?}"
        );
        assert_eq!(down.service.magazine_returned, 15);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn cross_thread_frees_route_by_address() {
        // Blocks allocated on one thread, freed on another with its own
        // handle (different rebalance state): address routing must send
        // every free to the allocating shard.
        let ngm = sharded(2).build().unwrap();
        let mut producer = ngm.handle();
        let mut consumer = ngm.handle();
        // Skew the consumer's routing so its class map disagrees.
        consumer.rebalance_away_from(0);
        let blocks: Vec<usize> = (0..100)
            .map(|i| {
                let l = layout(16 << (i % 4));
                producer.alloc(l).unwrap().as_ptr() as usize
            })
            .collect();
        std::thread::scope(|s| {
            s.spawn(move || {
                for (i, addr) in blocks.into_iter().enumerate() {
                    let l = layout(16 << (i % 4));
                    // SAFETY: live blocks relinquished by the producer.
                    unsafe { consumer.dealloc(NonNull::new(addr as *mut u8).unwrap(), l) };
                }
            });
        });
        drop(producer);
        let down = ngm.shutdown();
        assert!(down.balanced(), "cross-thread free misrouted: {down:?}");
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn dead_shard_fails_over_and_is_counted() {
        let ngm = sharded(2).build().unwrap();
        let mut h = ngm.handle();
        // Blocks owned by each shard while both are alive.
        let class64 = ngm_heap::size_to_class(64).unwrap();
        let victim = h.class_route(class64);
        let doomed = h.alloc(layout(64)).unwrap();
        ngm.stop_shard(victim);
        // Wait until the death is observable through the closed rings.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !ngm.shard_finished(victim) {
            assert!(std::time::Instant::now() < deadline, "shard never stopped");
            std::thread::yield_now();
        }
        // Allocation of the victim's class fails over to the survivor.
        let p = h.alloc(layout(64)).unwrap();
        assert_ne!(
            h.class_route(class64),
            victim,
            "traffic moved off the dead shard"
        );
        // A free owed to the dead shard is dropped and counted, not lost
        // silently and not misapplied to a survivor.
        // SAFETY: blocks from this handle's allocator.
        unsafe {
            h.dealloc(doomed, layout(64));
            h.dealloc(p, layout(64));
        }
        drop(h);
        let down = ngm.shutdown();
        assert!(down.clean(), "request_stop is an orderly exit");
        assert!(down.runtime.failovers >= 1, "failover recorded: {down:?}");
        assert_eq!(
            down.runtime.posts_dropped, 1,
            "the orphaned free was counted"
        );
        // The survivor stays exact; the victim is short exactly the
        // dropped free.
        let victim_stats = &down.shards[victim];
        assert_eq!(
            victim_stats.service.allocs - victim_stats.service.frees,
            1,
            "imbalance exactly accounts for the dropped free: {down:?}"
        );
        for s in &down.shards {
            if s.shard != victim {
                assert_eq!(s.service.allocs, s.service.frees, "{down:?}");
            }
        }
    }

    #[test]
    fn dead_tier_degrades_to_inline_fallback() {
        // Liveness floor: with every shard stopped, small allocations are
        // served inline from the fallback heap instead of failing (or
        // hanging), frees route back to it by address, and shutdown
        // accounting still balances with the fallback folded in.
        let ngm = Ngm::start();
        let mut h = ngm.handle();
        ngm.stop_shard(0);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !ngm.shard_finished(0) {
            assert!(std::time::Instant::now() < deadline, "shard never stopped");
            std::thread::yield_now();
        }
        let p = h.alloc(layout(64)).expect("degraded alloc still serves");
        // SAFETY: fresh 64-byte block from the fallback heap.
        unsafe { std::ptr::write_bytes(p.as_ptr(), 0x66, 64) };
        assert!(ngm.fallback_heap().is_active());
        // Large layouts cannot degrade (no address-pure free route).
        assert_eq!(h.alloc(layout(1 << 20)), Err(AllocError::OutOfMemory));
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout(64)) };
        drop(h);
        let down = ngm.shutdown();
        assert_eq!(down.service.fallback_allocs, 1);
        assert_eq!(down.service.allocs, down.service.frees);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn fallback_orphan_route_frees_inline() {
        // dealloc_orphan and Ngm::orphan_push must recognize fallback-
        // owned blocks and free them inline — no shard's orphan stack can
        // ever reclaim them.
        let ngm = Ngm::start();
        let mut h = ngm.handle();
        ngm.stop_shard(0);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !ngm.shard_finished(0) {
            assert!(std::time::Instant::now() < deadline, "shard never stopped");
            std::thread::yield_now();
        }
        let a = h.alloc(layout(64)).unwrap();
        let b = h.alloc(layout(64)).unwrap();
        // SAFETY: live fallback blocks, relinquished.
        unsafe {
            h.dealloc_orphan(a);
            ngm.orphan_push(b);
        }
        assert_eq!(ngm.fallback_heap().frees(), 2);
        drop(h);
        let down = ngm.shutdown();
        assert_eq!(down.service.fallback_allocs, 2);
        assert_eq!(down.service.allocs, down.service.frees);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn handle_api_is_source_compatible_with_single_shard() {
        // The whole single-shard test suite above runs through the same
        // NgmHandle; this spot-checks the sharded accessors degrade
        // sanely at n = 1.
        let ngm = Ngm::start();
        let h = ngm.handle();
        assert_eq!(ngm.num_shards(), 1);
        assert_eq!(h.class_route(ngm_heap::size_to_class(64).unwrap()), 0);
        drop(h);
        let down = ngm.shutdown();
        assert_eq!(down.shards.len(), 1);
        assert!(down.clean() && down.balanced());
    }

    // ---- fault-injection tests (deterministic, feature-gated) ----

    #[cfg(feature = "faultinject")]
    mod faults {
        use super::*;
        use std::time::Duration;

        #[test]
        fn wedged_shard_reroutes_allocs_within_deadline() {
            // With one of two shards wedged (alive but not serving), a
            // request routed at it must deadline, reroute to the
            // survivor, and succeed — not hang and not write the shard
            // off as dead.
            let ngm = sharded(2)
                .with_deadline(Some(Duration::from_millis(20)))
                .build()
                .unwrap();
            let mut h = ngm.handle();
            let class64 = ngm_heap::size_to_class(64).unwrap();
            let victim = h.class_route(class64);
            ngm.fault_state(victim).set_wedged(true);
            let start = std::time::Instant::now();
            let p = h.alloc(layout(64)).expect("rerouted around the wedge");
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "bounded, not a hang"
            );
            assert_ne!(h.class_route(class64), victim, "traffic moved off");
            // SAFETY: live block from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
            ngm.fault_state(victim).set_wedged(false);
            drop(h);
            let down = ngm.shutdown();
            assert!(down.clean(), "wedge cleared: orderly exit: {down:?}");
            assert!(down.runtime.deadlines >= 1, "expiry counted: {down:?}");
            assert_eq!(down.service.allocs, down.service.frees);
            assert_eq!(down.heap.live_blocks, 0);
        }

        #[test]
        fn deadlined_frees_reroute_to_orphans_not_leak() {
            // Fill the wedged shard's free ring, then keep freeing: the
            // posts that deadline must land on the shard's orphan stack
            // and be reclaimed once the shard recovers, so the books
            // still balance at shutdown.
            let ngm = sharded(1)
                .with_free_ring_capacity(8)
                .with_deadline(Some(Duration::from_millis(10)))
                .build()
                .unwrap();
            let mut h = ngm.handle();
            let blocks: Vec<_> = (0..64).map(|_| h.alloc(layout(64)).unwrap()).collect();
            ngm.fault_state(0).set_wedged(true);
            for p in blocks {
                // SAFETY: live blocks from this handle's allocator.
                unsafe { h.dealloc(p, layout(64)) };
            }
            ngm.fault_state(0).set_wedged(false);
            drop(h);
            let down = ngm.shutdown();
            assert!(down.clean());
            assert!(down.runtime.deadlines >= 1, "ring backpressure expired");
            assert_eq!(down.runtime.posts_dropped, 0, "nothing was lost");
            assert_eq!(down.service.allocs, down.service.frees, "{down:?}");
            assert_eq!(down.heap.live_blocks, 0);
        }

        #[test]
        fn wedged_tier_degrades_to_fallback_and_recovers() {
            // Every shard wedged: allocation exhausts reroutes and lands
            // on the inline fallback. After the wedge clears the tier
            // serves normally again and shutdown folds the fallback in.
            let ngm = sharded(2)
                .with_deadline(Some(Duration::from_millis(10)))
                .build()
                .unwrap();
            let mut h = ngm.handle();
            ngm.fault_state(0).set_wedged(true);
            ngm.fault_state(1).set_wedged(true);
            let p = h.alloc(layout(64)).expect("fallback keeps serving");
            assert!(ngm.fallback_heap().is_active());
            ngm.fault_state(0).set_wedged(false);
            ngm.fault_state(1).set_wedged(false);
            let q = h.alloc(layout(64)).expect("tier recovered");
            // SAFETY: live blocks; p is fallback-owned, q shard-owned.
            unsafe {
                h.dealloc(p, layout(64));
                h.dealloc(q, layout(64));
            }
            assert_eq!(ngm.fallback_heap().frees(), 1, "p routed home inline");
            drop(h);
            let down = ngm.shutdown();
            assert!(down.clean());
            assert!(down.service.fallback_allocs >= 1);
            assert_eq!(down.service.allocs, down.service.frees, "{down:?}");
            assert_eq!(down.heap.live_blocks, 0);
        }

        #[test]
        fn killed_shard_mid_traffic_fails_over_cleanly() {
            // A shard that dies *by panic* mid-serve: the caller gets a
            // typed error path (failover to the survivor), the panic is
            // reported at shutdown, and the survivor stays balanced.
            let ngm = sharded(2)
                .with_deadline(Some(Duration::from_millis(50)))
                .build()
                .unwrap();
            let mut h = ngm.handle();
            let class64 = ngm_heap::size_to_class(64).unwrap();
            let victim = h.class_route(class64);
            ngm.fault_state(victim).kill_next_call();
            let p = h.alloc(layout(64)).expect("survivor serves");
            assert_ne!(h.class_route(class64), victim);
            // SAFETY: live block from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
            drop(h);
            let down = ngm.shutdown();
            assert!(!down.clean(), "the kill is reported, not swallowed");
            assert!(down.shards[victim].error.is_some());
            assert!(down.runtime.service_down);
            assert_eq!(down.heap.live_blocks, 0, "survivor + fallback exact");
        }
    }
}
