//! The handle-based public API.

use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::Arc;

use ngm_heap::{AllocError, HeapStats};
use ngm_offload::{
    ClientHandle, OffloadRuntime, RuntimeBuilder, RuntimeTelemetry, StatsSnapshot, WaitStrategy,
};
use ngm_telemetry::clock::cycles_now;
use ngm_telemetry::export::MetricsSnapshot;
use ngm_telemetry::trace::TraceEventKind;

use crate::orphan::OrphanStack;
use crate::service::{AllocReq, FreeMsg, MallocService, ServiceStats};
use crate::watch::SharedHeapStats;

/// Configuration for [`NextGenMalloc::start`].
#[derive(Debug, Clone, Copy)]
pub struct NgmBuilder {
    /// Core to pin the service thread to; `None` leaves it floating.
    pub service_core: Option<usize>,
    /// Wait policy for client threads blocked on `alloc`.
    pub client_wait: WaitStrategy,
    /// Wait policy for the service thread's polling loop.
    pub server_wait: WaitStrategy,
    /// Capacity of each client's asynchronous free ring.
    pub free_ring_capacity: usize,
    /// Per-thread event-trace ring capacity; `0` (the default) disables
    /// tracing entirely, leaving only the always-on latency histograms.
    pub trace_capacity: usize,
}

impl Default for NgmBuilder {
    fn default() -> Self {
        // Pin to the last core when the machine has more than one — the
        // paper's "own room" — otherwise float.
        let cores = ngm_offload::available_cores();
        NgmBuilder {
            service_core: (cores > 1).then(|| cores - 1),
            client_wait: WaitStrategy::default(),
            server_wait: WaitStrategy::default(),
            free_ring_capacity: 4096,
            trace_capacity: 0,
        }
    }
}

impl NgmBuilder {
    /// Starts the allocator runtime.
    pub fn start(self) -> NextGenMalloc {
        let orphans = Arc::new(OrphanStack::new());
        let service = MallocService::new(Arc::clone(&orphans));
        // Keep observing the heap after the service thread takes the
        // service (and its heap) away from us.
        let heap_watch = Arc::clone(service.heap_watch());
        let mut rb = RuntimeBuilder::new()
            .server_wait(self.server_wait)
            .client_wait(self.client_wait)
            .ring_capacity(self.free_ring_capacity)
            .trace_capacity(self.trace_capacity);
        if let Some(core) = self.service_core {
            rb = rb.pin_to(core);
        }
        NextGenMalloc {
            runtime: rb.start(service),
            orphans,
            heap_watch,
        }
    }
}

/// The running allocator: a dedicated service thread plus registration of
/// per-thread client handles.
pub struct NextGenMalloc {
    runtime: OffloadRuntime<MallocService>,
    orphans: Arc<OrphanStack>,
    heap_watch: Arc<SharedHeapStats>,
}

impl NextGenMalloc {
    /// Starts with default configuration.
    pub fn start() -> Self {
        NgmBuilder::default().start()
    }

    /// Builder for custom configuration.
    pub fn builder() -> NgmBuilder {
        NgmBuilder::default()
    }

    /// Registers a handle for the calling (or any) thread.
    pub fn handle(&self) -> NgmHandle {
        NgmHandle {
            client: self.runtime.register_client(),
            orphans: Arc::clone(&self.orphans),
        }
    }

    /// The shared orphan stack (used by the global-allocator adapter).
    pub fn orphans(&self) -> &Arc<OrphanStack> {
        &self.orphans
    }

    /// Offload-runtime counters.
    pub fn runtime_stats(&self) -> StatsSnapshot {
        self.runtime.stats()
    }

    /// The runtime's telemetry hub: latency histograms plus (when
    /// enabled via [`NgmBuilder::trace_capacity`]) the event-trace rings.
    pub fn telemetry(&self) -> &Arc<RuntimeTelemetry> {
        self.runtime.telemetry()
    }

    /// A near-current view of the service heap, published by the service
    /// thread during idle rounds. Fields may lag a busy service by one
    /// publication; the stats returned by [`NextGenMalloc::shutdown`]
    /// are exact.
    pub fn live_heap_stats(&self) -> HeapStats {
        self.heap_watch.load()
    }

    /// The full exportable metrics snapshot: offload-runtime counters,
    /// gauges, and latency histograms, plus `ngm_heap_*` series mirrored
    /// from the service heap.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = self.runtime.metrics();
        let heap = self.heap_watch.load();
        m.counter("ngm_heap_allocs_total", heap.total_allocs)
            .counter("ngm_heap_frees_total", heap.total_frees)
            .counter("ngm_heap_large_allocs_total", heap.large_allocs)
            .gauge("ngm_heap_live_blocks", heap.live_blocks as i64)
            .gauge("ngm_heap_live_bytes", heap.live_bytes as i64)
            .gauge("ngm_heap_segments", heap.segments as i64)
            .gauge("ngm_heap_pages_in_use", heap.pages_in_use as i64)
            .gauge("ngm_heap_peak_live_bytes", heap.peak_live_bytes as i64);
        m
    }

    /// Stops the service thread and returns final statistics.
    ///
    /// All handles must be dropped or idle; posted frees are drained before
    /// the thread exits.
    pub fn shutdown(self) -> (ServiceStats, ngm_heap::HeapStats, StatsSnapshot) {
        let (svc, stats) = self.runtime.shutdown();
        (svc.service_stats(), svc.heap_stats(), stats)
    }
}

/// A per-thread endpoint to the allocator.
pub struct NgmHandle {
    client: ClientHandle<MallocService>,
    orphans: Arc<OrphanStack>,
}

impl NgmHandle {
    /// Allocates a block (synchronous round trip to the service core).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the service reports failure and
    /// [`AllocError::ZeroSize`] for zero-sized layouts.
    pub fn alloc(&mut self, layout: Layout) -> Result<NonNull<u8>, AllocError> {
        if layout.size() == 0 {
            return Err(AllocError::ZeroSize);
        }
        let t0 = self.client.trace_ring().is_some().then(cycles_now);
        let addr = self.client.call(AllocReq::from_layout(layout));
        if let Some(t0) = t0 {
            let rtt = cycles_now().saturating_sub(t0);
            if let Some(ring) = self.client.trace_ring() {
                ring.push(TraceEventKind::Alloc, layout.size() as u64, rtt);
            }
        }
        NonNull::new(addr as *mut u8).ok_or(AllocError::OutOfMemory)
    }

    /// Frees a block asynchronously; returns as soon as the message is in
    /// the ring (§3.1.2: free is off the critical path).
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`NgmHandle::alloc`] on the same
    /// [`NextGenMalloc`] instance with the same `layout`, and must not be
    /// used afterwards.
    pub unsafe fn dealloc(&mut self, ptr: NonNull<u8>, layout: Layout) {
        self.client.post(FreeMsg {
            addr: ptr.as_ptr() as usize,
            size: layout.size(),
            align: layout.align(),
        });
        if let Some(ring) = self.client.trace_ring() {
            ring.push(TraceEventKind::Free, layout.size() as u64, 0);
        }
    }

    /// Frees a small block by pushing it onto the orphan stack (no handle
    /// state touched). Used by the global adapter in contexts where the
    /// ring may not be used.
    ///
    /// # Safety
    ///
    /// As [`NgmHandle::dealloc`], and the block must be a small-class block
    /// (under [`ngm_heap::SMALL_MAX`]).
    pub unsafe fn dealloc_orphan(&self, ptr: NonNull<u8>) {
        // SAFETY: forwarded contract.
        unsafe { self.orphans.push(ptr) };
    }

    /// Frees waiting in this handle's ring (not yet applied).
    pub fn pending_frees(&self) -> usize {
        self.client.pending_posts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(n: usize) -> Layout {
        Layout::from_size_align(n, 8).unwrap()
    }

    #[test]
    fn alloc_free_roundtrip() {
        let ngm = NextGenMalloc::start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(256)).unwrap();
        // SAFETY: fresh 256-byte block.
        unsafe {
            std::ptr::write_bytes(p.as_ptr(), 0x42, 256);
            assert_eq!(*p.as_ptr().add(255), 0x42);
            h.dealloc(p, layout(256));
        }
        drop(h);
        let (svc, heap, _rt) = ngm.shutdown();
        assert_eq!(svc.allocs, 1);
        assert_eq!(svc.frees, 1);
        assert_eq!(heap.live_blocks, 0);
    }

    #[test]
    fn many_threads_allocate_concurrently() {
        let ngm = NextGenMalloc::start();
        let mut joins = Vec::new();
        for t in 0..4u8 {
            let mut h = ngm.handle();
            joins.push(std::thread::spawn(move || {
                let mut blocks = Vec::new();
                for i in 0..200usize {
                    let l = layout(16 + (i * 13) % 1024);
                    let p = h.alloc(l).unwrap();
                    // SAFETY: fresh block of at least that size.
                    unsafe { std::ptr::write_bytes(p.as_ptr(), t, 16) };
                    blocks.push((p, l));
                }
                for (p, l) in blocks {
                    // SAFETY: blocks from this handle's allocator.
                    unsafe { h.dealloc(p, l) };
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let (svc, heap, rt) = ngm.shutdown();
        assert_eq!(svc.allocs, 800);
        assert_eq!(svc.frees, 800);
        assert_eq!(heap.live_blocks, 0);
        assert_eq!(rt.clients_registered, 4);
    }

    #[test]
    fn zero_size_alloc_is_error() {
        let ngm = NextGenMalloc::start();
        let mut h = ngm.handle();
        assert_eq!(
            h.alloc(Layout::from_size_align(0, 1).unwrap()),
            Err(AllocError::ZeroSize)
        );
    }

    #[test]
    fn large_blocks_route_through_service() {
        let ngm = NextGenMalloc::start();
        let mut h = ngm.handle();
        let l = layout(1 << 20);
        let p = h.alloc(l).unwrap();
        // SAFETY: 1 MiB block.
        unsafe {
            *p.as_ptr().add((1 << 20) - 1) = 9;
            h.dealloc(p, l);
        }
        drop(h);
        let (_, heap, _) = ngm.shutdown();
        assert_eq!(heap.large_allocs, 0);
    }

    #[test]
    fn orphan_path_reclaims() {
        let ngm = NextGenMalloc::start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(64)).unwrap();
        // SAFETY: small live block relinquished to the orphan stack.
        unsafe { h.dealloc_orphan(p) };
        // Orphans are drained by the service's idle hook.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while ngm.orphans().drained() == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        drop(h);
        let (svc, heap, _) = ngm.shutdown();
        assert_eq!(svc.orphans_reclaimed, 1);
        assert_eq!(heap.live_blocks, 0);
    }

    #[test]
    fn latency_histograms_capture_alloc_and_free() {
        let ngm = NextGenMalloc::start();
        let mut h = ngm.handle();
        for _ in 0..32 {
            let p = h.alloc(layout(64)).unwrap();
            // SAFETY: block from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
        }
        let calls = ngm.telemetry().call_cycles.snapshot();
        let posts = ngm.telemetry().post_cycles.snapshot();
        assert_eq!(calls.count(), 32);
        assert_eq!(posts.count(), 32);
        assert!(calls.p50() <= calls.p99());
    }

    #[test]
    fn tracing_records_allocs_and_frees_with_sizes() {
        let ngm = NgmBuilder {
            trace_capacity: 256,
            ..NgmBuilder::default()
        }
        .start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(96)).unwrap();
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout(96)) };
        let drain = ngm.telemetry().drain_trace();
        let allocs: Vec<_> = drain
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Alloc)
            .collect();
        let frees: Vec<_> = drain
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Free)
            .collect();
        assert_eq!(allocs.len(), 1);
        assert_eq!(allocs[0].a, 96, "alloc event carries the size");
        assert_eq!(frees.len(), 1);
        assert_eq!(frees[0].a, 96, "free event carries the size");
    }

    #[test]
    fn metrics_include_heap_series_after_idle_publish() {
        let ngm = NextGenMalloc::start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(128)).unwrap();
        // The watch refreshes on the service's idle rounds.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while ngm.live_heap_stats().live_blocks == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let m = ngm.metrics();
        assert_eq!(m.get_gauge("ngm_heap_live_blocks"), Some(1));
        assert_eq!(m.get_counter("ngm_heap_allocs_total"), Some(1));
        assert!(m.get_histogram("ngm_call_cycles").is_some());
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout(128)) };
    }

    #[test]
    fn service_core_pin_recorded_when_possible() {
        let ngm = NgmBuilder {
            service_core: Some(0),
            ..NgmBuilder::default()
        }
        .start();
        // Give the service thread a moment to start and pin.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let stats = ngm.runtime_stats();
        assert_eq!(stats.pinned_core, Some(0));
    }
}
