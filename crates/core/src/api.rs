//! The handle-based public API.

use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::Arc;

use ngm_heap::{AllocError, HeapStats};
use ngm_offload::{
    ClientHandle, OffloadRuntime, RuntimeBuilder, RuntimeTelemetry, StatsSnapshot, WaitStrategy,
};
use ngm_pmu::PmuReport;
use ngm_telemetry::clock::cycles_now;
use ngm_telemetry::export::MetricsSnapshot;
use ngm_telemetry::sites::{SiteProfiler, SiteReport};
use ngm_telemetry::trace::TraceEventKind;

use ngm_heap::classes::{layout_to_class, SizeClass, NUM_CLASSES};

use crate::orphan::OrphanStack;
use crate::service::{
    AddrBatch, AllocBatchReq, AllocReq, FreeMsg, FreePost, MallocReq, MallocResp, MallocService,
    ServiceStats, MAX_BATCH,
};
use crate::watch::SharedHeapStats;

/// Configuration for [`NextGenMalloc::start`].
#[derive(Debug, Clone, Copy)]
pub struct NgmBuilder {
    /// Core to pin the service thread to; `None` leaves it floating.
    pub service_core: Option<usize>,
    /// Wait policy for client threads blocked on `alloc`.
    pub client_wait: WaitStrategy,
    /// Wait policy for the service thread's polling loop.
    pub server_wait: WaitStrategy,
    /// Capacity of each client's asynchronous free ring.
    pub free_ring_capacity: usize,
    /// Per-thread event-trace ring capacity; `0` (the default) disables
    /// tracing entirely, leaving only the always-on latency histograms.
    pub trace_capacity: usize,
    /// Blocks fetched per magazine refill (clamped to
    /// `1..=`[`MAX_BATCH`]). `1` (the default) disables the magazine:
    /// every small alloc is its own round trip, exactly the pre-batching
    /// behavior. Values ≥ 8 amortize the §4.1 handshake comfortably past
    /// break-even.
    pub batch_size: usize,
    /// Small-block frees buffered client-side before one batched flush
    /// post (clamped to `1..=`[`MAX_BATCH`]). `1` (the default) posts
    /// each free individually, exactly the pre-batching behavior.
    pub flush_threshold: usize,
    /// Enables PMU profiling (off by default): the service loop and every
    /// handle wrap their lifetimes in a [`ngm_pmu::PmuSession`],
    /// attributing cycles and cache/TLB misses to the service core versus
    /// the app cores. Falls back to labeled software counters where
    /// `perf_event_open` is unavailable.
    pub profile: bool,
    /// Allocation-site profiling sample interval: attribute 1 in
    /// `site_sample` allocations to their call site (`1` = every
    /// allocation). `0` (the default) disables the site profiler.
    pub site_sample: u64,
}

impl Default for NgmBuilder {
    fn default() -> Self {
        // Pin to the last core when the machine has more than one — the
        // paper's "own room" — otherwise float.
        let cores = ngm_offload::available_cores();
        NgmBuilder {
            service_core: (cores > 1).then(|| cores - 1),
            client_wait: WaitStrategy::default(),
            server_wait: WaitStrategy::default(),
            free_ring_capacity: 4096,
            trace_capacity: 0,
            batch_size: 1,
            flush_threshold: 1,
            profile: false,
            site_sample: 0,
        }
    }
}

impl NgmBuilder {
    /// Starts the allocator runtime.
    pub fn start(self) -> NextGenMalloc {
        let orphans = Arc::new(OrphanStack::new());
        let service = MallocService::new(Arc::clone(&orphans));
        // Keep observing the heap after the service thread takes the
        // service (and its heap) away from us.
        let heap_watch = Arc::clone(service.heap_watch());
        let mut rb = RuntimeBuilder::new()
            .server_wait(self.server_wait)
            .client_wait(self.client_wait)
            .ring_capacity(self.free_ring_capacity)
            .trace_capacity(self.trace_capacity)
            .profile(self.profile);
        if let Some(core) = self.service_core {
            rb = rb.pin_to(core);
        }
        NextGenMalloc {
            runtime: rb.start(service),
            orphans,
            heap_watch,
            batch_size: self.batch_size.clamp(1, MAX_BATCH) as u32,
            flush_threshold: self.flush_threshold.clamp(1, MAX_BATCH) as u32,
            sites: (self.site_sample > 0).then(|| Arc::new(SiteProfiler::new(self.site_sample))),
        }
    }
}

/// The running allocator: a dedicated service thread plus registration of
/// per-thread client handles.
pub struct NextGenMalloc {
    runtime: OffloadRuntime<MallocService>,
    orphans: Arc<OrphanStack>,
    heap_watch: Arc<SharedHeapStats>,
    batch_size: u32,
    flush_threshold: u32,
    sites: Option<Arc<SiteProfiler>>,
}

impl NextGenMalloc {
    /// Starts with default configuration.
    pub fn start() -> Self {
        NgmBuilder::default().start()
    }

    /// Builder for custom configuration.
    pub fn builder() -> NgmBuilder {
        NgmBuilder::default()
    }

    /// Registers a handle for the calling (or any) thread.
    pub fn handle(&self) -> NgmHandle {
        NgmHandle {
            client: self.runtime.register_client(),
            orphans: Arc::clone(&self.orphans),
            batch_size: self.batch_size,
            flush_threshold: self.flush_threshold,
            magazines: [AddrBatch::empty(); NUM_CLASSES],
            free_buf: AddrBatch::empty(),
            stash_total: 0,
            published_occupancy: 0,
            post_weights: std::collections::VecDeque::new(),
            sites: self.sites.clone(),
        }
    }

    /// The shared orphan stack (used by the global-allocator adapter).
    pub fn orphans(&self) -> &Arc<OrphanStack> {
        &self.orphans
    }

    /// Offload-runtime counters.
    pub fn runtime_stats(&self) -> StatsSnapshot {
        self.runtime.stats()
    }

    /// The runtime's telemetry hub: latency histograms plus (when
    /// enabled via [`NgmBuilder::trace_capacity`]) the event-trace rings.
    pub fn telemetry(&self) -> &Arc<RuntimeTelemetry> {
        self.runtime.telemetry()
    }

    /// A near-current view of the service heap, published by the service
    /// thread during idle rounds. Fields may lag a busy service by one
    /// publication; the stats returned by [`NextGenMalloc::shutdown`]
    /// are exact.
    pub fn live_heap_stats(&self) -> HeapStats {
        self.heap_watch.load()
    }

    /// The full exportable metrics snapshot: offload-runtime counters,
    /// gauges, and latency histograms, plus `ngm_heap_*` series mirrored
    /// from the service heap.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = self.runtime.metrics();
        let heap = self.heap_watch.load();
        m.counter("ngm_heap_allocs_total", heap.total_allocs)
            .counter("ngm_heap_frees_total", heap.total_frees)
            .counter("ngm_heap_large_allocs_total", heap.large_allocs)
            .gauge("ngm_heap_live_blocks", heap.live_blocks as i64)
            .gauge("ngm_heap_live_bytes", heap.live_bytes as i64)
            .gauge("ngm_heap_segments", heap.segments as i64)
            .gauge("ngm_heap_pages_in_use", heap.pages_in_use as i64)
            .gauge("ngm_heap_peak_live_bytes", heap.peak_live_bytes as i64);
        if let Some(report) = self.site_report() {
            report.publish(&mut m);
        }
        m
    }

    /// The service-core-vs-app-cores PMU report, when
    /// [`NgmBuilder::profile`] was set and at least one measured thread
    /// has retired (each handle deposits its reading on drop; the service
    /// column appears after shutdown — grab
    /// [`NextGenMalloc::telemetry`] with `Arc::clone` first to read it
    /// then).
    pub fn pmu_report(&self) -> Option<PmuReport> {
        self.runtime.telemetry().pmu_report()
    }

    /// The allocation-site attribution snapshot, when
    /// [`NgmBuilder::site_sample`] enabled the profiler. Rendered at
    /// shutdown this is the leak report: surviving sites are leak
    /// suspects.
    pub fn site_report(&self) -> Option<SiteReport> {
        self.sites.as_ref().map(|s| s.report())
    }

    /// Stops the service thread and returns final statistics.
    ///
    /// All handles must be dropped or idle; posted frees are drained before
    /// the thread exits.
    pub fn shutdown(self) -> (ServiceStats, ngm_heap::HeapStats, StatsSnapshot) {
        let (svc, stats) = self.runtime.shutdown();
        (svc.service_stats(), svc.heap_stats(), stats)
    }
}

/// A per-thread endpoint to the allocator.
///
/// With `batch_size > 1` the handle keeps a per-size-class **magazine** of
/// pre-handed-out addresses: the common-case `alloc` is a pop from an
/// inline array (no round trip, no atomics — the handle is `!Sync`, so
/// this state is L1-resident and single-owner per §3.1.3), and one
/// [`AllocBatchReq`] refill round trip is paid every `batch_size` allocs.
/// Symmetrically, `flush_threshold > 1` buffers small-block frees and
/// flushes them as one batched post.
pub struct NgmHandle {
    client: ClientHandle<MallocService>,
    orphans: Arc<OrphanStack>,
    batch_size: u32,
    flush_threshold: u32,
    /// One magazine per size class, inline so no allocation ever happens
    /// on the fast path (crucial under the global-allocator adapter).
    magazines: [AddrBatch; NUM_CLASSES],
    /// Client-side buffer of small-block frees awaiting one batched post.
    free_buf: AddrBatch,
    /// Blocks currently stashed across all magazines (local mirror; the
    /// shared gauge is only updated at refill/drop boundaries).
    stash_total: i64,
    /// What this handle last published into the shared magazine gauge.
    published_occupancy: i64,
    /// Frees carried by each not-yet-trimmed post, oldest first; the last
    /// `pending_posts()` entries are exactly the undrained messages. Only
    /// maintained when `flush_threshold > 1` (otherwise every post is one
    /// free and the ring length is already the answer).
    post_weights: std::collections::VecDeque<u32>,
    /// The shared allocation-site profiler, when enabled.
    sites: Option<Arc<SiteProfiler>>,
}

impl NgmHandle {
    /// Allocates a block.
    ///
    /// Small layouts with batching enabled are served from the per-class
    /// magazine (refilled in one batched round trip when empty); anything
    /// else is a synchronous round trip to the service core.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the service reports failure and
    /// [`AllocError::ZeroSize`] for zero-sized layouts.
    #[track_caller]
    pub fn alloc(&mut self, layout: Layout) -> Result<NonNull<u8>, AllocError> {
        let caller = std::panic::Location::caller();
        let ptr = self.alloc_untracked(layout)?;
        if let Some(prof) = &self.sites {
            // Label formatting is deferred into the closure: unsampled
            // allocations never pay for it.
            prof.record_alloc(ptr.as_ptr() as usize, layout.size(), || caller.to_string());
        }
        Ok(ptr)
    }

    /// [`NgmHandle::alloc`] without site attribution (also the body both
    /// paths share).
    pub fn alloc_untracked(&mut self, layout: Layout) -> Result<NonNull<u8>, AllocError> {
        if layout.size() == 0 {
            return Err(AllocError::ZeroSize);
        }
        if self.batch_size > 1 {
            if let Some(class) = layout_to_class(layout.size(), layout.align()) {
                return self.alloc_batched(class, layout);
            }
        }
        let t0 = self.client.trace_ring().is_some().then(cycles_now);
        let addr = match self
            .client
            .call(MallocReq::One(AllocReq::from_layout(layout)))
        {
            MallocResp::One(addr) => addr,
            MallocResp::Batch(_) => unreachable!("One request answered with a batch"),
        };
        if let Some(t0) = t0 {
            let rtt = cycles_now().saturating_sub(t0);
            if let Some(ring) = self.client.trace_ring() {
                ring.push(TraceEventKind::Alloc, layout.size() as u64, rtt);
            }
        }
        NonNull::new(addr as *mut u8).ok_or(AllocError::OutOfMemory)
    }

    /// The magazine fast path: pop, refilling first when empty.
    fn alloc_batched(
        &mut self,
        class: SizeClass,
        layout: Layout,
    ) -> Result<NonNull<u8>, AllocError> {
        if self.magazines[class.0 as usize].is_empty() {
            self.refill(class)?;
        }
        let addr = self.magazines[class.0 as usize]
            .pop()
            .expect("magazine nonempty after refill");
        self.stash_total -= 1;
        if let Some(ring) = self.client.trace_ring() {
            ring.push(TraceEventKind::Alloc, layout.size() as u64, 0);
        }
        NonNull::new(addr as *mut u8).ok_or(AllocError::OutOfMemory)
    }

    /// One batched round trip to top up `class`'s magazine.
    fn refill(&mut self, class: SizeClass) -> Result<(), AllocError> {
        let resp = self.client.call_batched(MallocReq::Batch(AllocBatchReq {
            class,
            count: self.batch_size,
        }));
        let batch = match resp {
            MallocResp::Batch(b) => b,
            MallocResp::One(_) => unreachable!("Batch request answered with One"),
        };
        if batch.is_empty() {
            return Err(AllocError::OutOfMemory);
        }
        let got = batch.len();
        self.magazines[class.0 as usize] = batch;
        self.stash_total += got as i64;
        // Publish occupancy only here (and at drop) — pops since the last
        // refill are folded into this one delta, keeping the alloc fast
        // path free of shared-memory traffic.
        self.publish_occupancy();
        if let Some(ring) = self.client.trace_ring() {
            ring.push(TraceEventKind::Refill, u64::from(class.0), got as u64);
        }
        Ok(())
    }

    fn publish_occupancy(&mut self) {
        let delta = self.stash_total - self.published_occupancy;
        if delta != 0 {
            self.client.runtime_stats().add_magazine_occupancy(delta);
            self.published_occupancy = self.stash_total;
        }
    }

    /// Records the number of frees carried by the post about to be sent,
    /// trimming entries for messages the service has already drained.
    fn record_post_weight(&mut self, weight: u32) {
        if self.flush_threshold <= 1 {
            return;
        }
        while self.post_weights.len() > self.client.pending_posts() {
            self.post_weights.pop_front();
        }
        self.post_weights.push_back(weight);
    }

    /// Frees a block asynchronously; returns as soon as the message is in
    /// the ring (§3.1.2: free is off the critical path). With
    /// `flush_threshold > 1`, small-block frees are buffered in the handle
    /// and flushed as one batched post.
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`NgmHandle::alloc`] on the same
    /// [`NextGenMalloc`] instance with the same `layout`, and must not be
    /// used afterwards.
    pub unsafe fn dealloc(&mut self, ptr: NonNull<u8>, layout: Layout) {
        if let Some(prof) = &self.sites {
            prof.record_free(ptr.as_ptr() as usize);
        }
        if self.flush_threshold > 1 && layout_to_class(layout.size(), layout.align()).is_some() {
            self.free_buf.push(ptr.as_ptr() as usize);
            if self.free_buf.len() >= self.flush_threshold as usize {
                self.flush_frees();
            }
            if let Some(ring) = self.client.trace_ring() {
                ring.push(TraceEventKind::Free, layout.size() as u64, 0);
            }
            return;
        }
        self.record_post_weight(1);
        self.client.post(FreePost::One(FreeMsg {
            addr: ptr.as_ptr() as usize,
            size: layout.size(),
            align: layout.align(),
        }));
        if let Some(ring) = self.client.trace_ring() {
            ring.push(TraceEventKind::Free, layout.size() as u64, 0);
        }
    }

    /// Posts the buffered frees (if any) as one batched message. Called
    /// automatically when the buffer reaches `flush_threshold` and at
    /// handle drop; callers needing promptness bounds may flush manually.
    pub fn flush_frees(&mut self) {
        if self.free_buf.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.free_buf);
        self.record_post_weight(batch.len() as u32);
        self.client.post(FreePost::Batch(batch));
    }

    /// Frees a small block by pushing it onto the orphan stack (no handle
    /// state touched). Used by the global adapter in contexts where the
    /// ring may not be used.
    ///
    /// # Safety
    ///
    /// As [`NgmHandle::dealloc`], and the block must be a small-class block
    /// (under [`ngm_heap::SMALL_MAX`]).
    pub unsafe fn dealloc_orphan(&self, ptr: NonNull<u8>) {
        if let Some(prof) = &self.sites {
            prof.record_free(ptr.as_ptr() as usize);
        }
        // SAFETY: forwarded contract.
        unsafe { self.orphans.push(ptr) };
    }

    /// Frees this handle has accepted but the service has not yet applied:
    /// those buffered client-side awaiting a flush plus those carried by
    /// messages still in the ring.
    pub fn pending_frees(&self) -> usize {
        let buffered = self.free_buf.len();
        let in_ring = self.client.pending_posts();
        if self.flush_threshold <= 1 {
            // Degenerate mode: every ring message is exactly one free.
            return buffered + in_ring;
        }
        let carried: u64 = self
            .post_weights
            .iter()
            .rev()
            .take(in_ring)
            .map(|&w| u64::from(w))
            .sum();
        buffered + carried as usize
    }

    /// Blocks currently stashed in `class`'s magazine.
    pub fn magazine_len(&self, class: SizeClass) -> usize {
        self.magazines[class.0 as usize].len()
    }

    /// Blocks currently stashed across all magazines.
    pub fn magazine_occupancy(&self) -> usize {
        self.stash_total as usize
    }

    /// The addresses currently stashed in `class`'s magazine (test/
    /// diagnostic use).
    pub fn magazine_contents(&self, class: SizeClass) -> &[usize] {
        self.magazines[class.0 as usize].as_slice()
    }

    /// Small-block frees buffered client-side, not yet posted.
    pub fn buffered_frees(&self) -> usize {
        self.free_buf.len()
    }
}

impl Drop for NgmHandle {
    /// Returns everything in flight to the service: buffered frees are
    /// flushed, and every address still stashed in a magazine goes back
    /// via [`FreePost::MagazineReturn`], so shutdown accounting stays
    /// exact (`allocs == frees`, zero live blocks) with batching on.
    fn drop(&mut self) {
        self.flush_frees();
        for c in 0..NUM_CLASSES {
            if self.magazines[c].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut self.magazines[c]);
            self.stash_total -= batch.len() as i64;
            self.client.post(FreePost::MagazineReturn(batch));
        }
        self.publish_occupancy();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(n: usize) -> Layout {
        Layout::from_size_align(n, 8).unwrap()
    }

    #[test]
    fn alloc_free_roundtrip() {
        let ngm = NextGenMalloc::start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(256)).unwrap();
        // SAFETY: fresh 256-byte block.
        unsafe {
            std::ptr::write_bytes(p.as_ptr(), 0x42, 256);
            assert_eq!(*p.as_ptr().add(255), 0x42);
            h.dealloc(p, layout(256));
        }
        drop(h);
        let (svc, heap, _rt) = ngm.shutdown();
        assert_eq!(svc.allocs, 1);
        assert_eq!(svc.frees, 1);
        assert_eq!(heap.live_blocks, 0);
    }

    #[test]
    fn many_threads_allocate_concurrently() {
        let ngm = NextGenMalloc::start();
        let mut joins = Vec::new();
        for t in 0..4u8 {
            let mut h = ngm.handle();
            joins.push(std::thread::spawn(move || {
                let mut blocks = Vec::new();
                for i in 0..200usize {
                    let l = layout(16 + (i * 13) % 1024);
                    let p = h.alloc(l).unwrap();
                    // SAFETY: fresh block of at least that size.
                    unsafe { std::ptr::write_bytes(p.as_ptr(), t, 16) };
                    blocks.push((p, l));
                }
                for (p, l) in blocks {
                    // SAFETY: blocks from this handle's allocator.
                    unsafe { h.dealloc(p, l) };
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let (svc, heap, rt) = ngm.shutdown();
        assert_eq!(svc.allocs, 800);
        assert_eq!(svc.frees, 800);
        assert_eq!(heap.live_blocks, 0);
        assert_eq!(rt.clients_registered, 4);
    }

    #[test]
    fn zero_size_alloc_is_error() {
        let ngm = NextGenMalloc::start();
        let mut h = ngm.handle();
        assert_eq!(
            h.alloc(Layout::from_size_align(0, 1).unwrap()),
            Err(AllocError::ZeroSize)
        );
    }

    #[test]
    fn large_blocks_route_through_service() {
        let ngm = NextGenMalloc::start();
        let mut h = ngm.handle();
        let l = layout(1 << 20);
        let p = h.alloc(l).unwrap();
        // SAFETY: 1 MiB block.
        unsafe {
            *p.as_ptr().add((1 << 20) - 1) = 9;
            h.dealloc(p, l);
        }
        drop(h);
        let (_, heap, _) = ngm.shutdown();
        assert_eq!(heap.large_allocs, 0);
    }

    #[test]
    fn orphan_path_reclaims() {
        let ngm = NextGenMalloc::start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(64)).unwrap();
        // SAFETY: small live block relinquished to the orphan stack.
        unsafe { h.dealloc_orphan(p) };
        // Orphans are drained by the service's idle hook.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while ngm.orphans().drained() == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        drop(h);
        let (svc, heap, _) = ngm.shutdown();
        assert_eq!(svc.orphans_reclaimed, 1);
        assert_eq!(heap.live_blocks, 0);
    }

    #[test]
    fn latency_histograms_capture_alloc_and_free() {
        let ngm = NextGenMalloc::start();
        let mut h = ngm.handle();
        for _ in 0..32 {
            let p = h.alloc(layout(64)).unwrap();
            // SAFETY: block from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
        }
        let calls = ngm.telemetry().call_cycles.snapshot();
        let posts = ngm.telemetry().post_cycles.snapshot();
        assert_eq!(calls.count(), 32);
        assert_eq!(posts.count(), 32);
        assert!(calls.p50() <= calls.p99());
    }

    #[test]
    fn tracing_records_allocs_and_frees_with_sizes() {
        let ngm = NgmBuilder {
            trace_capacity: 256,
            ..NgmBuilder::default()
        }
        .start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(96)).unwrap();
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout(96)) };
        let drain = ngm.telemetry().drain_trace();
        let allocs: Vec<_> = drain
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Alloc)
            .collect();
        let frees: Vec<_> = drain
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Free)
            .collect();
        assert_eq!(allocs.len(), 1);
        assert_eq!(allocs[0].a, 96, "alloc event carries the size");
        assert_eq!(frees.len(), 1);
        assert_eq!(frees[0].a, 96, "free event carries the size");
    }

    #[test]
    fn metrics_include_heap_series_after_idle_publish() {
        let ngm = NextGenMalloc::start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(128)).unwrap();
        // The watch refreshes on the service's idle rounds.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while ngm.live_heap_stats().live_blocks == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let m = ngm.metrics();
        assert_eq!(m.get_gauge("ngm_heap_live_blocks"), Some(1));
        assert_eq!(m.get_counter("ngm_heap_allocs_total"), Some(1));
        assert!(m.get_histogram("ngm_call_cycles").is_some());
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout(128)) };
    }

    fn batched(batch_size: usize, flush_threshold: usize) -> NgmBuilder {
        NgmBuilder {
            batch_size,
            flush_threshold,
            ..NgmBuilder::default()
        }
    }

    #[test]
    fn batched_roundtrip_balances_at_shutdown() {
        let ngm = batched(16, 8).start();
        let mut h = ngm.handle();
        let mut blocks = Vec::new();
        for _ in 0..100 {
            let p = h.alloc(layout(64)).unwrap();
            // SAFETY: fresh 64-byte block.
            unsafe { std::ptr::write_bytes(p.as_ptr(), 0x5A, 64) };
            blocks.push(p);
        }
        for p in blocks {
            // SAFETY: blocks from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
        }
        drop(h);
        let (svc, heap, _) = ngm.shutdown();
        assert!(svc.batch_refills > 0, "magazine path was exercised");
        assert_eq!(svc.allocs, svc.frees, "every refilled block came back");
        assert_eq!(
            svc.allocs - svc.magazine_returned,
            100,
            "app-visible allocs separable from unused stash"
        );
        assert_eq!(heap.live_blocks, 0);
    }

    #[test]
    fn explicit_batch_size_one_degenerates_to_unbatched() {
        let ngm = batched(1, 1).start();
        let mut h = ngm.handle();
        for _ in 0..10 {
            let p = h.alloc(layout(64)).unwrap();
            // SAFETY: block from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
        }
        drop(h);
        let (svc, heap, _) = ngm.shutdown();
        assert_eq!(svc.allocs, 10);
        assert_eq!(svc.frees, 10);
        assert_eq!(svc.batch_refills, 0);
        assert_eq!(svc.magazine_returned, 0);
        assert_eq!(heap.live_blocks, 0);
    }

    #[test]
    fn pending_frees_includes_client_buffered_frees() {
        // Regression: pending_frees() used to report only ring posts, so
        // frees parked in the client flush buffer were invisible.
        let ngm = batched(8, 8).start();
        let mut h = ngm.handle();
        let a = h.alloc(layout(64)).unwrap();
        let b = h.alloc(layout(64)).unwrap();
        // SAFETY: blocks from this handle's allocator.
        unsafe {
            h.dealloc(a, layout(64));
            h.dealloc(b, layout(64));
        }
        assert_eq!(h.buffered_frees(), 2, "below threshold: nothing posted");
        assert_eq!(h.client.pending_posts(), 0);
        assert_eq!(h.pending_frees(), 2, "buffered frees must be counted");
        h.flush_frees();
        assert_eq!(h.buffered_frees(), 0);
    }

    #[test]
    fn magazine_occupancy_gauge_tracks_refills_and_drop() {
        let ngm = batched(16, 1).start();
        let mut h = ngm.handle();
        let p = h.alloc(layout(64)).unwrap();
        // The refill published its full batch before the pop.
        assert_eq!(ngm.runtime_stats().magazine_occupancy, 16);
        assert_eq!(h.magazine_occupancy(), 15, "one block went to the app");
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(p, layout(64)) };
        drop(h);
        assert_eq!(
            ngm.runtime_stats().magazine_occupancy,
            0,
            "drop returns the stash and zeroes the gauge"
        );
        let (svc, heap, _) = ngm.shutdown();
        assert_eq!(svc.allocs, svc.frees);
        assert_eq!(heap.live_blocks, 0);
    }

    #[test]
    fn refills_land_in_refill_histogram_not_call_histogram() {
        let ngm = batched(8, 1).start();
        let mut h = ngm.handle();
        let mut blocks = Vec::new();
        for _ in 0..16 {
            blocks.push(h.alloc(layout(64)).unwrap());
        }
        let refills = ngm.telemetry().refill_cycles.snapshot();
        let calls = ngm.telemetry().call_cycles.snapshot();
        assert_eq!(refills.count(), 2, "16 allocs at batch 8 = 2 refills");
        assert_eq!(calls.count(), 0, "no per-op round trips happened");
        for p in blocks {
            // SAFETY: blocks from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
        }
    }

    #[test]
    fn profiled_runtime_produces_core_attributed_pmu_report() {
        let ngm = NgmBuilder {
            profile: true,
            ..NgmBuilder::default()
        }
        .start();
        let mut h = ngm.handle();
        for _ in 0..32 {
            let p = h.alloc(layout(64)).unwrap();
            // SAFETY: block from this handle's allocator.
            unsafe { h.dealloc(p, layout(64)) };
        }
        drop(h);
        let telemetry = Arc::clone(ngm.telemetry());
        ngm.shutdown();
        let rep = telemetry.pmu_report().expect("profiling was on");
        let rendered = rep.render();
        assert!(rendered.contains("service/"), "{rendered}");
        assert!(rendered.contains("clients(1)/"), "{rendered}");
    }

    #[test]
    fn site_profiler_attributes_allocs_and_reports_leaks() {
        let ngm = NgmBuilder {
            site_sample: 1,
            ..NgmBuilder::default()
        }
        .start();
        let mut h = ngm.handle();
        let freed = h.alloc(layout(64)).unwrap(); // both sites in this fn
        let leaked = h.alloc(layout(128)).unwrap();
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(freed, layout(64)) };
        let report = ngm.site_report().expect("site profiling was on");
        assert_eq!(report.sites.len(), 2, "two distinct call sites");
        let surviving = report.surviving();
        assert_eq!(surviving.len(), 1, "only the unfreed site survives");
        assert_eq!(surviving[0].live_bytes, 128);
        assert!(
            surviving[0].label.contains("api.rs"),
            "track_caller points into this file: {}",
            surviving[0].label
        );
        // The report flows into the exporter as labeled series.
        let m = ngm.metrics();
        assert_eq!(m.labeled_gauge_count("ngm_site_live_bytes"), 2);
        assert_eq!(m.get_gauge("ngm_site_surviving_count"), Some(1));
        // Clean up so shutdown accounting stays exact.
        // SAFETY: block from this handle's allocator.
        unsafe { h.dealloc(leaked, layout(128)) };
        assert!(ngm.site_report().unwrap().leak_free());
    }

    #[test]
    fn leak_free_batched_run_has_zero_surviving_sites() {
        // Acceptance: round-trip through the exporter with a leak-free
        // run showing zero surviving sites — batching on, so magazine
        // pops and batched flushes are attributed correctly too.
        let ngm = NgmBuilder {
            site_sample: 1,
            ..batched(8, 8)
        }
        .start();
        let mut h = ngm.handle();
        let mut blocks = Vec::new();
        for i in 0..64usize {
            blocks.push((h.alloc(layout(16 + i % 128)).unwrap(), layout(16 + i % 128)));
        }
        for (p, l) in blocks {
            // SAFETY: blocks from this handle's allocator.
            unsafe { h.dealloc(p, l) };
        }
        let report = ngm.site_report().unwrap();
        assert!(report.leak_free(), "leak report:\n{}", report.render());
        let mut m = MetricsSnapshot::new();
        report.publish(&mut m);
        assert_eq!(m.get_gauge("ngm_site_surviving_count"), Some(0));
        assert!(m.to_prometheus_text().contains("ngm_site_peak_bytes"));
        drop(h);
        let (svc, heap, _) = ngm.shutdown();
        assert_eq!(svc.allocs, svc.frees);
        assert_eq!(heap.live_blocks, 0);
    }

    #[test]
    fn profiling_disabled_reports_are_absent() {
        let ngm = NextGenMalloc::start();
        assert!(ngm.pmu_report().is_none());
        assert!(ngm.site_report().is_none());
    }

    #[test]
    fn service_core_pin_recorded_when_possible() {
        let ngm = NgmBuilder {
            service_core: Some(0),
            ..NgmBuilder::default()
        }
        .start();
        // Give the service thread a moment to start and pin.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let stats = ngm.runtime_stats();
        assert_eq!(stats.pinned_core, Some(0));
    }
}
