//! The completion-based front-end: a per-thread [`SubmissionQueue`]
//! batching many in-flight allocations over one [`NgmHandle`], and
//! [`AllocFuture`] — a std `Future` any runtime can drive.
//!
//! The design is io_uring-shaped. Callers *submit* allocation tickets
//! (bounded by [`crate::NgmConfig::with_inflight_limit`]) and *complete*
//! them later. Submission itself attempts the allocation: a magazine
//! hit completes the ticket on the spot, so only genuinely-blocked
//! requests (class magazine dry, refill in flight) park. Parked tickets
//! wait in per-size-class queues and complete *out of order* across
//! classes — a refill landing for one class never holds up tickets
//! whose class has stock — while staying FIFO within a class so no
//! connection starves.
//!
//! [`SubmissionQueue::pump`] drives the handle's non-blocking
//! primitives — magazine pops, submitted-but-unawaited
//! [`crate::AllocBatchReq`] refills, single-push free posts — and never
//! blocks on a service thread. Waiting, when a caller wants it, happens
//! through the `Future` machinery: `AllocFuture::poll` stores its waker
//! *in the request slot* ([`ngm_offload::RequestSlot::register_waker`]),
//! and the service's existing RESPONSE release edge fires it. One woken
//! task's next poll pumps the whole queue, completing every satisfiable
//! ticket and waking its task, so a single slot waker fans out to
//! thousands of in-flight allocations per thread. Backpressure at the
//! in-flight ceiling is typed ([`NgmError::WouldBlock`]) for manual
//! drivers, or awaitable through [`SubmissionQueue::ready`] so tasks
//! park instead of spin.
//!
//! The queue is deliberately `!Send` (`Rc<RefCell<…>>`): like the handle
//! it wraps, it is a per-thread object, which is what keeps the fast
//! path free of atomics. Cross-thread wakes still work — `Waker` is
//! `Send`, and the service thread fires it without touching queue state.

use std::alloc::Layout;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::ptr::NonNull;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::api::NgmHandle;
use crate::config::NgmError;

/// Where one submitted allocation stands.
#[derive(Debug)]
enum Ticket {
    /// Submitted, no block yet; the waker is the last task that polled
    /// this ticket's future (woken when the ticket completes).
    Pending {
        /// The requested layout.
        layout: Layout,
        /// Waker of the last poller, if the future has been polled.
        waker: Option<Waker>,
    },
    /// Completed; the result waits for the future to collect it. The
    /// layout rides along so a cancelled-after-completion ticket can
    /// free its block without the (gone) future's help.
    Ready {
        /// The allocation outcome.
        result: Result<NonNull<u8>, NgmError>,
        /// The layout the block was allocated with.
        layout: Layout,
    },
    /// Collected (or never submitted); the ticket id is free for reuse.
    /// A collected future marks itself (`AllocFuture::collected`) and
    /// never touches the table again, so the id recycles immediately.
    Vacant,
}

/// Shared state behind a [`SubmissionQueue`] and its futures.
struct SqInner {
    handle: NgmHandle,
    /// Ticket table, indexed by the id carried in [`AllocFuture`].
    tickets: Vec<Ticket>,
    /// Vacant ticket ids, reused before the table grows.
    free_ids: Vec<usize>,
    /// Parked ticket ids by `(size, align)`, each queue in submission
    /// order: completion is FIFO within a class, out of order across
    /// classes.
    pending: BTreeMap<(usize, usize), VecDeque<usize>>,
    /// Uncollected tickets (`Pending` + `Ready`): the resource count the
    /// in-flight ceiling bounds.
    active: usize,
    /// Frees the ring refused; retried every pump, flushed at drop.
    deferred_frees: VecDeque<(usize, Layout)>,
    /// The last class scan completed nothing and no new submissions
    /// arrived since: until a response lands (`nb_pump` collects
    /// something), rescanning cannot complete anything either, so pump
    /// skips it. Keeps the parked-task poll path at a few atomic loads.
    scan_idle: bool,
    /// Submissions since the last depth-histogram sample.
    depth_tick: u32,
    /// Tasks parked on [`SubmissionQueue::ready`], woken one per freed
    /// capacity unit.
    capacity_waiters: VecDeque<Waker>,
    /// Ceiling on [`SqInner::in_flight`].
    limit: usize,
}

impl SqInner {
    /// Drives everything drivable without blocking: collects landed
    /// refill/alloc responses, satisfies parked tickets (FIFO per
    /// class), retries deferred frees, and wakes every task whose
    /// ticket completed. Returns how many tickets completed.
    fn pump(&mut self) -> usize {
        let landed = self.handle.nb_pump();
        if landed == 0 && self.scan_idle {
            // Nothing arrived since the last fruitless scan: the class
            // queues cannot progress. (The slot waker stays armed — it
            // is only consumed when a response is served, which the next
            // nb_pump observes as `landed > 0`.)
            self.retry_deferred_frees();
            return 0;
        }
        let mut completed = 0;
        for queue in self.pending.values_mut() {
            while let Some(&id) = queue.front() {
                let Ticket::Pending { layout, .. } = &self.tickets[id] else {
                    // Cancelled (future dropped): discard the queue
                    // entry. The id becomes reusable only now — while it
                    // sat in the queue, reuse would have double-enqueued
                    // it.
                    queue.pop_front();
                    self.free_ids.push(id);
                    continue;
                };
                let layout = *layout;
                match self.handle.try_alloc(layout) {
                    // This class cannot progress (refill in flight);
                    // move on — other classes may have stock.
                    Err(NgmError::WouldBlock) => break,
                    result => {
                        queue.pop_front();
                        let prev = std::mem::replace(
                            &mut self.tickets[id],
                            Ticket::Ready { result, layout },
                        );
                        completed += 1;
                        if let Ticket::Pending { waker: Some(w), .. } = prev {
                            w.wake();
                        }
                    }
                }
            }
        }
        self.pending.retain(|_, q| !q.is_empty());
        // Classes that stayed blocked may have had *fresh* refills
        // submitted just now (the serve edge consumed any previously
        // registered waker), and the tasks interested in them are
        // parked. Re-arm the slot edge with a parked ticket's waker so
        // the next response wakes someone whose poll pumps for everyone.
        if let Some(w) = self
            .pending
            .values()
            .flat_map(|q| q.iter())
            .find_map(|&id| match &self.tickets[id] {
                Ticket::Pending { waker: Some(w), .. } => Some(w.clone()),
                _ => None,
            })
        {
            self.handle.register_waker(&w);
        }
        self.scan_idle = completed == 0;
        self.retry_deferred_frees();
        completed
    }

    /// Frees the ring refused earlier: one push attempt each, back of
    /// the line on refusal. Each drained free releases capacity.
    fn retry_deferred_frees(&mut self) {
        for _ in 0..self.deferred_frees.len() {
            let Some((addr, layout)) = self.deferred_frees.pop_front() else {
                break;
            };
            let ptr = NonNull::new(addr as *mut u8).expect("deferred free of null");
            // SAFETY: ownership was transferred to the queue when
            // `SubmissionQueue::free` accepted the block.
            match unsafe { self.handle.try_dealloc(ptr, layout) } {
                Ok(()) => self.release_capacity(),
                Err(_) => {
                    self.deferred_frees.push_back((addr, layout));
                    break; // the ring is full; later entries would bounce too
                }
            }
        }
    }

    fn in_flight(&self) -> usize {
        self.active + self.deferred_frees.len()
    }

    /// One unit of in-flight room came free: unpark one waiter.
    fn release_capacity(&mut self) {
        if let Some(w) = self.capacity_waiters.pop_front() {
            w.wake();
        }
    }

    fn take_id(&mut self) -> usize {
        match self.free_ids.pop() {
            Some(id) => id,
            None => {
                self.tickets.push(Ticket::Vacant);
                self.tickets.len() - 1
            }
        }
    }
}

/// A per-thread submission/completion queue over an [`NgmHandle`].
///
/// Built with [`SubmissionQueue::new`]; cheap to clone (futures hold a
/// clone). See the [module docs](self) for the completion model.
pub struct SubmissionQueue {
    inner: Rc<RefCell<SqInner>>,
}

impl Clone for SubmissionQueue {
    fn clone(&self) -> Self {
        SubmissionQueue {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl SubmissionQueue {
    /// Wraps `handle` in a submission queue. The in-flight ceiling is
    /// the tier's [`crate::NgmConfig::with_inflight_limit`].
    pub fn new(handle: NgmHandle) -> Self {
        let limit = handle.inflight_limit();
        SubmissionQueue {
            inner: Rc::new(RefCell::new(SqInner {
                handle,
                tickets: Vec::new(),
                free_ids: Vec::new(),
                pending: BTreeMap::new(),
                active: 0,
                deferred_frees: VecDeque::new(),
                scan_idle: false,
                depth_tick: 0,
                capacity_waiters: VecDeque::new(),
                limit,
            })),
        }
    }

    /// Submits one allocation and returns the future that completes it.
    ///
    /// The submission *attempts* the allocation: on a magazine hit the
    /// ticket is born completed and the future resolves on its first
    /// poll; otherwise the refill rides out-of-band and the ticket
    /// parks in its class queue.
    ///
    /// # Errors
    ///
    /// [`NgmError::WouldBlock`] when the queue is at its in-flight
    /// ceiling — complete something (await a future, [`pump`], or park
    /// on [`ready`]) and resubmit. Other errors are the handle's own
    /// (zero-size layouts, exhaustion) and consume no capacity.
    ///
    /// [`pump`]: SubmissionQueue::pump
    /// [`ready`]: SubmissionQueue::ready
    pub fn alloc(&self, layout: Layout) -> Result<AllocFuture, NgmError> {
        let mut inner = self.inner.borrow_mut();
        if inner.in_flight() >= inner.limit {
            // One pump before refusing: completions may free room.
            inner.pump();
            if inner.in_flight() >= inner.limit {
                return Err(NgmError::WouldBlock);
            }
        }
        inner.depth_tick = inner.depth_tick.wrapping_add(1);
        if inner.depth_tick.is_multiple_of(32) {
            inner.handle.record_submit_depth(inner.active as u64);
        }
        let ticket = match inner.handle.try_alloc(layout) {
            Ok(p) => Some(Ok(p)),
            Err(NgmError::WouldBlock) => None,
            Err(e) => return Err(e),
        };
        // This try may have absorbed a landed response for another class
        // (the handle polls opportunistically), so a previously fruitless
        // scan may find work now.
        inner.scan_idle = false;
        let id = inner.take_id();
        match ticket {
            Some(result) => inner.tickets[id] = Ticket::Ready { result, layout },
            None => {
                inner.tickets[id] = Ticket::Pending {
                    layout,
                    waker: None,
                };
                inner
                    .pending
                    .entry((layout.size(), layout.align()))
                    .or_default()
                    .push_back(id);
            }
        }
        inner.active += 1;
        drop(inner);
        Ok(AllocFuture {
            sq: self.clone(),
            id,
            collected: false,
        })
    }

    /// Hands a block back. Never blocks: a refused ring push parks the
    /// free in the queue (retried every pump, flushed at drop), so
    /// ownership always transfers — unlike [`NgmHandle::try_dealloc`],
    /// this cannot fail with `WouldBlock` unless the queue itself is at
    /// its ceiling.
    ///
    /// # Errors
    ///
    /// [`NgmError::WouldBlock`] when the queue is at its in-flight
    /// ceiling; the caller still owns `ptr`.
    ///
    /// # Safety
    ///
    /// As [`NgmHandle::dealloc`]; on `Ok` the block must not be used
    /// again (even though the underlying free may still be in flight).
    pub unsafe fn free(&self, ptr: NonNull<u8>, layout: Layout) -> Result<(), NgmError> {
        let mut inner = self.inner.borrow_mut();
        // SAFETY: forwarded contract.
        match unsafe { inner.handle.try_dealloc(ptr, layout) } {
            Ok(()) => Ok(()),
            Err(NgmError::WouldBlock) => {
                if inner.in_flight() >= inner.limit {
                    return Err(NgmError::WouldBlock);
                }
                inner
                    .deferred_frees
                    .push_back((ptr.as_ptr() as usize, layout));
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// A future that resolves when the queue is below its in-flight
    /// ceiling — the awaitable form of the [`alloc`]/[`free`]
    /// `WouldBlock`, so tasks park instead of spinning on resubmission.
    ///
    /// Readiness is advisory: on a single-threaded executor the caller
    /// can submit immediately after awaiting; with interleaving, the
    /// next submission may still bounce and should re-await.
    ///
    /// [`alloc`]: SubmissionQueue::alloc
    /// [`free`]: SubmissionQueue::free
    pub fn ready(&self) -> ReadyFuture {
        ReadyFuture { sq: self.clone() }
    }

    /// Drives all in-flight work one step without blocking; returns how
    /// many tickets completed. Useful outside an async runtime (retry
    /// loops around [`NgmHandle::try_alloc`]-style code) — futures pump
    /// implicitly on poll.
    pub fn pump(&self) -> usize {
        self.inner.borrow_mut().pump()
    }

    /// Tickets submitted and not yet collected, plus frees parked for
    /// retry.
    pub fn in_flight(&self) -> usize {
        self.inner.borrow().in_flight()
    }

    /// Runs `f` against the wrapped handle (stats, routing inspection).
    pub fn with_handle<T>(&self, f: impl FnOnce(&mut NgmHandle) -> T) -> T {
        f(&mut self.inner.borrow_mut().handle)
    }
}

impl Drop for SqInner {
    /// Blocks briefly if needed to hand every parked free back to the
    /// tier (`flush` semantics at the end of the queue's life), so
    /// `allocs == frees` holds at shutdown. Outstanding *tickets* need
    /// no work here: their futures never allocated anything.
    fn drop(&mut self) {
        while let Some((addr, layout)) = self.deferred_frees.pop_front() {
            if let Some(ptr) = NonNull::new(addr as *mut u8) {
                // SAFETY: the queue owns these blocks (see `free`); the
                // blocking path always accepts.
                unsafe { self.handle.dealloc(ptr, layout) };
            }
        }
    }
}

/// One in-flight allocation: completes with the block (or a typed
/// error) when the service's response lands.
///
/// Dropping the future before completion cancels the ticket; a block
/// that nonetheless arrives for it is freed back by the queue, so
/// cancellation never leaks.
pub struct AllocFuture {
    sq: SubmissionQueue,
    id: usize,
    /// Result already handed out: `Drop` has nothing to do — not even a
    /// `RefCell` borrow — and the id has been recycled.
    collected: bool,
}

impl Future for AllocFuture {
    type Output = Result<NonNull<u8>, NgmError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut inner = this.sq.inner.borrow_mut();
        if matches!(inner.tickets[this.id], Ticket::Pending { .. }) {
            inner.pump();
        }
        match &mut inner.tickets[this.id] {
            Ticket::Ready { .. } => {
                let Ticket::Ready { result, .. } =
                    std::mem::replace(&mut inner.tickets[this.id], Ticket::Vacant)
                else {
                    unreachable!()
                };
                // A `Ready` ticket sits in no class queue (completed
                // tickets are popped when they complete), so the id is
                // safe to reuse right away.
                inner.free_ids.push(this.id);
                inner.active -= 1;
                inner.release_capacity();
                this.collected = true;
                Poll::Ready(result)
            }
            Ticket::Pending { waker, .. } => {
                // Remember this task (pump wakes it on completion), and
                // arm the slot edge: the service's RESPONSE release fires
                // this waker, whose poll pumps the queue for everyone.
                match waker {
                    Some(w) if w.will_wake(cx.waker()) => {}
                    w => *w = Some(cx.waker().clone()),
                }
                inner.handle.register_waker(cx.waker());
                Poll::Pending
            }
            Ticket::Vacant => {
                unreachable!("future polled after completion")
            }
        }
    }
}

impl Drop for AllocFuture {
    fn drop(&mut self) {
        if self.collected {
            return; // result handed out, id recycled — nothing to undo
        }
        let Ok(mut inner) = self.sq.inner.try_borrow_mut() else {
            return; // queue itself is being dropped; tickets die with it
        };
        match std::mem::replace(&mut inner.tickets[self.id], Ticket::Vacant) {
            Ticket::Ready {
                result: Ok(ptr),
                layout,
            } => {
                // Completed but never collected: free the block back so
                // cancellation never leaks. The blocking dealloc always
                // accepts. This id never entered (or already left) the
                // pending queues.
                // SAFETY: the block was allocated with `layout` by the
                // wrapped handle's tier and nothing else holds it.
                unsafe { inner.handle.dealloc(ptr, layout) };
                inner.free_ids.push(self.id);
                inner.active -= 1;
                inner.release_capacity();
            }
            Ticket::Ready { .. } => {
                inner.free_ids.push(self.id);
                inner.active -= 1;
                inner.release_capacity();
            }
            Ticket::Pending { .. } => {
                // Still parked: the pump discards the class-queue entry
                // when it reaches it and recycles the id there — pushing
                // it to `free_ids` now would let a new ticket alias the
                // stale queue entry. The capacity is released here.
                inner.active -= 1;
                inner.release_capacity();
            }
            Ticket::Vacant => {}
        }
    }
}

/// Future returned by [`SubmissionQueue::ready`]: resolves when the
/// queue has in-flight room.
pub struct ReadyFuture {
    sq: SubmissionQueue,
}

impl Future for ReadyFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.sq.inner.borrow_mut();
        if inner.in_flight() < inner.limit {
            return Poll::Ready(());
        }
        // Full: one pump may collect room (deferred frees drain).
        inner.pump();
        if inner.in_flight() < inner.limit {
            return Poll::Ready(());
        }
        inner.capacity_waiters.push_back(cx.waker().clone());
        if inner.active == 0 {
            // Every in-flight unit is a deferred free: no ticket will
            // complete or be collected to unpark us, and the ring drains
            // on the service's schedule with no client-visible edge —
            // yield and re-poll.
            cx.waker().wake_by_ref();
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NgmConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::task::Wake;

    fn layout(n: usize) -> Layout {
        Layout::from_size_align(n, 8).unwrap()
    }

    struct Flag(AtomicUsize);
    impl Wake for Flag {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Minimal single-future executor: poll, and between polls spin on
    /// the wake counter (the slot waker fires from the service thread).
    fn block_on<F: Future>(mut fut: F) -> F::Output {
        let flag = Arc::new(Flag(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&flag));
        let mut cx = Context::from_waker(&waker);
        // SAFETY: `fut` is stack-pinned for the whole call and never
        // moved after this point.
        let mut fut = unsafe { Pin::new_unchecked(&mut fut) };
        loop {
            let seen = flag.0.load(Ordering::SeqCst);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => {
                    while flag.0.load(Ordering::SeqCst) == seen {
                        std::hint::spin_loop();
                    }
                }
            }
        }
    }

    #[test]
    fn future_completes_and_ledger_balances() {
        let ngm = NgmConfig::new().with_batch(8, 4).build().unwrap();
        let sq = SubmissionQueue::new(ngm.handle());
        let mut blocks = Vec::new();
        for _ in 0..50 {
            let ptr = block_on(sq.alloc(layout(64)).unwrap()).unwrap();
            // SAFETY: fresh 64-byte block.
            unsafe { std::ptr::write_bytes(ptr.as_ptr(), 0x6B, 64) };
            blocks.push(ptr);
        }
        for ptr in blocks {
            // SAFETY: blocks from this queue's tier, relinquished here.
            unsafe { sq.free(ptr, layout(64)).unwrap() };
        }
        drop(sq);
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, down.service.frees);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn many_inflight_futures_complete_out_of_order_polls() {
        let ngm = NgmConfig::new()
            .with_batch(8, 4)
            .with_inflight_limit(512)
            .build()
            .unwrap();
        let sq = SubmissionQueue::new(ngm.handle());
        let futures: Vec<AllocFuture> = (0..200).map(|_| sq.alloc(layout(32)).unwrap()).collect();
        assert_eq!(sq.in_flight(), 200);
        // Drive them newest-first: completion is FIFO within the class,
        // so every future must resolve regardless of poll order.
        for fut in futures.into_iter().rev() {
            let ptr = block_on(fut).unwrap();
            // SAFETY: block from this queue's tier.
            unsafe { sq.free(ptr, layout(32)).unwrap() };
        }
        assert_eq!(sq.with_handle(|h| h.nb_inflight()), 0);
        drop(sq);
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, down.service.frees);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn classes_complete_out_of_order_across_a_blocked_one() {
        let ngm = NgmConfig::new()
            .with_batch(8, 4)
            .with_inflight_limit(512)
            .build()
            .unwrap();
        let sq = SubmissionQueue::new(ngm.handle());
        // Warm class 64 so its allocations complete from the magazine
        // even while class 32's first refill is still in flight.
        let warm = block_on(sq.alloc(layout(64)).unwrap()).unwrap();
        // SAFETY: block from this queue's tier.
        unsafe { sq.free(warm, layout(64)).unwrap() };
        let cold = sq.alloc(layout(32)).unwrap();
        let hot = sq.alloc(layout(64)).unwrap();
        // The warm-class future must resolve regardless of the cold
        // class parked ahead of it in submission order.
        let p64 = block_on(hot).unwrap();
        let p32 = block_on(cold).unwrap();
        // SAFETY: blocks from this queue's tier.
        unsafe {
            sq.free(p64, layout(64)).unwrap();
            sq.free(p32, layout(32)).unwrap();
        }
        drop(sq);
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, down.service.frees);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn inflight_limit_backpressures_with_typed_wouldblock() {
        let ngm = NgmConfig::new()
            .with_batch(8, 4)
            .with_inflight_limit(4)
            .build()
            .unwrap();
        let sq = SubmissionQueue::new(ngm.handle());
        let mut held = Vec::new();
        let mut bounced = false;
        // Uncollected tickets pin capacity whether or not they complete,
        // so submitting without ever polling must bounce at the ceiling.
        for _ in 0..64 {
            match sq.alloc(layout(16)) {
                Ok(f) => held.push(f),
                Err(NgmError::WouldBlock) => {
                    bounced = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(bounced, "ceiling of 4 must refuse the fifth submission");
        assert!(held.len() <= 4);
        for fut in held {
            let ptr = block_on(fut).unwrap();
            // SAFETY: block from this queue's tier.
            unsafe { sq.free(ptr, layout(16)).unwrap() };
        }
        drop(sq);
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, down.service.frees);
    }

    #[test]
    fn ready_future_resolves_once_capacity_frees() {
        let ngm = NgmConfig::new()
            .with_batch(8, 4)
            .with_inflight_limit(2)
            .build()
            .unwrap();
        let sq = SubmissionQueue::new(ngm.handle());
        let a = sq.alloc(layout(16)).unwrap();
        let b = sq.alloc(layout(16)).unwrap();
        assert!(matches!(sq.alloc(layout(16)), Err(NgmError::WouldBlock)));
        // At the ceiling: ready() must park (not spin-resolve)…
        let (pa, pb) = {
            let flag = Arc::new(Flag(AtomicUsize::new(0)));
            let waker = Waker::from(Arc::clone(&flag));
            let mut cx = Context::from_waker(&waker);
            let mut ready = sq.ready();
            // SAFETY: stack-pinned for the whole block.
            let mut ready = unsafe { Pin::new_unchecked(&mut ready) };
            assert!(ready.as_mut().poll(&mut cx).is_pending());
            // …and resolve after a future collects (capacity released).
            let pa = block_on(a).unwrap();
            assert!(flag.0.load(Ordering::SeqCst) > 0, "waiter woken");
            assert!(ready.as_mut().poll(&mut cx).is_ready());
            (pa, block_on(b).unwrap())
        };
        // SAFETY: blocks from this queue's tier.
        unsafe {
            sq.free(pa, layout(16)).unwrap();
            sq.free(pb, layout(16)).unwrap();
        }
        drop(sq);
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, down.service.frees);
    }

    #[test]
    fn cancelled_future_never_leaks() {
        let ngm = NgmConfig::new().with_batch(8, 4).build().unwrap();
        let sq = SubmissionQueue::new(ngm.handle());
        // Cancel an unpolled cold-class submission: whether it parked
        // (discarded at the next pump) or completed at submit (block
        // freed back in Drop), nothing may leak.
        drop(sq.alloc(layout(64)).unwrap());
        // Cancel a certainly-completed ticket: warm the class so the
        // submission completes on the spot, then drop the future.
        let warm = block_on(sq.alloc(layout(64)).unwrap()).unwrap();
        // SAFETY: block from this queue's tier.
        unsafe { sq.free(warm, layout(64)).unwrap() };
        drop(sq.alloc(layout(64)).unwrap());
        sq.pump();
        drop(sq);
        let down = ngm.shutdown();
        assert_eq!(down.service.allocs, down.service.frees);
        assert_eq!(down.heap.live_blocks, 0);
    }

    #[test]
    fn wouldblock_total_and_submit_depth_are_exported() {
        let ngm = NgmConfig::new()
            .with_batch(4, 2)
            .with_profile(true)
            .build()
            .unwrap();
        let sq = SubmissionQueue::new(ngm.handle());
        let mut held = Vec::new();
        for _ in 0..32 {
            if let Ok(f) = sq.alloc(layout(48)) {
                held.push(f);
            }
        }
        for fut in held {
            let ptr = block_on(fut).unwrap();
            // SAFETY: block from this queue's tier.
            unsafe { sq.free(ptr, layout(48)).unwrap() };
        }
        drop(sq);
        let text = ngm.metrics().to_prometheus_text();
        assert!(text.contains("ngm_inflight"), "{text}");
        assert!(text.contains("ngm_wouldblock_total"), "{text}");
        assert!(text.contains("ngm_submit_depth"), "{text}");
        ngm.shutdown();
    }
}
