//! The live observer: an HTTP endpoint plus a continuous flight
//! recorder, both riding the metrics-scrape tick.
//!
//! [`Ngm::serve_observer`] starts two background pieces:
//!
//! * an [`HttpServer`] (dependency-free, [`ngm_telemetry::server`])
//!   answering `GET /metrics`, `/heat`, `/spans`, `/blackbox`,
//!   `/healthz`, and `/readyz`;
//! * a scrape thread that drives [`Ngm::heat_report`] every
//!   `scrape_interval` (doubling as the elastic controller's tick, like
//!   [`Ngm::autoscaler`]) and, when a `record_path` is configured,
//!   appends one [`ngm_telemetry::recorder::RecordFrame`] per scrape to
//!   a size-rotated JSONL recording ([`FlightRecorder`]).
//!
//! Neither piece touches the allocation hot path: all sampling happens
//! on the observer's own threads against counters that already exist,
//! and the cycles those threads spend are themselves accounted
//! (`ngm_obs_scrape_cycles_total`) so the `repro obs` experiment can
//! price the observability tax.
//!
//! Frames are assembled under the controller mutex
//! ([`Ngm::observer_frame`]), the same lock every scale transition
//! stamps its trace event under — so a recording's shard-count timeline
//! can be cross-checked against the `Scale` event stream exactly.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use ngm_telemetry::clock::cycles_now;
use ngm_telemetry::export::json_str;
use ngm_telemetry::recorder::FlightRecorder;
use ngm_telemetry::server::{HttpServer, Response, Router};
use ngm_telemetry::span::{reconstruct, SpanRecord};

use crate::api::Ngm;
use crate::config::ObserverConfig;
use crate::heat::ShardLifecycle;

/// How often the scrape thread re-checks its stop flag while sleeping
/// between scrapes, so [`Observer::stop`] returns promptly even under a
/// long `scrape_interval`.
const STOP_POLL: Duration = Duration::from_millis(10);

/// What `/readyz` reports about the tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Readiness {
    /// At least one shard is serving and nothing looks wedged.
    Ready,
    /// No shard is serving (e.g. every slot is still dormant).
    NotReady(String),
    /// Serving, but impaired: a serving shard's thread has exited
    /// (wedged), or a drain has outlived `drain_patience`.
    Degraded(String),
}

impl Readiness {
    /// Whether this readiness maps to HTTP 200.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        matches!(self, Readiness::Ready)
    }
}

/// Pure readiness derivation, split out from the endpoint so tests can
/// exercise every edge (all-dormant, wedged, overdue drain) without a
/// live tier.
#[must_use]
pub fn derive_readiness(
    states: &[ShardLifecycle],
    wedged: &[usize],
    drain_overdue: bool,
) -> Readiness {
    if !states.contains(&ShardLifecycle::Serving) {
        return Readiness::NotReady("no serving shards".into());
    }
    if !wedged.is_empty() {
        let list: Vec<String> = wedged.iter().map(ToString::to_string).collect();
        return Readiness::Degraded(format!("wedged serving shards: {}", list.join(",")));
    }
    if drain_overdue {
        return Readiness::Degraded("drain past drain_patience".into());
    }
    Readiness::Ready
}

/// Guard for the live observer: the HTTP server plus the scrape/record
/// thread. Both stop on [`Observer::stop`] or drop. Holds only a weak
/// reference to the tier, so dropping the `Ngm` (or calling
/// [`Ngm::shutdown`] after stopping the observer) is never blocked by
/// it; endpoints answer 503 once the tier is gone.
#[derive(Debug)]
pub struct Observer {
    server: Option<HttpServer>,
    stop: Arc<AtomicBool>,
    scraper: Option<std::thread::JoinHandle<()>>,
}

impl Observer {
    /// The bound address (resolves port 0 to the ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.server
            .as_ref()
            .map(HttpServer::addr)
            .expect("server present until stop")
    }

    /// Stops the scrape thread and the HTTP server, joining both.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.scraper.take() {
            let _ = t.join();
        }
        if let Some(s) = self.server.take() {
            s.stop();
        }
    }
}

impl Drop for Observer {
    fn drop(&mut self) {
        self.halt();
    }
}

impl Ngm {
    /// Starts the observer configured via [`NgmConfig::with_observer`],
    /// if one was configured and not already started. Returns `Ok(None)`
    /// when the config carries no observer (or it was already taken).
    ///
    /// # Errors
    ///
    /// Propagates bind/create failures from [`Ngm::serve_observer`].
    pub fn start_observer(self: &Arc<Self>) -> io::Result<Option<Observer>> {
        match self.take_observer_cfg() {
            Some(cfg) => self.serve_observer(cfg).map(Some),
            None => Ok(None),
        }
    }

    /// Binds the observer endpoint and starts the scrape/record thread
    /// with an explicit config (use [`Ngm::start_observer`] for the one
    /// stashed in [`crate::NgmConfig`]).
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or the recording file
    /// cannot be created.
    pub fn serve_observer(self: &Arc<Self>, cfg: ObserverConfig) -> io::Result<Observer> {
        let recorder = match &cfg.record_path {
            Some(path) => Some(FlightRecorder::create(path, cfg.record_rotate_bytes)?),
            None => None,
        };
        let router = build_router(Arc::downgrade(self));
        let server = HttpServer::start(cfg.addr.as_str(), router)?;
        let stop = Arc::new(AtomicBool::new(false));
        let scraper = spawn_scraper(
            Arc::downgrade(self),
            Arc::clone(&stop),
            cfg.scrape_interval.max(Duration::from_millis(1)),
            recorder,
        )?;
        Ok(Observer {
            server: Some(server),
            stop,
            scraper: Some(scraper),
        })
    }
}

/// The scrape thread: one [`Ngm::heat_report`] (heat frames + controller
/// tick) and optionally one recorded frame per interval, metering the
/// frame-assembly and record cycles into `ngm_obs_scrape_cycles_total`.
fn spawn_scraper(
    weak: Weak<Ngm>,
    stop: Arc<AtomicBool>,
    interval: Duration,
    mut recorder: Option<FlightRecorder>,
) -> io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name("ngm-observer".into())
        .spawn(move || loop {
            let mut slept = Duration::ZERO;
            while slept < interval {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                let step = STOP_POLL.min(interval - slept);
                std::thread::sleep(step);
                slept += step;
            }
            if stop.load(Ordering::Acquire) {
                return;
            }
            let Some(ngm) = weak.upgrade() else { return };
            // The controller tick is regular tier duty (an autoscaler
            // would run it regardless); only the frame assembly and the
            // recorder append are metered as observability tax.
            let _ = ngm.heat_report();
            let t0 = cycles_now();
            let frame = ngm.observer_frame();
            if let Some(rec) = recorder.as_mut() {
                let _ = rec.append(&frame);
            }
            ngm.obs_state()
                .record_obs_cycles(cycles_now().saturating_sub(t0));
        })
}

/// Routes every endpoint over a weak tier reference: each handler
/// upgrades per request and answers 503 once the tier is gone.
fn build_router(weak: Weak<Ngm>) -> Router {
    let w = |weak: &Weak<Ngm>| Weak::clone(weak);
    let metrics = w(&weak);
    let heat = w(&weak);
    let spans = w(&weak);
    let blackbox = w(&weak);
    let healthz = w(&weak);
    let readyz = w(&weak);
    Router::new()
        .route("/metrics", move || {
            with_tier(&metrics, |ngm| {
                let t0 = cycles_now();
                let body = ngm.metrics().to_prometheus_text();
                ngm.obs_state()
                    .record_obs_cycles(cycles_now().saturating_sub(t0));
                Response::ok_text(body)
            })
        })
        .route("/heat", move || {
            with_tier(&heat, |ngm| Response::ok_json(heat_json(ngm)))
        })
        .route("/spans", move || {
            with_tier(&spans, |ngm| Response::ok_json(spans_json(ngm)))
        })
        .route("/blackbox", move || {
            with_tier(&blackbox, |ngm| Response::ok_json(blackbox_json(ngm)))
        })
        .route("/healthz", move || {
            with_tier(&healthz, |_| Response::ok_text("ok\n"))
        })
        .route("/readyz", move || {
            with_tier(&readyz, |ngm| {
                let readiness = derive_readiness(
                    &ngm.shard_states(),
                    &ngm.wedged_shards(),
                    ngm.drain_overdue(),
                );
                match readiness {
                    Readiness::Ready => Response::ok_text("ready\n"),
                    Readiness::NotReady(why) => {
                        Response::unavailable(format!("not ready: {why}\n"))
                    }
                    Readiness::Degraded(why) => Response::unavailable(format!("degraded: {why}\n")),
                }
            })
        })
}

fn with_tier(weak: &Weak<Ngm>, f: impl FnOnce(&Ngm) -> Response) -> Response {
    match weak.upgrade() {
        Some(ngm) => f(&ngm),
        None => Response::unavailable("tier gone\n"),
    }
}

/// `/heat`: the raw per-shard heat-window time series (scalar fields;
/// phase histograms stay on `/metrics`).
fn heat_json(ngm: &Ngm) -> String {
    let mut out = String::from("{\"shards\":[");
    for s in 0..ngm.num_shards() {
        if s > 0 {
            out.push(',');
        }
        let state = ngm.obs_state().state(s).label();
        out.push_str(&format!(
            "{{\"shard\":{s},\"state\":{},\"frames\":[",
            json_str(state)
        ));
        for (i, f) in ngm.obs_state().frames(s).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tsc\":{},\"ring\":{},\"calls\":{},\"deadlines\":{},\
                 \"retries\":{},\"fallbacks\":{}}}",
                f.tsc, f.ring_occupancy, f.calls, f.deadlines, f.retries, f.fallbacks
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// How many reconstructed spans `/spans` returns (newest by start tsc).
const SPANS_LAST_K: usize = 64;

/// `/spans`: the last-K request spans reconstructed from every shard's
/// trace ring (empty unless `trace_capacity > 0`).
fn spans_json(ngm: &Ngm) -> String {
    let mut spans: Vec<SpanRecord> = Vec::new();
    for s in 0..ngm.num_shards() {
        let events = ngm.shard_telemetry(s).peek_trace(4096);
        spans.extend(reconstruct(&events));
    }
    spans.sort_by_key(|sp| sp.phases.first().map_or(0, |&(_, tsc)| tsc));
    let skip = spans.len().saturating_sub(SPANS_LAST_K);
    let mut out = String::from("{\"spans\":[");
    for (i, sp) in spans.iter().skip(skip).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"completed\":{},\"well_nested\":{},\"total_cycles\":{},\"phases\":[",
            sp.id,
            sp.completed(),
            sp.well_nested(),
            sp.total_cycles().unwrap_or(0),
        ));
        for (j, (phase, tsc)) in sp.phases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{tsc}]", json_str(phase.label())));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// `/blackbox`: the in-memory ring of recent dumps, oldest first.
fn blackbox_json(ngm: &Ngm) -> String {
    let mut out = String::from("{\"dumps\":[");
    for (i, d) in ngm.blackbox_dumps().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"reason\":{},\"shard\":{},\"tsc\":{},\"text\":{}}}",
            json_str(&d.reason),
            d.shard,
            d.tsc,
            json_str(&d.render())
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_dormant_is_not_ready() {
        let states = [ShardLifecycle::Dormant, ShardLifecycle::Dormant];
        let r = derive_readiness(&states, &[], false);
        assert!(matches!(r, Readiness::NotReady(_)));
        assert!(!r.is_ready());
    }

    #[test]
    fn one_serving_is_ready() {
        let states = [ShardLifecycle::Serving, ShardLifecycle::Dormant];
        assert_eq!(derive_readiness(&states, &[], false), Readiness::Ready);
    }

    #[test]
    fn wedged_serving_shard_degrades() {
        let states = [ShardLifecycle::Serving, ShardLifecycle::Serving];
        let r = derive_readiness(&states, &[1], false);
        match r {
            Readiness::Degraded(why) => assert!(why.contains('1'), "{why}"),
            other => panic!("expected degraded, got {other:?}"),
        }
    }

    #[test]
    fn overdue_drain_degrades_but_draining_alone_does_not() {
        let states = [ShardLifecycle::Serving, ShardLifecycle::Draining];
        assert_eq!(derive_readiness(&states, &[], false), Readiness::Ready);
        assert!(matches!(
            derive_readiness(&states, &[], true),
            Readiness::Degraded(_)
        ));
    }

    #[test]
    fn retired_and_serving_mix_is_ready() {
        let states = [
            ShardLifecycle::Serving,
            ShardLifecycle::Retired,
            ShardLifecycle::Dormant,
        ];
        assert_eq!(derive_readiness(&states, &[], false), Readiness::Ready);
    }
}
