//! Per-shard heat reporting: rolling-window views of where the tier is
//! hot and why.
//!
//! [`crate::api::Ngm::heat_report`] samples every shard into its
//! [`HeatWindow`] and returns the windowed aggregates as a
//! [`HeatReport`]: recent calls, deadline/retry/fallback rates, ring
//! occupancy, windowed phase percentiles, and per-size-class refill
//! demand. The same windows back two consumers that must agree on what
//! "hot" means:
//!
//! * [`crate::api::NgmHandle::rebalance_away_from`] scores candidate
//!   shards with [`ObsState::heat_score`] instead of raw handle-local
//!   ring-saturation counts, so traffic moves to the shard that is
//!   *recently* coolest, not merely the one this handle happened not to
//!   hammer.
//! * The blackbox flight recorder archives
//!   [`ObsState::render_current`] into every dump, so a post-mortem
//!   shows the heat picture at failure time.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use ngm_offload::PHASE_NAMES;
use ngm_telemetry::export::MetricsSnapshot;
use ngm_telemetry::window::{HeatDelta, HeatFrame, HeatWindow};

use crate::watch::SharedDemand;

/// Where a shard slot is in its elastic lifecycle.
///
/// Non-elastic tiers hold every slot at `Serving` forever; the elastic
/// controller walks slots through `Dormant → Serving → Draining →
/// Retired` (and `Retired → Serving` on a respawn, or `Draining →
/// Serving` when a drain aborts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShardLifecycle {
    /// Built but never spawned: the slot's service (heap, owner stamp,
    /// orphan stack) exists, parked, with no thread.
    Dormant = 0,
    /// Thread running, accepting allocations and frees.
    Serving = 1,
    /// Thread running but gated against new allocations; frees keep
    /// landing until the shard's alloc/free balance reaches zero.
    Draining = 2,
    /// Drained to zero balance and joined; the service is parked again
    /// and the slot can respawn later.
    Retired = 3,
}

impl ShardLifecycle {
    fn from_u8(v: u8) -> Self {
        match v {
            1 => ShardLifecycle::Serving,
            2 => ShardLifecycle::Draining,
            3 => ShardLifecycle::Retired,
            _ => ShardLifecycle::Dormant,
        }
    }

    /// Stable lowercase label for reports and dumps.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            ShardLifecycle::Dormant => "dormant",
            ShardLifecycle::Serving => "serving",
            ShardLifecycle::Draining => "draining",
            ShardLifecycle::Retired => "retired",
        }
    }
}

/// Picks the coolest shard from `(shard, score, affinity)` candidates:
/// lowest score wins, ties prefer `affinity == true` (e.g. a same-cluster
/// shard), remaining ties go to the lowest index.
///
/// This is the *single* tie-breaking rule shared by
/// [`crate::api::NgmHandle::rebalance_away_from`] (picking where to move
/// traffic) and the elastic controller (picking which shard to retire) —
/// extracted so the two consumers cannot drift apart.
#[must_use]
pub fn pick_coolest<I>(candidates: I) -> Option<usize>
where
    I: IntoIterator<Item = (usize, u64, bool)>,
{
    candidates
        .into_iter()
        .min_by_key(|&(shard, score, affinity)| (score, !affinity, shard))
        .map(|(shard, _, _)| shard)
}

/// One shard's windowed heat.
#[derive(Debug, Clone)]
pub struct ShardHeat {
    /// The shard index.
    pub shard: usize,
    /// The windowed aggregate (newest frame minus the window baseline).
    pub heat: HeatDelta,
}

impl ShardHeat {
    /// A scalar hotness ranking: ring backlog plus windowed deadline
    /// expiries (weighted — a deadline is worse than a queued free) plus
    /// windowed full-ring retries. Comparable across shards because every
    /// term comes from the same window span.
    #[must_use]
    pub fn score(&self) -> u64 {
        self.heat
            .ring_occupancy
            .saturating_add(self.heat.deadlines.saturating_mul(4))
            .saturating_add(self.heat.retries)
    }
}

/// The tier-wide heat report: one windowed entry per shard.
#[derive(Debug, Clone)]
pub struct HeatReport {
    /// Per-shard windowed heat, indexed by shard.
    pub shards: Vec<ShardHeat>,
}

impl HeatReport {
    /// The hottest shard by [`ShardHeat::score`], if any shard reported.
    #[must_use]
    pub fn hottest(&self) -> Option<usize> {
        self.shards
            .iter()
            .max_by_key(|s| s.score())
            .map(|s| s.shard)
    }

    /// Renders the operator-facing text report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.shards {
            let d = &s.heat;
            let _ = writeln!(
                out,
                "shard {}: score={} calls={} ring={} deadline_rate={:.3} \
                 retry_rate={:.3} fallback_rate={:.3}",
                s.shard,
                s.score(),
                d.calls,
                d.ring_occupancy,
                d.deadline_rate(),
                d.retry_rate(),
                d.fallback_rate(),
            );
            for (name, snap) in PHASE_NAMES.iter().zip(&d.phases) {
                if snap.count() > 0 {
                    let _ = writeln!(
                        out,
                        "  phase {name}: p50={} p99={} cycles (n={})",
                        snap.p50(),
                        snap.p99(),
                        snap.count()
                    );
                }
            }
            let mut top: Vec<(usize, u64)> = d
                .demand
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, n)| n > 0)
                .collect();
            top.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            if !top.is_empty() {
                let _ = write!(out, "  refill demand:");
                for (class, n) in top.iter().take(4) {
                    let _ = write!(out, " class{class}={n}");
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    /// Publishes the report as labeled gauge series (`shard` label).
    /// Windowed counts are gauges, not counters: they describe the recent
    /// window and may go down.
    pub fn publish(&self, m: &mut MetricsSnapshot) {
        // Family-major order: the exposition format requires all samples
        // of one family to sit under a single HELP/TYPE announcement, so
        // each family walks every shard before the next family starts.
        type Sample = fn(&ShardHeat) -> i64;
        let families: [(&str, Sample); 5] = [
            ("ngm_shard_heat_score", |s| s.score() as i64),
            ("ngm_shard_window_calls", |s| s.heat.calls as i64),
            ("ngm_shard_window_deadlines", |s| s.heat.deadlines as i64),
            ("ngm_shard_window_retries", |s| s.heat.retries as i64),
            ("ngm_shard_ring_occupancy", |s| s.heat.ring_occupancy as i64),
        ];
        for (name, value) in families {
            for s in &self.shards {
                let shard = s.shard.to_string();
                m.labeled_gauge(name, &[("shard", shard.as_str())], value(s));
            }
        }
    }
}

/// Shared observability state: per-shard heat windows plus the demand
/// mirrors they sample, cloned into every handle so rebalance decisions
/// and blackbox dumps read the same windows [`crate::api::Ngm`] writes.
#[derive(Debug)]
pub(crate) struct ObsState {
    /// Dump sink for failure edges; `None` when the blackbox is
    /// disabled (forced off under the global-allocator adapter — dump
    /// assembly allocates). Per-tier, so two tiers in one process have
    /// independent rate limiters and dump rings.
    pub(crate) blackbox: Option<ngm_telemetry::blackbox::BlackboxRecorder>,
    heat: Box<[Mutex<HeatWindow>]>,
    demand: Box<[Arc<SharedDemand>]>,
    /// Per-slot [`ShardLifecycle`] (as `u8`), written by the controller
    /// and `Ngm` lifecycle edges, read by every handle's route resync.
    states: Box<[AtomicU8]>,
    /// Bumped on every lifecycle transition; handles compare it against
    /// their cached value with one relaxed load per operation and resync
    /// their routes when it moved.
    generation: AtomicU64,
    /// Cluster id per slot (from `NgmConfig::topology`).
    clusters: Box<[u8]>,
    scale_up: AtomicU64,
    scale_down: AtomicU64,
    /// Cycles spent on observability work (metrics scrapes, recorder
    /// appends, endpoint renders), written only by the observer/scrape
    /// threads — never by the allocation hot path.
    obs_cycles: AtomicU64,
}

impl ObsState {
    pub(crate) fn new(
        blackbox: bool,
        frames: usize,
        demand: Vec<Arc<SharedDemand>>,
        clusters: Vec<u8>,
    ) -> Self {
        debug_assert_eq!(demand.len(), clusters.len());
        ObsState {
            blackbox: blackbox.then(ngm_telemetry::blackbox::BlackboxRecorder::new),
            heat: (0..demand.len())
                .map(|_| Mutex::new(HeatWindow::new(frames)))
                .collect(),
            states: (0..demand.len())
                .map(|_| AtomicU8::new(ShardLifecycle::Dormant as u8))
                .collect(),
            demand: demand.into_boxed_slice(),
            generation: AtomicU64::new(0),
            clusters: clusters.into_boxed_slice(),
            scale_up: AtomicU64::new(0),
            scale_down: AtomicU64::new(0),
            obs_cycles: AtomicU64::new(0),
        }
    }

    /// Accumulates cycles spent on observability work (observer threads
    /// only — zero hot-path writers).
    pub(crate) fn record_obs_cycles(&self, cycles: u64) {
        self.obs_cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Total observability cycles so far.
    pub(crate) fn obs_cycles_total(&self) -> u64 {
        self.obs_cycles.load(Ordering::Relaxed)
    }

    /// The slot's current lifecycle state (racy read; transitions are
    /// serialized by the controller lock).
    pub(crate) fn state(&self, shard: usize) -> ShardLifecycle {
        ShardLifecycle::from_u8(self.states[shard].load(Ordering::Acquire))
    }

    /// Moves a slot to `state` and bumps the route generation so handles
    /// resync on their next operation.
    pub(crate) fn set_state(&self, shard: usize, state: ShardLifecycle) {
        self.states[shard].store(state as u8, Ordering::Release);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The current route generation (see [`ObsState::set_state`]).
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The slot's cluster id.
    pub(crate) fn cluster(&self, shard: usize) -> u8 {
        self.clusters[shard]
    }

    pub(crate) fn record_scale_up(&self) {
        self.scale_up.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_scale_down(&self) {
        self.scale_down.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn scale_up_total(&self) -> u64 {
        self.scale_up.load(Ordering::Relaxed)
    }

    pub(crate) fn scale_down_total(&self) -> u64 {
        self.scale_down.load(Ordering::Relaxed)
    }

    /// The shard's windowed heat when its window is *settled* — at least
    /// two frames, so the delta spans a real interval instead of the
    /// garbage-prone cumulative-since-start single-frame view. The
    /// elastic controller only acts on settled windows; anything less
    /// falls back to the static (no-op) policy.
    pub(crate) fn settled_heat(&self, shard: usize) -> Option<HeatDelta> {
        let w = self.heat[shard].lock().unwrap();
        if w.len() < 2 {
            return None;
        }
        w.windowed()
    }

    /// The shard's last idle-published refill-demand counters.
    pub(crate) fn demand(&self, shard: usize) -> Vec<u64> {
        self.demand[shard].load()
    }

    /// Appends a cumulative sample and returns the updated windowed
    /// aggregate.
    pub(crate) fn push_frame(&self, shard: usize, frame: HeatFrame) -> HeatDelta {
        let mut w = self.heat[shard].lock().unwrap();
        w.push(frame);
        w.windowed().expect("window non-empty after push")
    }

    /// The shard's current hotness from already-pushed frames (0 before
    /// any [`crate::api::Ngm::heat_report`] call — scoring then falls
    /// back to the caller's own pressure signal).
    pub(crate) fn heat_score(&self, shard: usize) -> u64 {
        self.heat[shard]
            .lock()
            .unwrap()
            .windowed()
            .map_or(0, |heat| ShardHeat { shard, heat }.score())
    }

    /// The shard's retained heat frames, oldest first (the raw time
    /// series behind the `/heat` endpoint). Cloned out so the caller
    /// renders without holding the window lock.
    pub(crate) fn frames(&self, shard: usize) -> Vec<HeatFrame> {
        self.heat[shard].lock().unwrap().frames().cloned().collect()
    }

    /// Renders the current windowed view without pushing new frames
    /// (blackbox dumps must not perturb the window they archive).
    pub(crate) fn render_current(&self) -> String {
        let shards = self
            .heat
            .iter()
            .enumerate()
            .filter_map(|(shard, w)| {
                w.lock()
                    .unwrap()
                    .windowed()
                    .map(|heat| ShardHeat { shard, heat })
            })
            .collect();
        HeatReport { shards }.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(calls: u64, deadlines: u64, ring: u64) -> HeatDelta {
        HeatDelta {
            span_tsc: 100,
            calls,
            deadlines,
            retries: 0,
            fallbacks: 0,
            ring_occupancy: ring,
            phases: Vec::new(),
            demand: vec![0, 5, 0],
        }
    }

    #[test]
    fn score_weights_deadlines_over_backlog() {
        let quiet = ShardHeat {
            shard: 0,
            heat: delta(100, 0, 3),
        };
        let wedged = ShardHeat {
            shard: 1,
            heat: delta(100, 10, 0),
        };
        assert!(wedged.score() > quiet.score());
        let report = HeatReport {
            shards: vec![quiet, wedged],
        };
        assert_eq!(report.hottest(), Some(1));
    }

    #[test]
    fn render_names_every_shard_and_demand_class() {
        let report = HeatReport {
            shards: vec![ShardHeat {
                shard: 2,
                heat: delta(10, 1, 4),
            }],
        };
        let text = report.render();
        assert!(text.contains("shard 2:"), "{text}");
        assert!(text.contains("deadline_rate=0.100"), "{text}");
        assert!(text.contains("class1=5"), "{text}");
    }

    #[test]
    fn publish_emits_one_labeled_series_per_shard() {
        let report = HeatReport {
            shards: vec![
                ShardHeat {
                    shard: 0,
                    heat: delta(1, 0, 0),
                },
                ShardHeat {
                    shard: 1,
                    heat: delta(2, 0, 9),
                },
            ],
        };
        let mut m = MetricsSnapshot::new();
        report.publish(&mut m);
        assert_eq!(m.labeled_gauge_count("ngm_shard_heat_score"), 2);
        assert_eq!(
            m.get_labeled_gauge("ngm_shard_window_calls", &[("shard", "1")]),
            Some(2)
        );
    }

    #[test]
    fn pick_coolest_orders_by_score_then_affinity_then_index() {
        assert_eq!(pick_coolest(std::iter::empty()), None);
        // Lowest score wins outright.
        assert_eq!(pick_coolest([(0, 9, false), (1, 2, false)]), Some(1));
        // Score tie: the affine (same-cluster) candidate wins even at a
        // higher index.
        assert_eq!(pick_coolest([(0, 5, false), (2, 5, true)]), Some(2));
        // Full tie: lowest index wins — the invariant
        // `rebalance_away_from` has always had.
        assert_eq!(
            pick_coolest([(3, 5, true), (1, 5, true), (2, 5, false)]),
            Some(1)
        );
    }

    #[test]
    fn lifecycle_labels_and_transitions_bump_generation() {
        let obs = ObsState::new(
            true,
            4,
            vec![
                Arc::new(SharedDemand::new(2)),
                Arc::new(SharedDemand::new(2)),
            ],
            vec![0, 1],
        );
        assert_eq!(obs.state(1), ShardLifecycle::Dormant);
        let g0 = obs.generation();
        obs.set_state(1, ShardLifecycle::Serving);
        assert_eq!(obs.state(1), ShardLifecycle::Serving);
        assert!(obs.generation() > g0);
        assert_eq!(obs.cluster(1), 1);
        assert_eq!(ShardLifecycle::Draining.label(), "draining");
    }

    #[test]
    fn settled_heat_needs_two_frames() {
        let obs = ObsState::new(true, 4, vec![Arc::new(SharedDemand::new(2))], vec![0]);
        assert!(obs.settled_heat(0).is_none(), "zero frames: unsettled");
        obs.push_frame(
            0,
            HeatFrame {
                tsc: 10,
                calls: 100,
                ..HeatFrame::default()
            },
        );
        assert!(obs.settled_heat(0).is_none(), "one frame: unsettled");
        obs.push_frame(
            0,
            HeatFrame {
                tsc: 20,
                calls: 150,
                ..HeatFrame::default()
            },
        );
        let d = obs.settled_heat(0).expect("two frames settle the window");
        assert_eq!(d.calls, 50, "delta spans the two frames");
    }

    #[test]
    fn obs_state_scores_zero_until_frames_arrive() {
        let obs = ObsState::new(true, 4, vec![Arc::new(SharedDemand::new(2))], vec![0]);
        assert_eq!(obs.heat_score(0), 0);
        assert_eq!(obs.render_current(), "");
        let d = obs.push_frame(
            0,
            HeatFrame {
                tsc: 10,
                ring_occupancy: 2,
                calls: 5,
                deadlines: 1,
                ..HeatFrame::default()
            },
        );
        assert_eq!(d.calls, 5);
        assert_eq!(obs.heat_score(0), 2 + 4);
        assert!(obs.render_current().contains("shard 0:"));
    }
}
