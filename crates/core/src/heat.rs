//! Per-shard heat reporting: rolling-window views of where the tier is
//! hot and why.
//!
//! [`crate::api::Ngm::heat_report`] samples every shard into its
//! [`HeatWindow`] and returns the windowed aggregates as a
//! [`HeatReport`]: recent calls, deadline/retry/fallback rates, ring
//! occupancy, windowed phase percentiles, and per-size-class refill
//! demand. The same windows back two consumers that must agree on what
//! "hot" means:
//!
//! * [`crate::api::NgmHandle::rebalance_away_from`] scores candidate
//!   shards with [`ObsState::heat_score`] instead of raw handle-local
//!   ring-saturation counts, so traffic moves to the shard that is
//!   *recently* coolest, not merely the one this handle happened not to
//!   hammer.
//! * The blackbox flight recorder archives
//!   [`ObsState::render_current`] into every dump, so a post-mortem
//!   shows the heat picture at failure time.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use ngm_offload::PHASE_NAMES;
use ngm_telemetry::export::MetricsSnapshot;
use ngm_telemetry::window::{HeatDelta, HeatFrame, HeatWindow};

use crate::watch::SharedDemand;

/// One shard's windowed heat.
#[derive(Debug, Clone)]
pub struct ShardHeat {
    /// The shard index.
    pub shard: usize,
    /// The windowed aggregate (newest frame minus the window baseline).
    pub heat: HeatDelta,
}

impl ShardHeat {
    /// A scalar hotness ranking: ring backlog plus windowed deadline
    /// expiries (weighted — a deadline is worse than a queued free) plus
    /// windowed full-ring retries. Comparable across shards because every
    /// term comes from the same window span.
    #[must_use]
    pub fn score(&self) -> u64 {
        self.heat
            .ring_occupancy
            .saturating_add(self.heat.deadlines.saturating_mul(4))
            .saturating_add(self.heat.retries)
    }
}

/// The tier-wide heat report: one windowed entry per shard.
#[derive(Debug, Clone)]
pub struct HeatReport {
    /// Per-shard windowed heat, indexed by shard.
    pub shards: Vec<ShardHeat>,
}

impl HeatReport {
    /// The hottest shard by [`ShardHeat::score`], if any shard reported.
    #[must_use]
    pub fn hottest(&self) -> Option<usize> {
        self.shards
            .iter()
            .max_by_key(|s| s.score())
            .map(|s| s.shard)
    }

    /// Renders the operator-facing text report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.shards {
            let d = &s.heat;
            let _ = writeln!(
                out,
                "shard {}: score={} calls={} ring={} deadline_rate={:.3} \
                 retry_rate={:.3} fallback_rate={:.3}",
                s.shard,
                s.score(),
                d.calls,
                d.ring_occupancy,
                d.deadline_rate(),
                d.retry_rate(),
                d.fallback_rate(),
            );
            for (name, snap) in PHASE_NAMES.iter().zip(&d.phases) {
                if snap.count() > 0 {
                    let _ = writeln!(
                        out,
                        "  phase {name}: p50={} p99={} cycles (n={})",
                        snap.p50(),
                        snap.p99(),
                        snap.count()
                    );
                }
            }
            let mut top: Vec<(usize, u64)> = d
                .demand
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, n)| n > 0)
                .collect();
            top.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            if !top.is_empty() {
                let _ = write!(out, "  refill demand:");
                for (class, n) in top.iter().take(4) {
                    let _ = write!(out, " class{class}={n}");
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    /// Publishes the report as labeled gauge series (`shard` label).
    /// Windowed counts are gauges, not counters: they describe the recent
    /// window and may go down.
    pub fn publish(&self, m: &mut MetricsSnapshot) {
        // Family-major order: the exposition format requires all samples
        // of one family to sit under a single HELP/TYPE announcement, so
        // each family walks every shard before the next family starts.
        type Sample = fn(&ShardHeat) -> i64;
        let families: [(&str, Sample); 5] = [
            ("ngm_shard_heat_score", |s| s.score() as i64),
            ("ngm_shard_window_calls", |s| s.heat.calls as i64),
            ("ngm_shard_window_deadlines", |s| s.heat.deadlines as i64),
            ("ngm_shard_window_retries", |s| s.heat.retries as i64),
            ("ngm_shard_ring_occupancy", |s| s.heat.ring_occupancy as i64),
        ];
        for (name, value) in families {
            for s in &self.shards {
                let shard = s.shard.to_string();
                m.labeled_gauge(name, &[("shard", shard.as_str())], value(s));
            }
        }
    }
}

/// Shared observability state: per-shard heat windows plus the demand
/// mirrors they sample, cloned into every handle so rebalance decisions
/// and blackbox dumps read the same windows [`crate::api::Ngm`] writes.
#[derive(Debug)]
pub(crate) struct ObsState {
    /// Whether failure edges may emit blackbox dumps (forced off under
    /// the global-allocator adapter — dump assembly allocates).
    pub(crate) blackbox: bool,
    heat: Box<[Mutex<HeatWindow>]>,
    demand: Box<[Arc<SharedDemand>]>,
}

impl ObsState {
    pub(crate) fn new(blackbox: bool, frames: usize, demand: Vec<Arc<SharedDemand>>) -> Self {
        ObsState {
            blackbox,
            heat: (0..demand.len())
                .map(|_| Mutex::new(HeatWindow::new(frames)))
                .collect(),
            demand: demand.into_boxed_slice(),
        }
    }

    /// The shard's last idle-published refill-demand counters.
    pub(crate) fn demand(&self, shard: usize) -> Vec<u64> {
        self.demand[shard].load()
    }

    /// Appends a cumulative sample and returns the updated windowed
    /// aggregate.
    pub(crate) fn push_frame(&self, shard: usize, frame: HeatFrame) -> HeatDelta {
        let mut w = self.heat[shard].lock().unwrap();
        w.push(frame);
        w.windowed().expect("window non-empty after push")
    }

    /// The shard's current hotness from already-pushed frames (0 before
    /// any [`crate::api::Ngm::heat_report`] call — scoring then falls
    /// back to the caller's own pressure signal).
    pub(crate) fn heat_score(&self, shard: usize) -> u64 {
        self.heat[shard]
            .lock()
            .unwrap()
            .windowed()
            .map_or(0, |heat| ShardHeat { shard, heat }.score())
    }

    /// Renders the current windowed view without pushing new frames
    /// (blackbox dumps must not perturb the window they archive).
    pub(crate) fn render_current(&self) -> String {
        let shards = self
            .heat
            .iter()
            .enumerate()
            .filter_map(|(shard, w)| {
                w.lock()
                    .unwrap()
                    .windowed()
                    .map(|heat| ShardHeat { shard, heat })
            })
            .collect();
        HeatReport { shards }.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(calls: u64, deadlines: u64, ring: u64) -> HeatDelta {
        HeatDelta {
            span_tsc: 100,
            calls,
            deadlines,
            retries: 0,
            fallbacks: 0,
            ring_occupancy: ring,
            phases: Vec::new(),
            demand: vec![0, 5, 0],
        }
    }

    #[test]
    fn score_weights_deadlines_over_backlog() {
        let quiet = ShardHeat {
            shard: 0,
            heat: delta(100, 0, 3),
        };
        let wedged = ShardHeat {
            shard: 1,
            heat: delta(100, 10, 0),
        };
        assert!(wedged.score() > quiet.score());
        let report = HeatReport {
            shards: vec![quiet, wedged],
        };
        assert_eq!(report.hottest(), Some(1));
    }

    #[test]
    fn render_names_every_shard_and_demand_class() {
        let report = HeatReport {
            shards: vec![ShardHeat {
                shard: 2,
                heat: delta(10, 1, 4),
            }],
        };
        let text = report.render();
        assert!(text.contains("shard 2:"), "{text}");
        assert!(text.contains("deadline_rate=0.100"), "{text}");
        assert!(text.contains("class1=5"), "{text}");
    }

    #[test]
    fn publish_emits_one_labeled_series_per_shard() {
        let report = HeatReport {
            shards: vec![
                ShardHeat {
                    shard: 0,
                    heat: delta(1, 0, 0),
                },
                ShardHeat {
                    shard: 1,
                    heat: delta(2, 0, 9),
                },
            ],
        };
        let mut m = MetricsSnapshot::new();
        report.publish(&mut m);
        assert_eq!(m.labeled_gauge_count("ngm_shard_heat_score"), 2);
        assert_eq!(
            m.get_labeled_gauge("ngm_shard_window_calls", &[("shard", "1")]),
            Some(2)
        );
    }

    #[test]
    fn obs_state_scores_zero_until_frames_arrive() {
        let obs = ObsState::new(true, 4, vec![Arc::new(SharedDemand::new(2))]);
        assert_eq!(obs.heat_score(0), 0);
        assert_eq!(obs.render_current(), "");
        let d = obs.push_frame(
            0,
            HeatFrame {
                tsc: 10,
                ring_occupancy: 2,
                calls: 5,
                deadlines: 1,
                ..HeatFrame::default()
            },
        );
        assert_eq!(d.calls, 5);
        assert_eq!(obs.heat_score(0), 2 + 4);
        assert!(obs.render_current().contains("shard 0:"));
    }
}
