//! Bootstrap arena: allocations made while the allocator is building
//! itself.
//!
//! Installing NextGen-Malloc as the global allocator creates a
//! chicken-and-egg problem: spawning the service thread and registering
//! client handles themselves allocate. Those early (and re-entrant)
//! allocations are served from a fixed static arena; they are never
//! individually freed (frees into the arena's address range are ignored),
//! which is bounded because only bootstrap paths use it.

use std::alloc::Layout;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Size of the static bootstrap arena. Zero-initialized BSS: the pages
/// cost nothing until touched, so a generous size is cheap insurance for
/// guarded-context allocations over a long process lifetime.
pub const ARENA_SIZE: usize = 16 * 1024 * 1024;

/// The backing storage is only ever accessed through raw pointers derived
/// from the static's address, so the field itself is "never read".
#[repr(align(64))]
struct Arena(#[allow(dead_code)] [u8; ARENA_SIZE]);

static mut ARENA: Arena = Arena([0; ARENA_SIZE]);
static CURSOR: AtomicUsize = AtomicUsize::new(0);

fn arena_base() -> usize {
    // Taking the address of a `static mut` without creating a reference is
    // sound; only raw pointers into the arena are ever formed.
    std::ptr::addr_of!(ARENA) as usize
}

/// Allocates from the bootstrap arena. Returns null when the arena is
/// exhausted (callers treat that as allocation failure).
pub fn bootstrap_alloc(layout: Layout) -> *mut u8 {
    let base = arena_base();
    let mut cur = CURSOR.load(Ordering::Relaxed);
    loop {
        let start = (base + cur + layout.align() - 1) & !(layout.align() - 1);
        let end = start + layout.size().max(1);
        let new_cur = end - base;
        if new_cur > ARENA_SIZE {
            return std::ptr::null_mut();
        }
        match CURSOR.compare_exchange_weak(cur, new_cur, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return start as *mut u8,
            Err(c) => cur = c,
        }
    }
}

/// Returns `true` if `ptr` points into the bootstrap arena (such blocks
/// are leaked rather than freed).
pub fn is_bootstrap_ptr(ptr: *const u8) -> bool {
    let a = ptr as usize;
    let base = arena_base();
    a >= base && a < base + ARENA_SIZE
}

/// Bytes consumed so far (diagnostics).
pub fn bootstrap_used() -> usize {
    CURSOR.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_allocations_are_aligned_and_disjoint() {
        let l1 = Layout::from_size_align(100, 16).unwrap();
        let l2 = Layout::from_size_align(64, 64).unwrap();
        let a = bootstrap_alloc(l1);
        let b = bootstrap_alloc(l2);
        assert!(!a.is_null() && !b.is_null());
        assert_eq!(a as usize % 16, 0);
        assert_eq!(b as usize % 64, 0);
        let (a, b) = (a as usize, b as usize);
        assert!(a + 100 <= b || b + 64 <= a, "allocations overlap");
        // SAFETY: both blocks are live arena memory of the given sizes.
        unsafe {
            std::ptr::write_bytes(a as *mut u8, 0xEE, 100);
            std::ptr::write_bytes(b as *mut u8, 0xFF, 64);
            assert_eq!(*(a as *const u8), 0xEE);
            assert_eq!(*(b as *const u8), 0xFF);
        }
    }

    #[test]
    fn membership_test_matches() {
        let p = bootstrap_alloc(Layout::from_size_align(8, 8).unwrap());
        assert!(is_bootstrap_ptr(p));
        let outside = Box::new(0u8);
        assert!(!is_bootstrap_ptr(&*outside as *const u8));
    }

    #[test]
    fn used_grows_monotonically() {
        let before = bootstrap_used();
        bootstrap_alloc(Layout::from_size_align(32, 8).unwrap());
        assert!(bootstrap_used() >= before + 32);
    }
}
