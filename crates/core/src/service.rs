//! The malloc service: the code that runs in the allocator's own room.

use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::Arc;

use ngm_heap::classes::{layout_to_class, SizeClass, NUM_CLASSES};
use ngm_heap::{Heap, HeapStats, SegregatedHeap};
use ngm_offload::Service;

use crate::orphan::OrphanStack;
use crate::watch::{SharedDemand, SharedHeapStats};

/// Maximum number of addresses carried by one batched request or reply.
///
/// This bounds the size of the in-flight message (the request slot and
/// free ring store payloads inline), so it is a compile-time constant
/// rather than a builder knob; `NgmBuilder::batch_size` is clamped to it.
pub const MAX_BATCH: usize = 32;

/// A synchronous allocation request (the contents of the paper's
/// `requested_size` transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocReq {
    /// Requested size in bytes.
    pub size: usize,
    /// Required alignment (power of two).
    pub align: usize,
}

impl AllocReq {
    /// Builds a request from a `Layout`.
    pub fn from_layout(layout: Layout) -> Self {
        AllocReq {
            size: layout.size(),
            align: layout.align(),
        }
    }

    fn layout(self) -> Option<Layout> {
        // Requests cross a thread boundary; a malformed one (non-power-of-
        // two alignment, overflowing size) must degrade to a counted
        // failure on the service side, never a service panic — one bad
        // client must not take the shard down for everyone else.
        Layout::from_size_align(self.size, self.align).ok()
    }
}

/// An asynchronous free message. Addresses travel as `usize` because raw
/// pointers are deliberately not `Send`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeMsg {
    /// Address of the dead block.
    pub addr: usize,
    /// Its original allocation size.
    pub size: usize,
    /// Its original alignment.
    pub align: usize,
}

/// A request for a magazine refill: up to [`MAX_BATCH`] blocks of one
/// size class in a single round trip, amortizing the §4.1 handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocBatchReq {
    /// The size class to refill from.
    pub class: SizeClass,
    /// How many blocks the client wants (clamped to [`MAX_BATCH`]).
    pub count: u32,
}

/// A fixed-capacity batch of block addresses, stored inline so the whole
/// message fits in a request slot or ring cell without heap allocation.
/// Used both for refill replies and for batched frees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrBatch {
    addrs: [usize; MAX_BATCH],
    len: u32,
}

impl Default for AddrBatch {
    fn default() -> Self {
        Self::empty()
    }
}

impl AddrBatch {
    /// An empty batch.
    pub const fn empty() -> Self {
        AddrBatch {
            addrs: [0; MAX_BATCH],
            len: 0,
        }
    }

    /// Appends an address.
    ///
    /// # Panics
    ///
    /// Panics if the batch already holds [`MAX_BATCH`] addresses.
    pub fn push(&mut self, addr: usize) {
        self.addrs[self.len as usize] = addr;
        self.len += 1;
    }

    /// Removes and returns the most recently pushed address (LIFO — a
    /// just-refilled magazine hands back the warmest block first).
    pub fn pop(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.addrs[self.len as usize])
    }

    /// The addresses held.
    pub fn as_slice(&self) -> &[usize] {
        &self.addrs[..self.len as usize]
    }

    /// Number of addresses held.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the batch holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The malloc service's synchronous request protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MallocReq {
    /// One allocation of an arbitrary layout (today's per-call path).
    One(AllocReq),
    /// A magazine refill: many blocks of one class, one round trip.
    Batch(AllocBatchReq),
}

/// The malloc service's synchronous response protocol.
///
/// The variants differ widely in size, but responses travel by value
/// through the fixed-size [`RequestSlot`](ngm_offload::RequestSlot)
/// mailbox — boxing the batch would allocate through the very allocator
/// being implemented.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MallocResp {
    /// Block address, or 0 on failure.
    One(usize),
    /// The refilled addresses; may be shorter than requested (or empty)
    /// under memory pressure.
    Batch(AddrBatch),
}

/// The malloc service's asynchronous free protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreePost {
    /// One free with its full layout (today's per-call path; the only
    /// route for large blocks, whose layout cannot be recovered from the
    /// address alone).
    One(FreeMsg),
    /// A flushed client free buffer: small-class addresses only — the
    /// service recovers each class from its page descriptor.
    Batch(AddrBatch),
    /// Unused addresses returned from a magazine at handle drop. Frees
    /// the blocks like [`FreePost::Batch`] but is additionally counted in
    /// [`ServiceStats::magazine_returned`], so shutdown accounting can
    /// separate application frees from never-handed-out stash.
    MagazineReturn(AddrBatch),
}

/// Counters maintained by the service (no atomics — only the service core
/// writes them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Allocation requests served.
    pub allocs: u64,
    /// Frees applied (posted + orphaned).
    pub frees: u64,
    /// Allocation requests that failed (OOM or layout).
    pub failures: u64,
    /// Orphan blocks reclaimed from the global stack.
    pub orphans_reclaimed: u64,
    /// Batched refill requests served (each hands out up to
    /// [`MAX_BATCH`] blocks, all counted in `allocs`).
    pub batch_refills: u64,
    /// Blocks returned unused from client magazines at handle drop.
    /// These are counted in both `allocs` (when refilled) and `frees`
    /// (when returned), so `allocs - magazine_returned` is the number of
    /// blocks the application actually received.
    pub magazine_returned: u64,
    /// Housekeeping sweeps executed while idle.
    pub housekeeping_runs: u64,
    /// Pages prepared ahead of demand during idle time (§3.3.2's
    /// predictive preallocation).
    pub pages_preallocated: u64,
    /// Malformed requests refused (null free addresses, impossible
    /// layouts). Each is also counted in `failures` where it displaced an
    /// allocation; a free with a protocol error is skipped, not applied.
    pub protocol_errors: u64,
    /// Blocks allocated inline by clients from the degradation heap while
    /// the tier was unreachable (deadlined or dead). Zero on individual
    /// shards — the fallback path bypasses every shard by definition —
    /// and folded into the merged totals at shutdown, where these blocks
    /// also count in `allocs`/`frees` so accounting still balances.
    pub fallback_allocs: u64,
}

impl ServiceStats {
    /// Folds another shard's counters into this one, presenting a set of
    /// shard-owned services as one logical service. All fields sum.
    pub fn absorb(&mut self, other: &ServiceStats) {
        self.allocs += other.allocs;
        self.frees += other.frees;
        self.failures += other.failures;
        self.orphans_reclaimed += other.orphans_reclaimed;
        self.batch_refills += other.batch_refills;
        self.magazine_returned += other.magazine_returned;
        self.housekeeping_runs += other.housekeeping_runs;
        self.pages_preallocated += other.pages_preallocated;
        self.protocol_errors += other.protocol_errors;
        self.fallback_allocs += other.fallback_allocs;
    }
}

/// The allocator service state. Owned exclusively by the service thread;
/// note the absence of any synchronization in the hot paths.
pub struct MallocService {
    heap: SegregatedHeap,
    shard: u16,
    orphans: Arc<OrphanStack>,
    stats: ServiceStats,
    idle_ticks: u32,
    /// Allocations per size class since the last idle sweep — the demand
    /// signal for predictive preallocation.
    demand: [u32; NUM_CLASSES],
    /// Cumulative allocations per size class over the service's lifetime
    /// — the monotone demand series the heat window differences to see
    /// *recent* per-class pressure (the decayed `demand` array above is
    /// useless for that: it halves on every prepare sweep).
    demand_total: [u64; NUM_CLASSES],
    /// Cross-thread readable mirror of the heap stats, refreshed on idle
    /// rounds (the heap itself is atomics-free and service-owned).
    watch: Arc<SharedHeapStats>,
    /// Cross-thread readable mirror of `demand_total`, published with the
    /// heap stats on idle rounds.
    demand_watch: Arc<SharedDemand>,
}

impl MallocService {
    /// How many consecutive idle rounds trigger a housekeeping sweep.
    const HOUSEKEEPING_IDLE: u32 = 10_000;

    /// How many consecutive idle rounds trigger predictive preallocation
    /// (early: a short lull is enough to top up hot classes).
    const PREPARE_IDLE: u32 = 64;

    /// Creates the service around a fresh segregated heap (shard 0).
    pub fn new(orphans: Arc<OrphanStack>) -> Self {
        Self::for_shard(0, orphans)
    }

    /// Creates the service as shard `shard` of a sharded tier: its heap
    /// stamps [`crate::OWNER_BASE`]` | shard` into every segment it
    /// creates, so any small-block address routes back to this shard via
    /// [`ngm_heap::owner_of_small_ptr`] — no shared map, no atomics, and
    /// the answer cannot change while the block is live.
    pub fn for_shard(shard: u16, orphans: Arc<OrphanStack>) -> Self {
        MallocService {
            heap: SegregatedHeap::new(crate::config::OWNER_BASE | u64::from(shard)),
            shard,
            orphans,
            stats: ServiceStats::default(),
            idle_ticks: 0,
            demand: [0; NUM_CLASSES],
            demand_total: [0; NUM_CLASSES],
            watch: Arc::new(SharedHeapStats::new()),
            demand_watch: Arc::new(SharedDemand::new(NUM_CLASSES)),
        }
    }

    /// This service's shard index within its tier (0 for a standalone
    /// service).
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// The live-readable heap-stats mirror. Clone the `Arc` before
    /// handing the service to the runtime to keep observing the heap
    /// while the service thread owns it.
    pub fn heap_watch(&self) -> &Arc<SharedHeapStats> {
        &self.watch
    }

    /// The live-readable per-size-class refill-demand mirror (cumulative
    /// counters, published on idle rounds like [`Self::heap_watch`]).
    pub fn demand_watch(&self) -> &Arc<SharedDemand> {
        &self.demand_watch
    }

    /// Service-side counters.
    pub fn service_stats(&self) -> ServiceStats {
        self.stats
    }

    /// Heap statistics.
    pub fn heap_stats(&self) -> HeapStats {
        self.heap.stats()
    }

    fn alloc_one(&mut self, req: AllocReq) -> usize {
        let Some(layout) = req.layout() else {
            self.stats.protocol_errors += 1;
            self.stats.failures += 1;
            return 0;
        };
        if let Some(class) = layout_to_class(req.size, req.align) {
            self.demand[class.0 as usize] = self.demand[class.0 as usize].saturating_add(1);
            self.demand_total[class.0 as usize] += 1;
        }
        match self.heap.allocate(layout) {
            Ok(p) => {
                self.stats.allocs += 1;
                p.as_ptr() as usize
            }
            Err(_) => {
                self.stats.failures += 1;
                0
            }
        }
    }

    fn alloc_batch(&mut self, req: AllocBatchReq) -> AddrBatch {
        let mut out = AddrBatch::empty();
        let count = (req.count as usize).min(MAX_BATCH);
        if (req.class.0 as usize) >= NUM_CLASSES || count == 0 {
            self.stats.failures += count.max(1) as u64;
            return out;
        }
        self.demand[req.class.0 as usize] =
            self.demand[req.class.0 as usize].saturating_add(count as u32);
        self.demand_total[req.class.0 as usize] += count as u64;
        self.stats.batch_refills += 1;
        match self
            .heap
            .allocate_batch(req.class, count, &mut |p| out.push(p.as_ptr() as usize))
        {
            Ok(n) => {
                self.stats.allocs += n as u64;
                // A short refill is not an application-visible failure —
                // the client retries or degrades — so only a fully empty
                // reply counts as one.
            }
            Err(_) => self.stats.failures += 1,
        }
        out
    }

    fn free_batch(&mut self, batch: &AddrBatch) {
        let nulls = batch.as_slice().iter().filter(|&&a| a == 0).count();
        if nulls > 0 {
            // A null in a free batch is a client bug; skip it and count
            // it rather than panicking the shard everyone shares.
            self.stats.protocol_errors += nulls as u64;
        }
        // SAFETY: every non-null address in a batch is a live small block
        // handed out by this heap; the client relinquished them on post.
        unsafe {
            self.heap.deallocate_batch(
                batch
                    .as_slice()
                    .iter()
                    .filter_map(|&a| NonNull::new(a as *mut u8)),
            );
        }
        self.stats.frees += (batch.len() - nulls) as u64;
    }

    /// Drains this shard's orphan stack into the heap immediately.
    ///
    /// The service loop's *stop* path drains rings but never runs another
    /// idle round, so orphans pushed late (deadline-rerouted frees, frees
    /// from handle teardown racing shutdown) would otherwise be stranded
    /// and show up as an alloc/free imbalance. [`crate::Ngm::shutdown`]
    /// calls this on each recovered service before reading its stats.
    pub fn reclaim_orphans(&mut self) {
        self.drain_orphans();
    }

    fn drain_orphans(&mut self) {
        // Move the heap out of the way of the closure borrow.
        let heap = &mut self.heap;
        let n = self.orphans.drain(|p| {
            // SAFETY: orphan blocks are live small blocks from this heap
            // (the global allocator only orphans pointers whose segment
            // magic matched).
            unsafe { heap.deallocate_by_ptr(p) };
        });
        self.stats.orphans_reclaimed += n as u64;
        self.stats.frees += n as u64;
    }
}

impl Service for MallocService {
    type Req = MallocReq;
    type Resp = MallocResp;
    type Post = FreePost;

    fn on_start(&mut self) {
        // The service thread's own Rust allocations must never round-trip
        // to itself when NgmAllocator is the global allocator.
        crate::global::mark_allocator_thread();
    }

    fn call(&mut self, req: MallocReq) -> MallocResp {
        self.idle_ticks = 0;
        match req {
            MallocReq::One(r) => MallocResp::One(self.alloc_one(r)),
            MallocReq::Batch(b) => MallocResp::Batch(self.alloc_batch(b)),
        }
    }

    fn post(&mut self, msg: FreePost) {
        self.idle_ticks = 0;
        match msg {
            FreePost::One(m) => {
                let (Some(ptr), Ok(layout)) = (
                    NonNull::new(m.addr as *mut u8),
                    Layout::from_size_align(m.size, m.align),
                ) else {
                    // Refusing a malformed free leaks one block at worst;
                    // panicking here would kill the shard for every
                    // client. Count it and move on.
                    self.stats.protocol_errors += 1;
                    return;
                };
                // SAFETY: the client posting the message owned the live
                // block and relinquished it; layout is the one it was
                // allocated with.
                unsafe { self.heap.deallocate(ptr, layout) };
                self.stats.frees += 1;
            }
            FreePost::Batch(b) => self.free_batch(&b),
            FreePost::MagazineReturn(b) => {
                self.free_batch(&b);
                self.stats.magazine_returned += b.len() as u64;
            }
        }
    }

    fn idle(&mut self) {
        self.drain_orphans();
        self.watch.publish(&self.heap.stats());
        self.demand_watch.publish(&self.demand_total);
        self.idle_ticks = self.idle_ticks.saturating_add(1);
        if self.idle_ticks == Self::PREPARE_IDLE {
            // Predictive preallocation (§3.3.2): spend idle cycles making
            // sure recently-hot classes have a ready page, so no client
            // ever waits for the page-assignment slow path.
            for class in 0..NUM_CLASSES {
                if self.demand[class] > 0 {
                    if let Ok(true) = self
                        .heap
                        .prepare_class(ngm_heap::classes::SizeClass(class as u16))
                    {
                        self.stats.pages_preallocated += 1;
                    }
                }
                self.demand[class] /= 2; // exponential decay of the signal
            }
        }
        if self.idle_ticks == Self::HOUSEKEEPING_IDLE {
            // Deferred housekeeping is effectively free in the dedicated
            // room: no application thread is stalled by it.
            self.heap.release_empty();
            self.stats.housekeeping_runs += 1;
            self.idle_ticks = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> MallocService {
        MallocService::new(Arc::new(OrphanStack::new()))
    }

    fn alloc_one(s: &mut MallocService, size: usize, align: usize) -> usize {
        match s.call(MallocReq::One(AllocReq { size, align })) {
            MallocResp::One(addr) => addr,
            other => panic!("One request answered with {other:?}"),
        }
    }

    fn free_one(s: &mut MallocService, addr: usize, size: usize, align: usize) {
        s.post(FreePost::One(FreeMsg { addr, size, align }));
    }

    fn refill(s: &mut MallocService, class: SizeClass, count: u32) -> AddrBatch {
        match s.call(MallocReq::Batch(AllocBatchReq { class, count })) {
            MallocResp::Batch(b) => b,
            other => panic!("Batch request answered with {other:?}"),
        }
    }

    #[test]
    fn call_allocates_and_post_frees() {
        let mut s = svc();
        let addr = alloc_one(&mut s, 128, 8);
        assert_ne!(addr, 0);
        // SAFETY: we own the fresh block.
        unsafe { std::ptr::write_bytes(addr as *mut u8, 0x77, 128) };
        free_one(&mut s, addr, 128, 8);
        assert_eq!(s.service_stats().allocs, 1);
        assert_eq!(s.service_stats().frees, 1);
        assert_eq!(s.heap_stats().live_blocks, 0);
    }

    #[test]
    fn zero_size_request_fails_cleanly() {
        let mut s = svc();
        let addr = alloc_one(&mut s, 0, 1);
        assert_eq!(addr, 0);
        assert_eq!(s.service_stats().failures, 1);
    }

    #[test]
    fn batch_refill_hands_out_distinct_writable_blocks() {
        let mut s = svc();
        let class = ngm_heap::classes::size_to_class(64).expect("64 is a small class");
        let b = refill(&mut s, class, 16);
        assert_eq!(b.len(), 16);
        let mut seen = std::collections::HashSet::new();
        for &addr in b.as_slice() {
            assert!(seen.insert(addr), "address {addr:#x} handed out twice");
            assert_eq!(addr % 64, 0, "class-64 block misaligned");
            // SAFETY: fresh live block of 64 bytes.
            unsafe { std::ptr::write_bytes(addr as *mut u8, 0xAB, 64) };
        }
        let st = s.service_stats();
        assert_eq!(st.allocs, 16);
        assert_eq!(st.batch_refills, 1);
        s.post(FreePost::Batch(b));
        let st = s.service_stats();
        assert_eq!(st.frees, 16);
        assert_eq!(st.magazine_returned, 0);
        assert_eq!(s.heap_stats().live_blocks, 0);
    }

    #[test]
    fn batch_count_is_clamped_to_max() {
        let mut s = svc();
        let class = ngm_heap::classes::size_to_class(64).expect("small class");
        let b = refill(&mut s, class, u32::MAX);
        assert_eq!(b.len(), MAX_BATCH);
        s.post(FreePost::Batch(b));
        assert_eq!(s.heap_stats().live_blocks, 0);
    }

    #[test]
    fn invalid_class_refill_fails_cleanly() {
        let mut s = svc();
        let b = refill(&mut s, SizeClass(NUM_CLASSES as u16), 8);
        assert!(b.is_empty());
        assert_eq!(s.service_stats().allocs, 0);
        assert!(s.service_stats().failures > 0);
    }

    #[test]
    fn magazine_return_balances_but_is_separable() {
        let mut s = svc();
        let class = ngm_heap::classes::size_to_class(256).expect("small class");
        let b = refill(&mut s, class, 8);
        assert_eq!(b.len(), 8);
        // Client used none of them and dropped its handle.
        s.post(FreePost::MagazineReturn(b));
        let st = s.service_stats();
        assert_eq!(st.allocs, 8);
        assert_eq!(st.frees, 8);
        assert_eq!(st.magazine_returned, 8);
        assert_eq!(st.allocs - st.magazine_returned, 0, "app received nothing");
        assert_eq!(s.heap_stats().live_blocks, 0);
    }

    #[test]
    fn malformed_requests_are_counted_not_fatal() {
        let mut s = svc();
        // Non-power-of-two alignment: an impossible layout.
        let addr = alloc_one(&mut s, 64, 3);
        assert_eq!(addr, 0);
        assert_eq!(s.service_stats().failures, 1);
        assert_eq!(s.service_stats().protocol_errors, 1);
        // Null free and impossible-layout free: skipped, counted.
        s.post(FreePost::One(FreeMsg {
            addr: 0,
            size: 64,
            align: 8,
        }));
        let real = alloc_one(&mut s, 64, 8);
        s.post(FreePost::One(FreeMsg {
            addr: real,
            size: 64,
            align: 7,
        }));
        assert_eq!(s.service_stats().frees, 0);
        assert_eq!(s.service_stats().protocol_errors, 3);
        // A batch with a null entry frees the rest.
        let mut b = AddrBatch::empty();
        b.push(real);
        b.push(0);
        s.post(FreePost::Batch(b));
        assert_eq!(s.service_stats().frees, 1);
        assert_eq!(s.service_stats().protocol_errors, 4);
        assert_eq!(s.heap_stats().live_blocks, 0);
    }

    #[test]
    fn shard_service_stamps_routable_owner_ids() {
        let mut a = MallocService::for_shard(0, Arc::new(OrphanStack::new()));
        let mut b = MallocService::for_shard(3, Arc::new(OrphanStack::new()));
        assert_eq!(b.shard(), 3);
        let pa = alloc_one(&mut a, 64, 8);
        let pb = alloc_one(&mut b, 64, 8);
        // SAFETY: both are live small blocks from segregated heaps.
        unsafe {
            let oa = ngm_heap::owner_of_small_ptr(NonNull::new(pa as *mut u8).unwrap());
            let ob = ngm_heap::owner_of_small_ptr(NonNull::new(pb as *mut u8).unwrap());
            assert_eq!(oa, crate::config::OWNER_BASE);
            assert_eq!(ob, crate::config::OWNER_BASE | 3);
        }
        free_one(&mut a, pa, 64, 8);
        free_one(&mut b, pb, 64, 8);
    }

    #[test]
    fn service_stats_absorb_sums_all_fields() {
        let a = ServiceStats {
            allocs: 1,
            frees: 2,
            failures: 3,
            orphans_reclaimed: 4,
            batch_refills: 5,
            magazine_returned: 6,
            housekeeping_runs: 7,
            pages_preallocated: 8,
            protocol_errors: 9,
            fallback_allocs: 10,
        };
        let mut m = a;
        m.absorb(&a);
        assert_eq!(m.allocs, 2);
        assert_eq!(m.frees, 4);
        assert_eq!(m.failures, 6);
        assert_eq!(m.orphans_reclaimed, 8);
        assert_eq!(m.batch_refills, 10);
        assert_eq!(m.magazine_returned, 12);
        assert_eq!(m.housekeeping_runs, 14);
        assert_eq!(m.pages_preallocated, 16);
        assert_eq!(m.protocol_errors, 18);
        assert_eq!(m.fallback_allocs, 20);
    }

    #[test]
    fn orphans_reclaimed_on_idle() {
        let mut s = svc();
        let addr = alloc_one(&mut s, 64, 8);
        let orphans = Arc::clone(&s.orphans);
        // SAFETY: the block is live, we relinquish it to the stack.
        unsafe { orphans.push(NonNull::new(addr as *mut u8).unwrap()) };
        s.idle();
        assert_eq!(s.service_stats().orphans_reclaimed, 1);
        assert_eq!(s.heap_stats().live_blocks, 0);
    }

    #[test]
    fn idle_preallocates_for_hot_classes() {
        let mut s = svc();
        // Create demand in one class, then drain its pages empty so the
        // bin has no ready page.
        let addr = alloc_one(&mut s, 64, 8);
        free_one(&mut s, addr, 64, 8);
        s.heap.release_empty();
        assert_eq!(s.heap_stats().pages_in_use, 0);
        for _ in 0..MallocService::PREPARE_IDLE {
            s.idle();
        }
        assert_eq!(s.service_stats().pages_preallocated, 1);
        assert_eq!(s.heap_stats().pages_in_use, 1, "hot class has a ready page");
    }

    #[test]
    fn idle_publishes_heap_stats_to_watch() {
        let mut s = svc();
        let watch = Arc::clone(s.heap_watch());
        assert_eq!(watch.load().live_blocks, 0);
        let _addr = alloc_one(&mut s, 64, 8);
        s.idle();
        assert_eq!(watch.load().live_blocks, 1);
        assert_eq!(watch.load(), s.heap_stats());
    }

    #[test]
    fn idle_publishes_cumulative_demand() {
        let mut s = svc();
        let demand = Arc::clone(s.demand_watch());
        assert_eq!(demand.load().iter().sum::<u64>(), 0);
        let _a = alloc_one(&mut s, 64, 8);
        let _b = alloc_one(&mut s, 64, 8);
        s.idle();
        let published = demand.load();
        assert_eq!(published.iter().sum::<u64>(), 2);
        // Cumulative counters never decay, unlike the predictive-prealloc
        // `demand` array which halves on each prepare sweep.
        for _ in 0..MallocService::PREPARE_IDLE + 1 {
            s.idle();
        }
        assert_eq!(demand.load(), published);
    }

    #[test]
    fn housekeeping_fires_after_long_idle() {
        let mut s = svc();
        // Allocate and free so a segment exists but is empty.
        let addr = alloc_one(&mut s, 64, 8);
        free_one(&mut s, addr, 64, 8);
        assert_eq!(s.heap_stats().segments, 1);
        for _ in 0..MallocService::HOUSEKEEPING_IDLE {
            s.idle();
        }
        assert_eq!(s.service_stats().housekeeping_runs, 1);
        assert_eq!(s.heap_stats().segments, 0);
    }
}
