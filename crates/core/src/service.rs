//! The malloc service: the code that runs in the allocator's own room.

use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::Arc;

use ngm_heap::classes::{layout_to_class, NUM_CLASSES};
use ngm_heap::{Heap, HeapStats, SegregatedHeap};
use ngm_offload::Service;

use crate::orphan::OrphanStack;
use crate::watch::SharedHeapStats;

/// A synchronous allocation request (the contents of the paper's
/// `requested_size` transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocReq {
    /// Requested size in bytes.
    pub size: usize,
    /// Required alignment (power of two).
    pub align: usize,
}

impl AllocReq {
    /// Builds a request from a `Layout`.
    pub fn from_layout(layout: Layout) -> Self {
        AllocReq {
            size: layout.size(),
            align: layout.align(),
        }
    }

    fn layout(self) -> Layout {
        // Alignment validity is enforced where requests are created.
        Layout::from_size_align(self.size, self.align).expect("valid layout in AllocReq")
    }
}

/// An asynchronous free message. Addresses travel as `usize` because raw
/// pointers are deliberately not `Send`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeMsg {
    /// Address of the dead block.
    pub addr: usize,
    /// Its original allocation size.
    pub size: usize,
    /// Its original alignment.
    pub align: usize,
}

/// Counters maintained by the service (no atomics — only the service core
/// writes them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Allocation requests served.
    pub allocs: u64,
    /// Frees applied (posted + orphaned).
    pub frees: u64,
    /// Allocation requests that failed (OOM or layout).
    pub failures: u64,
    /// Orphan blocks reclaimed from the global stack.
    pub orphans_reclaimed: u64,
    /// Housekeeping sweeps executed while idle.
    pub housekeeping_runs: u64,
    /// Pages prepared ahead of demand during idle time (§3.3.2's
    /// predictive preallocation).
    pub pages_preallocated: u64,
}

/// The allocator service state. Owned exclusively by the service thread;
/// note the absence of any synchronization in the hot paths.
pub struct MallocService {
    heap: SegregatedHeap,
    orphans: Arc<OrphanStack>,
    stats: ServiceStats,
    idle_ticks: u32,
    /// Allocations per size class since the last idle sweep — the demand
    /// signal for predictive preallocation.
    demand: [u32; NUM_CLASSES],
    /// Cross-thread readable mirror of the heap stats, refreshed on idle
    /// rounds (the heap itself is atomics-free and service-owned).
    watch: Arc<SharedHeapStats>,
}

impl MallocService {
    /// How many consecutive idle rounds trigger a housekeeping sweep.
    const HOUSEKEEPING_IDLE: u32 = 10_000;

    /// How many consecutive idle rounds trigger predictive preallocation
    /// (early: a short lull is enough to top up hot classes).
    const PREPARE_IDLE: u32 = 64;

    /// Creates the service around a fresh segregated heap.
    pub fn new(orphans: Arc<OrphanStack>) -> Self {
        MallocService {
            heap: SegregatedHeap::new(0x6e676d), // "ngm"
            orphans,
            stats: ServiceStats::default(),
            idle_ticks: 0,
            demand: [0; NUM_CLASSES],
            watch: Arc::new(SharedHeapStats::new()),
        }
    }

    /// The live-readable heap-stats mirror. Clone the `Arc` before
    /// handing the service to the runtime to keep observing the heap
    /// while the service thread owns it.
    pub fn heap_watch(&self) -> &Arc<SharedHeapStats> {
        &self.watch
    }

    /// Service-side counters.
    pub fn service_stats(&self) -> ServiceStats {
        self.stats
    }

    /// Heap statistics.
    pub fn heap_stats(&self) -> HeapStats {
        self.heap.stats()
    }

    fn drain_orphans(&mut self) {
        // Move the heap out of the way of the closure borrow.
        let heap = &mut self.heap;
        let n = self.orphans.drain(|p| {
            // SAFETY: orphan blocks are live small blocks from this heap
            // (the global allocator only orphans pointers whose segment
            // magic matched).
            unsafe { heap.deallocate_by_ptr(p) };
        });
        self.stats.orphans_reclaimed += n as u64;
        self.stats.frees += n as u64;
    }
}

impl Service for MallocService {
    type Req = AllocReq;
    type Resp = usize; // Block address, or 0 on failure.
    type Post = FreeMsg;

    fn on_start(&mut self) {
        // The service thread's own Rust allocations must never round-trip
        // to itself when NgmAllocator is the global allocator.
        crate::global::mark_allocator_thread();
    }

    fn call(&mut self, req: AllocReq) -> usize {
        self.idle_ticks = 0;
        if let Some(class) = layout_to_class(req.size, req.align) {
            self.demand[class.0 as usize] = self.demand[class.0 as usize].saturating_add(1);
        }
        match self.heap.allocate(req.layout()) {
            Ok(p) => {
                self.stats.allocs += 1;
                p.as_ptr() as usize
            }
            Err(_) => {
                self.stats.failures += 1;
                0
            }
        }
    }

    fn post(&mut self, msg: FreeMsg) {
        self.idle_ticks = 0;
        let ptr = NonNull::new(msg.addr as *mut u8).expect("free of null address");
        let layout = Layout::from_size_align(msg.size, msg.align).expect("valid layout in FreeMsg");
        // SAFETY: the client posting the message owned the live block and
        // relinquished it; layout is the one it was allocated with.
        unsafe { self.heap.deallocate(ptr, layout) };
        self.stats.frees += 1;
    }

    fn idle(&mut self) {
        self.drain_orphans();
        self.watch.publish(&self.heap.stats());
        self.idle_ticks = self.idle_ticks.saturating_add(1);
        if self.idle_ticks == Self::PREPARE_IDLE {
            // Predictive preallocation (§3.3.2): spend idle cycles making
            // sure recently-hot classes have a ready page, so no client
            // ever waits for the page-assignment slow path.
            for class in 0..NUM_CLASSES {
                if self.demand[class] > 0 {
                    if let Ok(true) = self
                        .heap
                        .prepare_class(ngm_heap::classes::SizeClass(class as u16))
                    {
                        self.stats.pages_preallocated += 1;
                    }
                }
                self.demand[class] /= 2; // exponential decay of the signal
            }
        }
        if self.idle_ticks == Self::HOUSEKEEPING_IDLE {
            // Deferred housekeeping is effectively free in the dedicated
            // room: no application thread is stalled by it.
            self.heap.release_empty();
            self.stats.housekeeping_runs += 1;
            self.idle_ticks = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> MallocService {
        MallocService::new(Arc::new(OrphanStack::new()))
    }

    #[test]
    fn call_allocates_and_post_frees() {
        let mut s = svc();
        let addr = s.call(AllocReq {
            size: 128,
            align: 8,
        });
        assert_ne!(addr, 0);
        // SAFETY: we own the fresh block.
        unsafe { std::ptr::write_bytes(addr as *mut u8, 0x77, 128) };
        s.post(FreeMsg {
            addr,
            size: 128,
            align: 8,
        });
        assert_eq!(s.service_stats().allocs, 1);
        assert_eq!(s.service_stats().frees, 1);
        assert_eq!(s.heap_stats().live_blocks, 0);
    }

    #[test]
    fn zero_size_request_fails_cleanly() {
        let mut s = svc();
        let addr = s.call(AllocReq { size: 0, align: 1 });
        assert_eq!(addr, 0);
        assert_eq!(s.service_stats().failures, 1);
    }

    #[test]
    fn orphans_reclaimed_on_idle() {
        let mut s = svc();
        let addr = s.call(AllocReq { size: 64, align: 8 });
        let orphans = Arc::clone(&s.orphans);
        // SAFETY: the block is live, we relinquish it to the stack.
        unsafe { orphans.push(NonNull::new(addr as *mut u8).unwrap()) };
        s.idle();
        assert_eq!(s.service_stats().orphans_reclaimed, 1);
        assert_eq!(s.heap_stats().live_blocks, 0);
    }

    #[test]
    fn idle_preallocates_for_hot_classes() {
        let mut s = svc();
        // Create demand in one class, then drain its pages empty so the
        // bin has no ready page.
        let addr = s.call(AllocReq { size: 64, align: 8 });
        s.post(FreeMsg {
            addr,
            size: 64,
            align: 8,
        });
        s.heap.release_empty();
        assert_eq!(s.heap_stats().pages_in_use, 0);
        for _ in 0..MallocService::PREPARE_IDLE {
            s.idle();
        }
        assert_eq!(s.service_stats().pages_preallocated, 1);
        assert_eq!(s.heap_stats().pages_in_use, 1, "hot class has a ready page");
    }

    #[test]
    fn idle_publishes_heap_stats_to_watch() {
        let mut s = svc();
        let watch = Arc::clone(s.heap_watch());
        assert_eq!(watch.load().live_blocks, 0);
        let _addr = s.call(AllocReq { size: 64, align: 8 });
        s.idle();
        assert_eq!(watch.load().live_blocks, 1);
        assert_eq!(watch.load(), s.heap_stats());
    }

    #[test]
    fn housekeeping_fires_after_long_idle() {
        let mut s = svc();
        // Allocate and free so a segment exists but is empty.
        let addr = s.call(AllocReq { size: 64, align: 8 });
        s.post(FreeMsg {
            addr,
            size: 64,
            align: 8,
        });
        assert_eq!(s.heap_stats().segments, 1);
        for _ in 0..MallocService::HOUSEKEEPING_IDLE {
            s.idle();
        }
        assert_eq!(s.service_stats().housekeeping_runs, 1);
        assert_eq!(s.heap_stats().segments, 0);
    }
}
