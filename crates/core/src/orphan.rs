//! Orphan-free stack: small blocks freed when no client handle exists.
//!
//! A `GlobalAlloc` must accept `dealloc` from contexts where establishing a
//! client handle is impossible — thread-local destructors, allocator
//! bootstrap, the service thread itself. Such frees are pushed onto this
//! lock-free stack (threading the list through the dead blocks, which are
//! at least 16 bytes) and the service core drains them in its idle hook.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// A multi-producer intrusive stack of dead small blocks.
#[derive(Debug, Default)]
pub struct OrphanStack {
    head: AtomicPtr<u8>,
    pushed: AtomicU64,
    drained: AtomicU64,
}

impl OrphanStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a dead block.
    ///
    /// # Safety
    ///
    /// `ptr` must be a small block (≥ 8 writable bytes) owned by the
    /// pusher (just freed, not yet recycled) and must remain mapped until
    /// drained.
    pub unsafe fn push(&self, ptr: NonNull<u8>) {
        let mut old = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: we own the dead block; its first word is scratch.
            unsafe { ptr.as_ptr().cast::<*mut u8>().write(old) };
            match self.head.compare_exchange_weak(
                old,
                ptr.as_ptr(),
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => old = cur,
            }
        }
        self.pushed.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops the whole list and feeds each block to `f`.
    ///
    /// Intended for the single consumer (the service core); concurrent
    /// calls are safe but split the list arbitrarily.
    pub fn drain(&self, mut f: impl FnMut(NonNull<u8>)) -> usize {
        let mut cur = self.head.swap(std::ptr::null_mut(), Ordering::Acquire);
        let mut n = 0;
        while let Some(p) = NonNull::new(cur) {
            // SAFETY: nodes were pushed via `push`, which stored the next
            // pointer in the first word; blocks stay mapped per contract.
            cur = unsafe { p.as_ptr().cast::<*mut u8>().read() };
            f(p);
            n += 1;
        }
        self.drained.fetch_add(n as u64, Ordering::Relaxed);
        n as usize
    }

    /// Blocks ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Blocks ever drained.
    pub fn drained(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> NonNull<u8> {
        let b: Box<[u8; 64]> = Box::new([0; 64]);
        NonNull::new(Box::into_raw(b).cast::<u8>()).unwrap()
    }

    unsafe fn free_block(p: NonNull<u8>) {
        // SAFETY: created by `block`.
        drop(unsafe { Box::from_raw(p.as_ptr().cast::<[u8; 64]>()) });
    }

    #[test]
    fn push_drain_roundtrip() {
        let s = OrphanStack::new();
        let a = block();
        let b = block();
        // SAFETY: blocks owned, stay mapped.
        unsafe {
            s.push(a);
            s.push(b);
        }
        let mut got = Vec::new();
        assert_eq!(s.drain(|p| got.push(p)), 2);
        assert_eq!(got, vec![b, a], "LIFO order");
        assert_eq!(s.pushed(), 2);
        assert_eq!(s.drained(), 2);
        for p in got {
            // SAFETY: reclaimed from the stack exactly once.
            unsafe { free_block(p) };
        }
    }

    #[test]
    fn drain_empty_is_zero() {
        let s = OrphanStack::new();
        assert_eq!(s.drain(|_| panic!("no blocks")), 0);
    }

    #[test]
    fn concurrent_pushes_all_arrive() {
        use std::sync::Arc;
        let s = Arc::new(OrphanStack::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    // SAFETY: fresh blocks, never touched again by pusher.
                    unsafe { s.push(block()) };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut n = 0;
        s.drain(|p| {
            n += 1;
            // SAFETY: sole consumer reclaims each block once.
            unsafe { free_block(p) };
        });
        assert_eq!(n, 1000);
    }
}
