//! Lock-free log-linear latency histograms.
//!
//! Bucketing follows the HDR-histogram family: each power-of-two octave is
//! split into `SUB = 16` linear sub-buckets, giving ≤ 6.25% relative
//! error everywhere while covering the full `u64` range in
//! [`N_BUCKETS`] = 976 buckets. Values below 16 get exact unit buckets.
//!
//! Recording touches exactly two relaxed atomics — one bucket increment
//! and one running-sum increment — so the client fast path stays within
//! the telemetry budget (see DESIGN.md §Telemetry). Everything else
//! (count, percentiles, merge) is derived at snapshot time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
///
/// Indices `0..16` are exact unit buckets; octaves `2^4 ..= 2^63`
/// contribute 16 buckets each: `16 + 60 * 16 = 976`.
pub const N_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Maps a value to its bucket index.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= SUB_BITS here
    let sub = ((value >> (exp - SUB_BITS)) as usize) & (SUB - 1);
    (exp - SUB_BITS + 1) as usize * SUB + sub
}

/// Inclusive `[lower, upper]` value range of a bucket.
///
/// # Panics
///
/// Panics if `index >= N_BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < N_BUCKETS, "bucket index {index} out of range");
    if index < SUB {
        return (index as u64, index as u64);
    }
    let exp = SUB_BITS + (index / SUB) as u32 - 1;
    let sub = (index % SUB) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    let lower = (1u64 << exp) | (sub * width);
    (lower, lower + (width - 1))
}

/// A concurrent latency histogram.
///
/// Any number of threads may [`record`](Self::record) concurrently;
/// [`snapshot`](Self::snapshot) may race with recording and sees some
/// consistent-enough interleaving (counts are monotone, never torn).
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    /// Running sum of recorded values, for the mean.
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        LatencyHistogram {
            buckets: [ZERO; N_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value: one relaxed bucket increment plus one relaxed
    /// sum increment.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Copies the current state into an owned, mergeable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; N_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count())
            .field("p50", &snap.percentile(50.0))
            .field("max", &snap.max())
            .finish_non_exhaustive()
    }
}

/// An owned copy of a histogram's buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no recorded values.
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; N_BUCKETS],
            sum: 0,
        }
    }

    /// Total number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value, or 0 for an empty snapshot.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Upper bound of the bucket holding the `p`-th percentile
    /// (`0.0 ..= 100.0`), or 0 for an empty snapshot.
    ///
    /// Resolution is the bucket width: ≤ 6.25% relative error.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the target value, 1-based; ceil so p=0 maps to rank 1.
        let rank = ((p / 100.0 * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        self.max()
    }

    /// Median (bucket-resolution).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile (bucket-resolution).
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile (bucket-resolution).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Upper bound of the highest non-empty bucket, or 0 when empty.
    ///
    /// Bucket-resolution: the true maximum lies within this bucket.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| bucket_bounds(i).1)
    }

    /// The occupied buckets as `(lower, upper, count)` triples, in
    /// value order. This is the exporter's view: 976 mostly-empty
    /// buckets compress to the handful that actually saw samples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// Folds `other` into `self`. Merging is commutative and associative.
    /// Sums wrap on overflow, matching the wrapping `fetch_add` in
    /// [`LatencyHistogram::record`].
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst = dst.wrapping_add(*src);
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The values recorded between `earlier` and `self`: per-bucket
    /// saturating subtraction, so two cumulative snapshots of the same
    /// live histogram yield the distribution of just the window between
    /// them (the basis of the rolling shard-heat percentiles).
    ///
    /// Saturating (not wrapping) because a snapshot racing concurrent
    /// `record` calls can observe a bucket slightly behind the earlier
    /// read's sum; clamping at zero keeps the window well-formed.
    #[must_use]
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        HistogramSnapshot {
            buckets,
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        let mut expected_lower = 0u64;
        for i in 0..N_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lower, "gap before bucket {i}");
            assert!(hi >= lo);
            expected_lower = hi.wrapping_add(1);
        }
        // The last bucket ends exactly at u64::MAX.
        assert_eq!(bucket_bounds(N_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn index_respects_bounds() {
        for &v in &[0, 1, 15, 16, 17, 31, 32, 33, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && v <= hi,
                "value {v} outside bucket {i} [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn relative_error_bounded() {
        for &v in &[100u64, 12_345, 1 << 30, (1 << 40) + 17] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let width = hi - lo;
            assert!(
                (width as f64) <= lo as f64 / 16.0 + 1.0,
                "bucket too wide at {v}: [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 5050);
        // p50 is the bucket holding value 50: [48,51].
        let p50 = s.p50();
        assert!((48..=51).contains(&p50), "p50 = {p50}");
        let p99 = s.p99();
        assert!((96..=103).contains(&p99), "p99 = {p99}");
        assert!(s.max() >= 100);
    }

    #[test]
    fn empty_snapshot_is_all_zeroes() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(50.0), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let c = LatencyHistogram::new();
        for v in [3u64, 17, 900, 70_000] {
            a.record(v);
            c.record(v);
        }
        for v in [5u64, 17, 1 << 33] {
            b.record(v);
            c.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, c.snapshot());
    }

    #[test]
    fn diff_recovers_the_window() {
        let h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in [1_000u64, 2_000, 4_000] {
            h.record(v);
        }
        let window = h.snapshot().diff(&earlier);
        assert_eq!(window.count(), 3, "only the window's values remain");
        assert_eq!(window.sum(), 7_000);
        assert!(window.p50() >= 1_000, "old small values subtracted out");
        // Diffing a snapshot against itself is empty.
        let zero = earlier.diff(&earlier);
        assert_eq!(zero.count(), 0);
        assert_eq!(zero.sum(), 0);
        // Reversed operands saturate to empty rather than wrapping.
        let reversed = earlier.diff(&h.snapshot());
        assert_eq!(reversed.count(), 0);
    }

    #[test]
    fn nonzero_buckets_cover_exactly_the_recorded_values() {
        let h = LatencyHistogram::new();
        for v in [3u64, 3, 900, 70_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let buckets: Vec<_> = s.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 3, "three distinct buckets: {buckets:?}");
        assert_eq!(buckets[0], (3, 3, 2), "unit bucket holds both 3s");
        let total: u64 = buckets.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, s.count());
        for &(lo, hi, _) in &buckets {
            assert!(lo <= hi);
        }
        assert!(
            HistogramSnapshot::empty()
                .nonzero_buckets()
                .next()
                .is_none(),
            "empty snapshot has no occupied buckets"
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + (i % 97));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
