//! Sampled allocation-site heap profiler.
//!
//! Attributes live heap usage to the call sites that allocated it: a
//! 1-in-N sampled map from call-site hash to live bytes / live blocks /
//! peak bytes. Sampling keeps the hot path cheap — the common case is one
//! relaxed counter increment and an early return; only sampled
//! allocations pay for the label formatting and the map update. At
//! shutdown, [`SiteProfiler::report`] yields a leak report listing the
//! sites whose sampled allocations are still live, and the whole report
//! publishes through the [`export`](crate::export) metrics exporter as
//! labeled gauges.
//!
//! The profiler never stores raw pointers beyond their lifetime as map
//! keys — addresses are plain `usize` bookkeeping tokens, matched on
//! free and forgotten.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::export::MetricsSnapshot;

/// Aggregated statistics for one allocation site.
#[derive(Debug, Clone, Default)]
pub struct SiteStats {
    /// Human-readable site label (`file:line:col` via `#[track_caller]`).
    pub label: String,
    /// Bytes currently live among this site's sampled allocations.
    pub live_bytes: u64,
    /// Blocks currently live among this site's sampled allocations.
    pub live_blocks: u64,
    /// Highest `live_bytes` ever observed for this site.
    pub peak_bytes: u64,
    /// Sampled allocations attributed to this site over the whole run.
    pub total_allocs: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// Call-site hash → accumulated stats.
    sites: HashMap<u64, SiteStats>,
    /// Sampled live address → (site hash, bytes), consumed on free.
    live: HashMap<usize, (u64, u64)>,
}

/// A sampled call-site → heap-usage attribution map.
///
/// `record_alloc`/`record_free` are safe to call from any thread; the
/// map is guarded by a mutex that only sampled operations touch.
#[derive(Debug)]
pub struct SiteProfiler {
    /// Sample 1 in `interval` allocations (1 = every allocation).
    interval: u64,
    tick: AtomicU64,
    /// Count of tracked live addresses, so unsampled frees can early-out
    /// without taking the lock when nothing is tracked.
    tracked: AtomicU64,
    inner: Mutex<Inner>,
}

impl SiteProfiler {
    /// A profiler sampling 1 in `sample_interval` allocations.
    /// An interval of 0 is treated as 1 (sample everything).
    #[must_use]
    pub fn new(sample_interval: u64) -> Self {
        SiteProfiler {
            interval: sample_interval.max(1),
            tick: AtomicU64::new(0),
            tracked: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured 1-in-N sampling interval.
    #[must_use]
    pub fn sample_interval(&self) -> u64 {
        self.interval
    }

    /// Records an allocation of `bytes` at `addr`. The `label` closure
    /// is only invoked if this allocation is sampled, so callers can
    /// defer `file:line` formatting off the common path.
    pub fn record_alloc(&self, addr: usize, bytes: usize, label: impl FnOnce() -> String) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        if !tick.is_multiple_of(self.interval) {
            return;
        }
        let label = label();
        let hash = site_hash(&label);
        let mut inner = self.inner.lock().unwrap();
        let site = inner.sites.entry(hash).or_insert_with(|| SiteStats {
            label,
            ..SiteStats::default()
        });
        site.live_bytes += bytes as u64;
        site.live_blocks += 1;
        site.total_allocs += 1;
        site.peak_bytes = site.peak_bytes.max(site.live_bytes);
        if inner.live.insert(addr, (hash, bytes as u64)).is_none() {
            self.tracked.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a free of `addr`. Frees of unsampled allocations are
    /// ignored; when nothing is tracked this is a single relaxed load.
    pub fn record_free(&self, addr: usize) {
        if self.tracked.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let Some((hash, bytes)) = inner.live.remove(&addr) else {
            return;
        };
        self.tracked.fetch_sub(1, Ordering::Relaxed);
        if let Some(site) = inner.sites.get_mut(&hash) {
            site.live_bytes = site.live_bytes.saturating_sub(bytes);
            site.live_blocks = site.live_blocks.saturating_sub(1);
        }
    }

    /// Snapshots the attribution map, sites ordered by live bytes
    /// descending (ties broken by label for determinism).
    #[must_use]
    pub fn report(&self) -> SiteReport {
        let inner = self.inner.lock().unwrap();
        let mut sites: Vec<SiteStats> = inner.sites.values().cloned().collect();
        sites.sort_by(|a, b| {
            b.live_bytes
                .cmp(&a.live_bytes)
                .then_with(|| a.label.cmp(&b.label))
        });
        SiteReport {
            sample_interval: self.interval,
            sites,
        }
    }
}

/// A point-in-time snapshot of the site attribution map.
#[derive(Debug, Clone)]
pub struct SiteReport {
    /// The profiler's 1-in-N sampling interval (counts are of sampled
    /// allocations, so multiply by roughly this to estimate totals).
    pub sample_interval: u64,
    /// Per-site stats, ordered by live bytes descending.
    pub sites: Vec<SiteStats>,
}

impl SiteReport {
    /// Sites with sampled allocations still live — the leak suspects at
    /// shutdown.
    #[must_use]
    pub fn surviving(&self) -> Vec<&SiteStats> {
        self.sites.iter().filter(|s| s.live_blocks > 0).collect()
    }

    /// True when no sampled allocation survived.
    #[must_use]
    pub fn leak_free(&self) -> bool {
        self.surviving().is_empty()
    }

    /// Renders the shutdown leak report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "allocation-site profile (1-in-{} sampling)\n",
            self.sample_interval
        );
        let surviving = self.surviving();
        if surviving.is_empty() {
            out.push_str("no surviving allocations: all sampled sites freed everything\n");
        } else {
            out.push_str(&format!(
                "{} site(s) with surviving allocations:\n",
                surviving.len()
            ));
            for s in surviving {
                out.push_str(&format!(
                    "  {:<40} live {} B in {} block(s), peak {} B, {} sampled alloc(s)\n",
                    s.label, s.live_bytes, s.live_blocks, s.peak_bytes, s.total_allocs
                ));
            }
        }
        for s in self.sites.iter().filter(|s| s.live_blocks == 0) {
            out.push_str(&format!(
                "  {:<40} freed      (peak {} B, {} sampled alloc(s))\n",
                s.label, s.peak_bytes, s.total_allocs
            ));
        }
        out
    }

    /// Publishes every site as labeled gauges
    /// (`ngm_site_{live_bytes,live_blocks,peak_bytes}{site="..."}`)
    /// through the metrics exporter.
    pub fn publish(&self, m: &mut MetricsSnapshot) {
        for s in &self.sites {
            let labels = [("site", s.label.as_str())];
            m.labeled_gauge("ngm_site_live_bytes", &labels, s.live_bytes as i64);
            m.labeled_gauge("ngm_site_live_blocks", &labels, s.live_blocks as i64);
            m.labeled_gauge("ngm_site_peak_bytes", &labels, s.peak_bytes as i64);
        }
        m.gauge("ngm_site_count", self.sites.len() as i64);
        m.gauge("ngm_site_surviving_count", self.surviving().len() as i64);
    }
}

/// FNV-1a over the label — stable across runs, no dependency.
fn site_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_tracks_live_and_peak() {
        let p = SiteProfiler::new(1);
        p.record_alloc(0x1000, 64, || "a.rs:1:1".into());
        p.record_alloc(0x2000, 32, || "a.rs:1:1".into());
        p.record_alloc(0x3000, 128, || "b.rs:9:5".into());
        p.record_free(0x2000);
        let r = p.report();
        assert_eq!(r.sites.len(), 2);
        // Ordered by live bytes descending: b (128) before a (64).
        assert_eq!(r.sites[0].label, "b.rs:9:5");
        assert_eq!(r.sites[1].live_bytes, 64);
        assert_eq!(r.sites[1].peak_bytes, 96, "peak saw both blocks");
        assert_eq!(r.sites[1].total_allocs, 2);
        assert!(!r.leak_free());
    }

    #[test]
    fn freeing_everything_is_leak_free() {
        let p = SiteProfiler::new(1);
        p.record_alloc(0x10, 8, || "x".into());
        p.record_alloc(0x20, 8, || "x".into());
        p.record_free(0x10);
        p.record_free(0x20);
        let r = p.report();
        assert!(r.leak_free());
        assert!(r.render().contains("no surviving allocations"));
        assert_eq!(r.sites[0].peak_bytes, 16);
    }

    #[test]
    fn sampling_skips_and_label_closure_is_lazy() {
        let p = SiteProfiler::new(4);
        let mut formatted = 0u32;
        for i in 0..16usize {
            p.record_alloc(0x1000 + i * 16, 10, || {
                formatted += 1;
                "s".into()
            });
        }
        assert_eq!(formatted, 4, "1-in-4 sampling formats 4 of 16 labels");
        let r = p.report();
        assert_eq!(r.sites[0].total_allocs, 4);
        // Frees of unsampled addresses are ignored without panicking.
        p.record_free(0xdead_beef);
    }

    #[test]
    fn unsampled_free_without_tracking_is_cheap_noop() {
        let p = SiteProfiler::new(1);
        p.record_free(0x1234); // nothing tracked: early-out path
        assert!(p.report().sites.is_empty());
    }

    #[test]
    fn report_publishes_labeled_gauges() {
        let p = SiteProfiler::new(1);
        p.record_alloc(0x1, 100, || "src/api.rs:10:3".into());
        let r = p.report();
        let mut m = MetricsSnapshot::new();
        r.publish(&mut m);
        assert_eq!(
            m.get_labeled_gauge("ngm_site_live_bytes", &[("site", "src/api.rs:10:3")]),
            Some(100)
        );
        let text = m.to_prometheus_text();
        assert!(text.contains("ngm_site_peak_bytes{site=\"src/api.rs:10:3\"} 100"));
        assert!(text.contains("ngm_site_surviving_count 1"));
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let p = Arc::new(SiteProfiler::new(1));
        let mut handles = Vec::new();
        for t in 0..4usize {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..250usize {
                    let addr = (t + 1) * 0x10_0000 + i * 16;
                    p.record_alloc(addr, 16, || format!("thread{t}"));
                    if i % 2 == 0 {
                        p.record_free(addr);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let r = p.report();
        let total_live: u64 = r.sites.iter().map(|s| s.live_blocks).sum();
        assert_eq!(total_live, 4 * 125);
        assert_eq!(r.sites.len(), 4);
    }
}
