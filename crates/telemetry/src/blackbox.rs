//! Blackbox flight recorder: structured post-mortems for request-path
//! failures.
//!
//! When the tier hits a failure edge — a deadline expiry, a shard death,
//! the first degradation to the inline fallback — a typed error tells
//! the caller *what* happened but discards the context that explains
//! *why*. The blackbox captures that context at the moment of failure:
//! the last-K trace events of the implicated shard, every shard's slot
//! state and ring occupancy, and a heat snapshot, rendered as one framed
//! text dump to stderr and (when `NGM_BLACKBOX_PATH` is set) appended to
//! a file. Emitted dumps are also retained in a bounded in-memory ring
//! ([`BlackboxRecorder::recent`]) so an observability endpoint or a test
//! can inspect them after the fact without scraping stderr.
//!
//! Emission is rate-limited *per recorder* (one recorder per tier, so
//! independent tiers — and independent tests — never contend for a
//! process-global slot): callers claim a slot with
//! [`BlackboxRecorder::should_emit`] *before* assembling a dump, so the
//! suppressed common case costs one relaxed atomic read — no
//! allocation, no formatting. A wedged shard under churn produces a
//! dump every [`MIN_INTERVAL`] at most, not one per failed request.

use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::span::SpanPhase;
use crate::trace::{TraceEvent, TraceEventKind};

/// Default minimum spacing between emitted dumps.
pub const MIN_INTERVAL: Duration = Duration::from_millis(250);

/// Environment variable naming the file dumps are appended to.
pub const PATH_ENV: &str = "NGM_BLACKBOX_PATH";

/// Default trace-tail depth captured into a dump.
pub const DEFAULT_LAST_K: usize = 64;

/// Default number of emitted dumps retained in the in-memory ring.
pub const DEFAULT_RETAIN: usize = 32;

/// One shard's state line in a dump.
#[derive(Debug, Clone)]
pub struct ShardState {
    /// Shard index.
    pub shard: usize,
    /// Request-slot protocol state label (`empty`/`request`/...).
    pub slot_state: &'static str,
    /// Free-ring occupancy.
    pub ring_occupancy: u64,
    /// Whether the shard's service thread is down.
    pub down: bool,
}

/// A captured post-mortem, ready to render.
#[derive(Debug, Clone)]
pub struct BlackboxDump {
    /// What tripped the recorder (e.g. `"deadline"`, `"failover"`).
    pub reason: String,
    /// Shard the failure implicates.
    pub shard: usize,
    /// Capture timestamp ([`crate::clock::cycles_now`]).
    pub tsc: u64,
    /// Last-K trace events of the implicated shard (oldest first;
    /// empty when tracing is disabled).
    pub events: Vec<TraceEvent>,
    /// Per-shard slot/ring state at capture time.
    pub shards: Vec<ShardState>,
    /// Pre-rendered heat-snapshot lines (the caller owns the heat
    /// types; the recorder only archives their rendering).
    pub heat: String,
}

impl BlackboxDump {
    /// Renders the framed text dump.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== ngm blackbox: {} (shard {}) ===",
            self.reason, self.shard
        );
        let _ = writeln!(out, "captured_tsc: {}", self.tsc);
        let _ = writeln!(out, "--- shard states ---");
        for s in &self.shards {
            let _ = writeln!(
                out,
                "shard {}: slot={} ring_occupancy={} down={}",
                s.shard, s.slot_state, s.ring_occupancy, s.down
            );
        }
        let _ = writeln!(out, "--- heat snapshot ---");
        if self.heat.is_empty() {
            let _ = writeln!(out, "(no heat data)");
        } else {
            for line in self.heat.lines() {
                let _ = writeln!(out, "{line}");
            }
        }
        let _ = writeln!(
            out,
            "--- last {} trace events (shard {}) ---",
            self.events.len(),
            self.shard
        );
        if self.events.is_empty() {
            let _ = writeln!(out, "(tracing disabled: set trace_capacity > 0)");
        }
        for e in &self.events {
            // Span events decode their phase; others print raw payloads.
            if e.kind == TraceEventKind::Span {
                let phase = SpanPhase::from_code(e.b).map_or("?", SpanPhase::label);
                let _ = writeln!(
                    out,
                    "tsc={} thread={} span id={:#x} phase={phase}",
                    e.tsc, e.thread, e.a
                );
            } else {
                let _ = writeln!(
                    out,
                    "tsc={} thread={} {} a={} b={}",
                    e.tsc,
                    e.thread,
                    e.kind.label(),
                    e.a,
                    e.b
                );
            }
        }
        let _ = writeln!(out, "=== end blackbox ===");
        out
    }
}

/// A rate-limited dump sink owned by one tier.
///
/// Each recorder has its own emission clock and its own retained ring,
/// so two tiers in one process (or two tests in one binary) never
/// suppress each other's dumps and never see each other's history.
#[derive(Debug)]
pub struct BlackboxRecorder {
    /// Per-recorder epoch for the emission clock.
    epoch: Instant,
    /// Millis since `epoch` of the last emitted dump; 0 = never.
    last_emit_ms: AtomicU64,
    min_interval_ms: u64,
    ring: Mutex<VecDeque<BlackboxDump>>,
    retain: usize,
}

impl Default for BlackboxRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl BlackboxRecorder {
    /// A recorder with the default [`MIN_INTERVAL`] spacing and
    /// [`DEFAULT_RETAIN`] ring depth.
    #[must_use]
    pub fn new() -> Self {
        Self::with_limits(MIN_INTERVAL, DEFAULT_RETAIN)
    }

    /// A recorder with explicit spacing and ring depth (`retain` is
    /// clamped to at least 1 — a recorder that forgets every dump it
    /// emits would be useless to `/blackbox`).
    #[must_use]
    pub fn with_limits(min_interval: Duration, retain: usize) -> Self {
        BlackboxRecorder {
            epoch: Instant::now(),
            last_emit_ms: AtomicU64::new(0),
            min_interval_ms: min_interval.as_millis() as u64,
            ring: Mutex::new(VecDeque::new()),
            retain: retain.max(1),
        }
    }

    /// Claims this recorder's emission slot. Returns `true` at most
    /// once per configured interval; call this *before* assembling a
    /// dump so the rate-limited path never allocates.
    #[must_use]
    pub fn should_emit(&self) -> bool {
        // +1 so a claim in the first millisecond is distinguishable
        // from the "never emitted" sentinel.
        let now_ms = self.epoch.elapsed().as_millis() as u64 + 1;
        let last = self.last_emit_ms.load(Ordering::Relaxed);
        if last != 0 && now_ms.saturating_sub(last) < self.min_interval_ms {
            return false;
        }
        // One winner per interval; losers observe the winner's store.
        self.last_emit_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Renders and archives a dump: stderr always, appended to the file
    /// named by [`PATH_ENV`] when set, and retained in the in-memory
    /// ring (oldest evicted beyond the retain depth). Write failures
    /// are swallowed — a flight recorder must never turn a degraded
    /// request into a crash.
    pub fn emit(&self, dump: BlackboxDump) {
        let text = dump.render();
        let _ = std::io::stderr().write_all(text.as_bytes());
        if let Ok(path) = std::env::var(PATH_ENV) {
            if !path.is_empty() {
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = f.write_all(text.as_bytes());
                }
            }
        }
        if let Ok(mut ring) = self.ring.lock() {
            if ring.len() == self.retain {
                ring.pop_front();
            }
            ring.push_back(dump);
        }
    }

    /// Retained dumps, oldest first.
    #[must_use]
    pub fn recent(&self) -> Vec<BlackboxDump> {
        self.ring
            .lock()
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of dumps currently retained.
    #[must_use]
    pub fn retained(&self) -> usize {
        self.ring.lock().map(|r| r.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BlackboxDump {
        BlackboxDump {
            reason: "deadline".into(),
            shard: 1,
            tsc: 42,
            events: vec![
                TraceEvent {
                    tsc: 40,
                    thread: 1,
                    kind: TraceEventKind::Span,
                    a: 0xabc,
                    b: SpanPhase::Enqueue.code(),
                },
                TraceEvent {
                    tsc: 41,
                    thread: 0,
                    kind: TraceEventKind::Refill,
                    a: 3,
                    b: 0,
                },
            ],
            shards: vec![
                ShardState {
                    shard: 0,
                    slot_state: "empty",
                    ring_occupancy: 0,
                    down: false,
                },
                ShardState {
                    shard: 1,
                    slot_state: "request",
                    ring_occupancy: 17,
                    down: false,
                },
            ],
            heat: "shard 1: deadline_rate 0.50".into(),
        }
    }

    #[test]
    fn render_contains_all_sections() {
        let text = sample().render();
        assert!(text.contains("ngm blackbox: deadline (shard 1)"));
        assert!(text.contains("shard 1: slot=request ring_occupancy=17"));
        assert!(text.contains("deadline_rate 0.50"));
        assert!(text.contains("phase=enqueue"), "{text}");
        assert!(text.contains("refill a=3"));
        assert!(text.contains("end blackbox"));
    }

    #[test]
    fn render_labels_disabled_tracing() {
        let mut d = sample();
        d.events.clear();
        assert!(d.render().contains("tracing disabled"));
    }

    #[test]
    fn rate_limiter_allows_then_suppresses() {
        let r = BlackboxRecorder::new();
        assert!(r.should_emit(), "first claim wins");
        assert!(!r.should_emit(), "second within the interval is suppressed");
    }

    #[test]
    fn recorders_do_not_contend() {
        let a = BlackboxRecorder::new();
        let b = BlackboxRecorder::new();
        assert!(a.should_emit());
        assert!(
            b.should_emit(),
            "a claim on one recorder must not suppress another"
        );
    }

    #[test]
    fn ring_retains_and_evicts() {
        let r = BlackboxRecorder::with_limits(Duration::ZERO, 2);
        for i in 0..3 {
            let mut d = sample();
            d.tsc = i;
            r.emit(d);
        }
        let kept = r.recent();
        assert_eq!(kept.len(), 2, "bounded at the retain depth");
        assert_eq!(kept[0].tsc, 1, "oldest evicted first");
        assert_eq!(kept[1].tsc, 2);
        assert_eq!(r.retained(), 2);
    }

    #[test]
    fn zero_interval_recorder_always_emits() {
        let r = BlackboxRecorder::with_limits(Duration::ZERO, 4);
        assert!(r.should_emit());
        assert!(r.should_emit(), "zero spacing never suppresses");
    }
}
