//! Blackbox flight recorder: structured post-mortems for request-path
//! failures.
//!
//! When the tier hits a failure edge — a deadline expiry, a shard death,
//! the first degradation to the inline fallback — a typed error tells
//! the caller *what* happened but discards the context that explains
//! *why*. The blackbox captures that context at the moment of failure:
//! the last-K trace events of the implicated shard, every shard's slot
//! state and ring occupancy, and a heat snapshot, rendered as one framed
//! text dump to stderr and (when `NGM_BLACKBOX_PATH` is set) appended to
//! a file.
//!
//! Emission is rate-limited process-wide: callers claim a slot with
//! [`should_emit`] *before* assembling a dump, so the suppressed common
//! case costs one relaxed atomic read — no allocation, no formatting.
//! A wedged shard under churn produces a dump every
//! [`MIN_INTERVAL`] at most, not one per failed request.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::span::SpanPhase;
use crate::trace::{TraceEvent, TraceEventKind};

/// Minimum spacing between emitted dumps.
pub const MIN_INTERVAL: Duration = Duration::from_millis(250);

/// Environment variable naming the file dumps are appended to.
pub const PATH_ENV: &str = "NGM_BLACKBOX_PATH";

/// Default trace-tail depth captured into a dump.
pub const DEFAULT_LAST_K: usize = 64;

/// One shard's state line in a dump.
#[derive(Debug, Clone)]
pub struct ShardState {
    /// Shard index.
    pub shard: usize,
    /// Request-slot protocol state label (`empty`/`request`/...).
    pub slot_state: &'static str,
    /// Free-ring occupancy.
    pub ring_occupancy: u64,
    /// Whether the shard's service thread is down.
    pub down: bool,
}

/// A captured post-mortem, ready to render.
#[derive(Debug, Clone)]
pub struct BlackboxDump {
    /// What tripped the recorder (e.g. `"deadline"`, `"failover"`).
    pub reason: String,
    /// Shard the failure implicates.
    pub shard: usize,
    /// Capture timestamp ([`crate::clock::cycles_now`]).
    pub tsc: u64,
    /// Last-K trace events of the implicated shard (oldest first;
    /// empty when tracing is disabled).
    pub events: Vec<TraceEvent>,
    /// Per-shard slot/ring state at capture time.
    pub shards: Vec<ShardState>,
    /// Pre-rendered heat-snapshot lines (the caller owns the heat
    /// types; the recorder only archives their rendering).
    pub heat: String,
}

impl BlackboxDump {
    /// Renders the framed text dump.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== ngm blackbox: {} (shard {}) ===",
            self.reason, self.shard
        );
        let _ = writeln!(out, "captured_tsc: {}", self.tsc);
        let _ = writeln!(out, "--- shard states ---");
        for s in &self.shards {
            let _ = writeln!(
                out,
                "shard {}: slot={} ring_occupancy={} down={}",
                s.shard, s.slot_state, s.ring_occupancy, s.down
            );
        }
        let _ = writeln!(out, "--- heat snapshot ---");
        if self.heat.is_empty() {
            let _ = writeln!(out, "(no heat data)");
        } else {
            for line in self.heat.lines() {
                let _ = writeln!(out, "{line}");
            }
        }
        let _ = writeln!(
            out,
            "--- last {} trace events (shard {}) ---",
            self.events.len(),
            self.shard
        );
        if self.events.is_empty() {
            let _ = writeln!(out, "(tracing disabled: set trace_capacity > 0)");
        }
        for e in &self.events {
            // Span events decode their phase; others print raw payloads.
            if e.kind == TraceEventKind::Span {
                let phase = SpanPhase::from_code(e.b).map_or("?", SpanPhase::label);
                let _ = writeln!(
                    out,
                    "tsc={} thread={} span id={:#x} phase={phase}",
                    e.tsc, e.thread, e.a
                );
            } else {
                let _ = writeln!(
                    out,
                    "tsc={} thread={} {} a={} b={}",
                    e.tsc,
                    e.thread,
                    e.kind.label(),
                    e.a,
                    e.b
                );
            }
        }
        let _ = writeln!(out, "=== end blackbox ===");
        out
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Millis since process epoch of the last emitted dump; 0 = never.
static LAST_EMIT_MS: AtomicU64 = AtomicU64::new(0);

/// Claims the process-wide emission slot. Returns `true` at most once
/// per [`MIN_INTERVAL`]; call this *before* assembling a dump so the
/// rate-limited path never allocates.
#[must_use]
pub fn should_emit() -> bool {
    // +1 so a claim in the first millisecond is distinguishable from
    // the "never emitted" sentinel.
    let now_ms = epoch().elapsed().as_millis() as u64 + 1;
    let min_ms = MIN_INTERVAL.as_millis() as u64;
    let last = LAST_EMIT_MS.load(Ordering::Relaxed);
    if last != 0 && now_ms.saturating_sub(last) < min_ms {
        return false;
    }
    // One winner per interval; losers observe the winner's store.
    LAST_EMIT_MS
        .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
}

/// Resets the rate limiter (test isolation only).
#[doc(hidden)]
pub fn reset_rate_limiter_for_tests() {
    LAST_EMIT_MS.store(0, Ordering::Relaxed);
}

/// Renders and writes a dump: stderr always, plus appended to the file
/// named by [`PATH_ENV`] when set. Write failures are swallowed — a
/// flight recorder must never turn a degraded request into a crash.
pub fn emit(dump: &BlackboxDump) {
    let text = dump.render();
    let _ = std::io::stderr().write_all(text.as_bytes());
    if let Ok(path) = std::env::var(PATH_ENV) {
        if !path.is_empty() {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = f.write_all(text.as_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BlackboxDump {
        BlackboxDump {
            reason: "deadline".into(),
            shard: 1,
            tsc: 42,
            events: vec![
                TraceEvent {
                    tsc: 40,
                    thread: 1,
                    kind: TraceEventKind::Span,
                    a: 0xabc,
                    b: SpanPhase::Enqueue.code(),
                },
                TraceEvent {
                    tsc: 41,
                    thread: 0,
                    kind: TraceEventKind::Refill,
                    a: 3,
                    b: 0,
                },
            ],
            shards: vec![
                ShardState {
                    shard: 0,
                    slot_state: "empty",
                    ring_occupancy: 0,
                    down: false,
                },
                ShardState {
                    shard: 1,
                    slot_state: "request",
                    ring_occupancy: 17,
                    down: false,
                },
            ],
            heat: "shard 1: deadline_rate 0.50".into(),
        }
    }

    #[test]
    fn render_contains_all_sections() {
        let text = sample().render();
        assert!(text.contains("ngm blackbox: deadline (shard 1)"));
        assert!(text.contains("shard 1: slot=request ring_occupancy=17"));
        assert!(text.contains("deadline_rate 0.50"));
        assert!(text.contains("phase=enqueue"), "{text}");
        assert!(text.contains("refill a=3"));
        assert!(text.contains("end blackbox"));
    }

    #[test]
    fn render_labels_disabled_tracing() {
        let mut d = sample();
        d.events.clear();
        assert!(d.render().contains("tracing disabled"));
    }

    #[test]
    fn rate_limiter_allows_then_suppresses() {
        reset_rate_limiter_for_tests();
        assert!(should_emit(), "first claim wins");
        assert!(!should_emit(), "second within the interval is suppressed");
        reset_rate_limiter_for_tests();
        assert!(should_emit(), "reset re-arms");
    }
}
