//! Continuous flight recorder: per-scrape tier state as JSONL.
//!
//! The blackbox ([`crate::blackbox`]) answers "what just failed"; the
//! flight recorder answers "what was the tier doing for the last ten
//! minutes". Every observer scrape appends one [`RecordFrame`] — the
//! serving-shard count, each slot's lifecycle state, windowed per-shard
//! heat, and the tier-wide deadline/fallback/scale counters — as one
//! JSON line. An offline analyzer (`repro obs`) replays the file into a
//! shard-count/heat timeline and cross-checks it against the `Scale`
//! trace events of the same run.
//!
//! The format is deliberately flat, hand-rolled JSON: it parses with
//! the hand-rolled reader here ([`RecordFrame::parse`]) *and* with any
//! real JSON tool (`jq`), and needs no serialization dependency.
//! Rotation is size-based and bounded: when the active file would
//! exceed the configured budget it is renamed to `<path>.1` (replacing
//! any previous rotation), so disk usage never exceeds twice the
//! budget.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Default rotation budget for the active recording file.
pub const DEFAULT_ROTATE_BYTES: u64 = 8 * 1024 * 1024;

/// Lifecycle glyphs used in [`RecordFrame::states`]: one per shard
/// slot, in slot order.
pub const STATE_GLYPHS: [(char, &str); 4] = [
    ('.', "dormant"),
    ('S', "serving"),
    ('D', "draining"),
    ('R', "retired"),
];

/// One shard's windowed heat sample inside a frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardSample {
    /// Shard index.
    pub shard: u64,
    /// Heat score at scrape time.
    pub score: u64,
    /// Calls in the heat window.
    pub calls: u64,
    /// Deadline expiries in the heat window.
    pub deadlines: u64,
    /// Post retries in the heat window.
    pub retries: u64,
    /// Instantaneous free-ring occupancy.
    pub ring: u64,
}

/// One scrape's worth of tier state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordFrame {
    /// Scrape timestamp ([`crate::clock::cycles_now`]).
    pub tsc: u64,
    /// Shards in the Serving lifecycle state at scrape time.
    pub serving: u64,
    /// One glyph per slot, slot order (see [`STATE_GLYPHS`]).
    pub states: String,
    /// Deadline expiries, cumulative tier-wide.
    pub deadlines: u64,
    /// Inline-fallback allocations, cumulative tier-wide.
    pub fallbacks: u64,
    /// Scale-up decisions, cumulative.
    pub scale_up: u64,
    /// Scale-down decisions, cumulative.
    pub scale_down: u64,
    /// Cycles spent in observability work so far (scrapes + record
    /// appends + endpoint renders), cumulative.
    pub obs_cycles: u64,
    /// Windowed heat per serving/draining shard.
    pub shards: Vec<ShardSample>,
}

impl RecordFrame {
    /// Renders the frame as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(160 + self.shards.len() * 96);
        let _ = write!(
            out,
            "{{\"tsc\":{},\"serving\":{},\"states\":\"{}\",\"deadlines\":{},\"fallbacks\":{},\"scale_up\":{},\"scale_down\":{},\"obs_cycles\":{},\"shards\":[",
            self.tsc,
            self.serving,
            self.states,
            self.deadlines,
            self.fallbacks,
            self.scale_up,
            self.scale_down,
            self.obs_cycles
        );
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":{},\"score\":{},\"calls\":{},\"deadlines\":{},\"retries\":{},\"ring\":{}}}",
                s.shard, s.score, s.calls, s.deadlines, s.retries, s.ring
            );
        }
        out.push_str("]}");
        out
    }

    /// Parses one JSON line produced by [`RecordFrame::to_json`].
    /// Returns `None` for malformed lines (e.g. a line truncated by
    /// process death — a flight recorder must tolerate its own crash).
    #[must_use]
    pub fn parse(line: &str) -> Option<RecordFrame> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        let (head, shards_src) = line.split_once("\"shards\":[")?;
        let shards_src = shards_src.strip_suffix("]}")?;
        let mut shards = Vec::new();
        if !shards_src.is_empty() {
            for obj in shards_src.split("},") {
                let obj = obj.trim_start_matches('{').trim_end_matches('}');
                shards.push(ShardSample {
                    shard: field_u64(obj, "shard")?,
                    score: field_u64(obj, "score")?,
                    calls: field_u64(obj, "calls")?,
                    deadlines: field_u64(obj, "deadlines")?,
                    retries: field_u64(obj, "retries")?,
                    ring: field_u64(obj, "ring")?,
                });
            }
        }
        Some(RecordFrame {
            tsc: field_u64(head, "tsc")?,
            serving: field_u64(head, "serving")?,
            states: field_str(head, "states")?,
            deadlines: field_u64(head, "deadlines")?,
            fallbacks: field_u64(head, "fallbacks")?,
            scale_up: field_u64(head, "scale_up")?,
            scale_down: field_u64(head, "scale_down")?,
            obs_cycles: field_u64(head, "obs_cycles")?,
            shards,
        })
    }
}

fn field_u64(src: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = src.find(&pat)? + pat.len();
    let rest = &src[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str(src: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = src.find(&pat)? + pat.len();
    let rest = &src[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// A size-bounded JSONL appender for [`RecordFrame`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    path: PathBuf,
    out: BufWriter<File>,
    written: u64,
    rotate_bytes: u64,
    frames: u64,
}

impl FlightRecorder {
    /// Creates (truncating) the recording at `path`. `rotate_bytes` of
    /// 0 selects [`DEFAULT_ROTATE_BYTES`].
    pub fn create(path: impl Into<PathBuf>, rotate_bytes: u64) -> std::io::Result<FlightRecorder> {
        let path = path.into();
        let out = BufWriter::new(File::create(&path)?);
        Ok(FlightRecorder {
            path,
            out,
            written: 0,
            rotate_bytes: if rotate_bytes == 0 {
                DEFAULT_ROTATE_BYTES
            } else {
                rotate_bytes
            },
            frames: 0,
        })
    }

    /// Appends one frame, rotating first when the active file would
    /// exceed the budget. Each line is flushed through to the OS so a
    /// crash loses at most the line being written.
    pub fn append(&mut self, frame: &RecordFrame) -> std::io::Result<()> {
        let line = frame.to_json();
        let len = line.len() as u64 + 1;
        if self.written > 0 && self.written + len > self.rotate_bytes {
            self.rotate()?;
        }
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        self.written += len;
        self.frames += 1;
        Ok(())
    }

    fn rotate(&mut self) -> std::io::Result<()> {
        self.out.flush()?;
        let mut rotated = self.path.clone().into_os_string();
        rotated.push(".1");
        std::fs::rename(&self.path, &rotated)?;
        self.out = BufWriter::new(File::create(&self.path)?);
        self.written = 0;
        Ok(())
    }

    /// Path of the active recording file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes written to the *active* file (resets on rotation).
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Frames appended over the recorder's lifetime (across rotations).
    #[must_use]
    pub fn frames_recorded(&self) -> u64 {
        self.frames
    }
}

/// Reads every parseable frame from a recording file, oldest first.
/// Malformed lines (a torn tail write) are skipped, not fatal.
pub fn read_recording(path: impl AsRef<Path>) -> std::io::Result<Vec<RecordFrame>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text.lines().filter_map(RecordFrame::parse).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tsc: u64, serving: u64) -> RecordFrame {
        RecordFrame {
            tsc,
            serving,
            states: "SS.R".into(),
            deadlines: 3,
            fallbacks: 1,
            scale_up: 2,
            scale_down: 1,
            obs_cycles: 999,
            shards: vec![
                ShardSample {
                    shard: 0,
                    score: 40,
                    calls: 100,
                    deadlines: 1,
                    retries: 0,
                    ring: 56,
                },
                ShardSample {
                    shard: 1,
                    score: 7,
                    calls: 12,
                    deadlines: 0,
                    retries: 2,
                    ring: 64,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let f = frame(1234, 2);
        let parsed = RecordFrame::parse(&f.to_json()).expect("parse own output");
        assert_eq!(parsed, f);
    }

    #[test]
    fn empty_shards_round_trip() {
        let f = RecordFrame {
            tsc: 1,
            states: "....".into(),
            ..RecordFrame::default()
        };
        assert_eq!(RecordFrame::parse(&f.to_json()), Some(f));
    }

    #[test]
    fn malformed_lines_parse_to_none() {
        assert_eq!(RecordFrame::parse(""), None);
        assert_eq!(RecordFrame::parse("{\"tsc\":12"), None);
        assert_eq!(RecordFrame::parse("not json at all"), None);
        // A torn write: valid prefix, truncated shards array.
        let whole = frame(9, 1).to_json();
        assert_eq!(RecordFrame::parse(&whole[..whole.len() - 10]), None);
    }

    #[test]
    fn recorder_appends_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("ngm-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("flight.jsonl");
        let mut rec = FlightRecorder::create(&path, 0).expect("create");
        for i in 0..5 {
            rec.append(&frame(i, 2)).expect("append");
        }
        assert_eq!(rec.frames_recorded(), 5);
        let frames = read_recording(&path).expect("read");
        assert_eq!(frames.len(), 5);
        assert_eq!(frames[4].tsc, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_bounds_the_active_file() {
        let dir = std::env::temp_dir().join(format!("ngm-rot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("flight.jsonl");
        let budget = 512u64;
        let mut rec = FlightRecorder::create(&path, budget).expect("create");
        for i in 0..100 {
            rec.append(&frame(i, 2)).expect("append");
        }
        assert!(rec.bytes_written() <= budget, "active file over budget");
        let rotated = dir.join("flight.jsonl.1");
        assert!(rotated.exists(), "rotation never happened");
        assert!(
            std::fs::metadata(&rotated).expect("rotated meta").len() <= budget,
            "rotated file over budget"
        );
        // The active file holds the newest frames.
        let tail = read_recording(&path).expect("read");
        assert_eq!(tail.last().expect("frames").tsc, 99);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
