//! Cycle-resolution timestamps.
//!
//! On x86_64 this reads the TSC directly (`rdtsc`), which costs ~20
//! cycles and does not serialize the pipeline — cheap enough to bracket
//! individual allocator calls. Caveats, also documented in DESIGN.md:
//!
//! * Modern TSCs are *invariant* (constant-rate, synchronized across
//!   cores), so deltas are meaningful even when a request is timed on the
//!   client core and a reply lands after a migration. On exotic or very
//!   old hardware without invariant TSC, cross-core deltas can skew.
//! * `rdtsc` is not a serializing instruction; out-of-order execution can
//!   shift a reading by a few cycles. Fine for histograms, not for
//!   cycle-exact microbenchmarks (use fenced variants there).
//!
//! On other architectures the fallback is `Instant`-based monotonic
//! nanoseconds; [`source`] reports which one is active so exported
//! metrics can label their unit.

#[cfg(not(target_arch = "x86_64"))]
use std::sync::OnceLock;
#[cfg(not(target_arch = "x86_64"))]
use std::time::Instant;

/// Current timestamp in cycles (x86_64) or nanoseconds (elsewhere).
///
/// Only differences between two readings are meaningful.
#[must_use]
pub fn cycles_now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_rdtsc` has no preconditions; it reads a counter register.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let epoch = *EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Unit label for [`cycles_now`] readings: `"tsc_cycles"` or
/// `"monotonic_ns"`.
#[must_use]
pub const fn source() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        "tsc_cycles"
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "monotonic_ns"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_advance() {
        let a = cycles_now();
        // Do a little real work so even a coarse clock ticks.
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = cycles_now();
        assert!(b >= a, "timestamp went backwards: {a} -> {b}");
    }

    #[test]
    fn source_is_labelled() {
        assert!(["tsc_cycles", "monotonic_ns"].contains(&source()));
    }
}
