//! Cycle-resolution timestamps.
//!
//! On x86_64 this reads the TSC directly (`rdtsc`), which costs ~20
//! cycles and does not serialize the pipeline — cheap enough to bracket
//! individual allocator calls. Caveats, also documented in DESIGN.md:
//!
//! * Modern TSCs are *invariant* (constant-rate, synchronized across
//!   cores), so deltas are meaningful even when a request is timed on the
//!   client core and a reply lands after a migration. On exotic or very
//!   old hardware without invariant TSC, cross-core deltas can skew.
//! * `rdtsc` is not a serializing instruction; out-of-order execution can
//!   shift a reading by a few cycles. Fine for histograms, not for
//!   cycle-exact microbenchmarks (use fenced variants there).
//!
//! On other architectures the fallback is `Instant`-based monotonic
//! nanoseconds; [`source`] reports which one is active so exported
//! metrics can label their unit.

use std::sync::OnceLock;
#[cfg(not(target_arch = "x86_64"))]
use std::time::Instant;

/// Current timestamp in cycles (x86_64) or nanoseconds (elsewhere).
///
/// Only differences between two readings are meaningful.
#[must_use]
pub fn cycles_now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_rdtsc` has no preconditions; it reads a counter register.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let epoch = *EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Unit label for [`cycles_now`] readings: `"tsc_cycles"` or
/// `"monotonic_ns"`.
#[must_use]
pub const fn source() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        "tsc_cycles"
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "monotonic_ns"
    }
}

/// [`cycles_now`] ticks per wall-clock nanosecond, calibrated once per
/// process.
///
/// On x86_64 the first call measures the TSC against `Instant` over a
/// short window (a few ms — long enough that the ~±1µs `Instant`
/// resolution is noise, short enough not to stall startup); later calls
/// return the cached ratio. On the monotonic-ns fallback the ratio is
/// exactly 1.0. A degenerate measurement (zero elapsed, absurd ratio)
/// falls back to 1.0 rather than poisoning every conversion.
#[must_use]
pub fn cycles_per_ns() -> f64 {
    static RATIO: OnceLock<f64> = OnceLock::new();
    *RATIO.get_or_init(calibrate)
}

#[cfg(target_arch = "x86_64")]
fn calibrate() -> f64 {
    let wall0 = std::time::Instant::now();
    let tsc0 = cycles_now();
    // Busy-wait ~2 ms: sleeping would let the scheduler stretch the
    // window arbitrarily, and the TSC is invariant (counts through
    // idle), so a spin gives the tightest wall↔tsc pairing.
    while wall0.elapsed() < std::time::Duration::from_millis(2) {
        std::hint::spin_loop();
    }
    let tsc1 = cycles_now();
    let ns = wall0.elapsed().as_nanos() as f64;
    let ratio = (tsc1.saturating_sub(tsc0)) as f64 / ns;
    // Plausibility gate: real TSCs run 0.5–6 GHz. Outside that, the
    // measurement is garbage (e.g. a paused VM mid-window).
    if ns <= 0.0 || !(0.1..=20.0).contains(&ratio) {
        1.0
    } else {
        ratio
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn calibrate() -> f64 {
    1.0
}

/// Converts a [`cycles_now`] delta to nanoseconds using the calibrated
/// ratio ([`cycles_per_ns`]). Exact (identity) on the monotonic-ns
/// fallback; within calibration error on x86_64.
#[must_use]
pub fn cycles_to_ns(cycles: u64) -> u64 {
    let ratio = cycles_per_ns();
    (cycles as f64 / ratio).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_advance() {
        let a = cycles_now();
        // Do a little real work so even a coarse clock ticks.
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = cycles_now();
        assert!(b >= a, "timestamp went backwards: {a} -> {b}");
    }

    #[test]
    fn source_is_labelled() {
        assert!(["tsc_cycles", "monotonic_ns"].contains(&source()));
    }

    #[test]
    fn calibration_is_cached_and_plausible() {
        let a = cycles_per_ns();
        let b = cycles_per_ns();
        assert_eq!(a.to_bits(), b.to_bits(), "calibrated once, then cached");
        assert!((0.1..=20.0).contains(&a), "implausible ratio {a}");
        if source() == "monotonic_ns" {
            assert_eq!(a, 1.0, "ns clock needs no conversion");
        }
    }

    #[test]
    fn cycles_to_ns_tracks_wall_clock() {
        // A measured busy window converted to ns must land within a loose
        // factor of the wall clock (scheduler noise allowed).
        let wall = std::time::Instant::now();
        let t0 = cycles_now();
        while wall.elapsed() < std::time::Duration::from_millis(5) {
            std::hint::spin_loop();
        }
        let dt = cycles_now() - t0;
        let ns = cycles_to_ns(dt) as f64;
        let wall_ns = wall.elapsed().as_nanos() as f64;
        assert!(
            ns > wall_ns * 0.2 && ns < wall_ns * 5.0,
            "converted {ns} ns vs wall {wall_ns} ns"
        );
    }

    #[test]
    fn cycles_to_ns_is_monotone() {
        assert_eq!(cycles_to_ns(0), 0);
        assert!(cycles_to_ns(1_000_000) <= cycles_to_ns(2_000_000));
    }
}
