//! Telemetry layer for the offloaded allocator runtime.
//!
//! The paper's argument is quantitative: offloading pays off only when the
//! round-trip to the service core (`T_comm`, §4.1) undercuts the cache
//! misses it avoids. Validating that model needs measurement machinery
//! whose own overhead does not distort the quantity being measured. This
//! crate provides three pieces, all dependency-free:
//!
//! * [`hist::LatencyHistogram`] — a lock-free log-linear histogram.
//!   Recording is one relaxed bucket increment plus one relaxed sum
//!   increment; percentiles are computed at snapshot time, off the hot
//!   path.
//! * [`trace::TraceRing`] — a bounded per-thread event ring for
//!   alloc/free/post/refill/wait-transition events. Overflow drops the
//!   oldest event and counts the drop; nothing is lost silently.
//! * [`export::MetricsSnapshot`] — a named bag of counters, gauges
//!   (plain and labeled), and histogram snapshots renderable as
//!   Prometheus text exposition or a JSON document.
//! * [`sites::SiteProfiler`] — a sampled (1-in-N) allocation-site heap
//!   profiler: call-site hash → live bytes/blocks/peak, with a shutdown
//!   leak report listing surviving sites.
//! * [`span`] — request-lifecycle spans: phase codes, alias-free span
//!   ids minted from the slot publish sequence, and reconstruction of
//!   spans from drained trace rings.
//! * [`window::HeatWindow`] — rolling-window aggregation of cumulative
//!   shard samples into recent rates and windowed phase percentiles.
//! * [`blackbox`] — a rate-limited post-mortem recorder that archives
//!   the last-K trace events, slot states, and a heat snapshot on
//!   request-path failures, retaining recent dumps in memory.
//! * [`server::HttpServer`] — a minimal HTTP/1.0 server for live
//!   observability endpoints (`/metrics`, `/heat`, `/readyz`, ...).
//! * [`recorder::FlightRecorder`] — a continuous JSONL recorder that
//!   appends per-scrape tier state with bounded size-based rotation.
//!
//! Timestamps come from [`clock::cycles_now`]: `rdtsc` on x86_64, a
//! monotonic-nanosecond fallback elsewhere (see that module for
//! caveats); [`clock::cycles_per_ns`] calibrates a cycles→ns conversion
//! once per process.

pub mod blackbox;
pub mod clock;
pub mod export;
pub mod hist;
pub mod recorder;
pub mod server;
pub mod sites;
pub mod span;
pub mod trace;
pub mod window;

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
///
/// All operations are relaxed; counters are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time sampled value (ring occupancy, wait phase, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrites the sample.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Last sample.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_overwrites() {
        let g = Gauge::new();
        g.set(7);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }
}
