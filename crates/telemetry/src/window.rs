//! Rolling-window aggregation for shard-heat reporting.
//!
//! A [`HeatWindow`] holds the last few [`HeatFrame`]s sampled from one
//! shard. Counters and phase histograms in a frame are *cumulative*
//! (monotone since shard start); the window's aggregate is the newest
//! frame minus the oldest — counter deltas by subtraction, histogram
//! windows via [`HistogramSnapshot::diff`] — so percentiles and rates
//! describe *recent* behavior, not the lifetime average. This is the
//! signal shape the rebalance policy and the future elastic controller
//! consume: a shard that was hot an hour ago but idle now must read cold.

use std::collections::VecDeque;

use crate::hist::HistogramSnapshot;

/// One cumulative sample of a shard's state.
#[derive(Debug, Clone, Default)]
pub struct HeatFrame {
    /// Sample timestamp ([`crate::clock::cycles_now`]).
    pub tsc: u64,
    /// Free-ring occupancy at sample time (instantaneous).
    pub ring_occupancy: u64,
    /// Synchronous calls served, cumulative.
    pub calls: u64,
    /// Deadline expiries, cumulative.
    pub deadlines: u64,
    /// Full-ring post retries, cumulative.
    pub retries: u64,
    /// Inline-fallback allocations, cumulative (tier-wide counter
    /// sampled per shard report).
    pub fallbacks: u64,
    /// Cumulative phase histograms, caller-defined order (the runtime
    /// uses queue/claim/serve/publish/observe).
    pub phases: Vec<HistogramSnapshot>,
    /// Per-size-class refill demand at sample time (instantaneous,
    /// published by the shard's idle hook).
    pub demand: Vec<u64>,
}

/// The windowed aggregate: newest frame minus the window's baseline.
#[derive(Debug, Clone)]
pub struct HeatDelta {
    /// Cycles spanned by the window (0 when only one frame exists).
    pub span_tsc: u64,
    /// Calls within the window.
    pub calls: u64,
    /// Deadlines within the window.
    pub deadlines: u64,
    /// Post retries within the window.
    pub retries: u64,
    /// Fallback allocations within the window.
    pub fallbacks: u64,
    /// Latest ring occupancy (instantaneous, not differenced).
    pub ring_occupancy: u64,
    /// Windowed phase distributions, same order as the frames'.
    pub phases: Vec<HistogramSnapshot>,
    /// Latest per-size-class refill demand (instantaneous).
    pub demand: Vec<u64>,
}

impl HeatDelta {
    /// Deadlines per call in the window (0 when no calls).
    #[must_use]
    pub fn deadline_rate(&self) -> f64 {
        rate(self.deadlines, self.calls)
    }

    /// Post retries per call in the window (0 when no calls).
    #[must_use]
    pub fn retry_rate(&self) -> f64 {
        rate(self.retries, self.calls)
    }

    /// Fallback allocations per call in the window (0 when no calls).
    #[must_use]
    pub fn fallback_rate(&self) -> f64 {
        rate(self.fallbacks, self.calls)
    }
}

fn rate(num: u64, denom: u64) -> f64 {
    if denom == 0 {
        0.0
    } else {
        num as f64 / denom as f64
    }
}

/// A bounded rolling window of [`HeatFrame`]s (oldest dropped on
/// overflow).
#[derive(Debug)]
pub struct HeatWindow {
    frames: VecDeque<HeatFrame>,
    capacity: usize,
}

/// Default window depth: with one frame per `heat_report()` call this
/// covers the last 8 sampling intervals.
pub const DEFAULT_HEAT_FRAMES: usize = 8;

impl Default for HeatWindow {
    fn default() -> Self {
        Self::new(DEFAULT_HEAT_FRAMES)
    }
}

impl HeatWindow {
    /// A window retaining at most `capacity` frames (minimum 2: a
    /// window needs a baseline and a head).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        HeatWindow {
            frames: VecDeque::new(),
            capacity: capacity.max(2),
        }
    }

    /// Appends a sample, dropping the oldest beyond capacity.
    pub fn push(&mut self, frame: HeatFrame) {
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
        }
        self.frames.push_back(frame);
    }

    /// Frames currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frames have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Maximum retained frames.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained frames, oldest first. This is the raw time series an
    /// observability endpoint exposes; the windowed aggregate is
    /// derived, the frames are the evidence.
    pub fn frames(&self) -> impl Iterator<Item = &HeatFrame> {
        self.frames.iter()
    }

    /// The windowed aggregate: newest frame minus the oldest retained
    /// frame. With a single frame the baseline is zero — the aggregate
    /// is then "everything since shard start", which is the honest
    /// answer for a first report. `None` before any frame is pushed.
    #[must_use]
    pub fn windowed(&self) -> Option<HeatDelta> {
        let newest = self.frames.back()?;
        let zero = HeatFrame::default();
        let oldest = if self.frames.len() > 1 {
            self.frames.front().expect("non-empty")
        } else {
            &zero
        };
        let phases = newest
            .phases
            .iter()
            .enumerate()
            .map(|(i, now)| match oldest.phases.get(i) {
                Some(then) => now.diff(then),
                None => now.clone(),
            })
            .collect();
        Some(HeatDelta {
            span_tsc: newest.tsc.saturating_sub(oldest.tsc),
            calls: newest.calls.saturating_sub(oldest.calls),
            deadlines: newest.deadlines.saturating_sub(oldest.deadlines),
            retries: newest.retries.saturating_sub(oldest.retries),
            fallbacks: newest.fallbacks.saturating_sub(oldest.fallbacks),
            ring_occupancy: newest.ring_occupancy,
            phases,
            demand: newest.demand.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    fn frame(tsc: u64, calls: u64, deadlines: u64) -> HeatFrame {
        HeatFrame {
            tsc,
            calls,
            deadlines,
            ..HeatFrame::default()
        }
    }

    #[test]
    fn empty_window_has_no_aggregate() {
        assert!(HeatWindow::default().windowed().is_none());
    }

    #[test]
    fn single_frame_reads_cumulative() {
        let mut w = HeatWindow::new(4);
        w.push(frame(100, 10, 2));
        let d = w.windowed().expect("one frame suffices");
        assert_eq!(d.calls, 10);
        assert_eq!(d.deadlines, 2);
        assert_eq!(d.deadline_rate(), 0.2);
    }

    #[test]
    fn window_subtracts_the_baseline() {
        let mut w = HeatWindow::new(3);
        w.push(frame(100, 10, 2));
        w.push(frame(200, 50, 2));
        w.push(frame(300, 100, 12));
        let d = w.windowed().expect("frames pushed");
        assert_eq!(d.span_tsc, 200);
        assert_eq!(d.calls, 90, "newest minus oldest");
        assert_eq!(d.deadlines, 10);
        // A fourth frame evicts the first: the baseline slides.
        w.push(frame(400, 120, 12));
        let d = w.windowed().expect("frames pushed");
        assert_eq!(d.calls, 70, "window slid past the first frame");
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn phase_percentiles_are_windowed() {
        let h = LatencyHistogram::new();
        for v in [10u64, 10, 10] {
            h.record(v);
        }
        let old = HeatFrame {
            tsc: 1,
            phases: vec![h.snapshot()],
            ..HeatFrame::default()
        };
        for v in [9_000u64, 9_000, 9_000] {
            h.record(v);
        }
        let new = HeatFrame {
            tsc: 2,
            phases: vec![h.snapshot()],
            ..HeatFrame::default()
        };
        let mut w = HeatWindow::new(2);
        w.push(old);
        w.push(new);
        let d = w.windowed().expect("frames pushed");
        assert_eq!(d.phases[0].count(), 3, "only the window's samples");
        assert!(
            d.phases[0].p50() >= 9_000,
            "old cheap samples must not drag the windowed p50 down: {}",
            d.phases[0].p50()
        );
    }

    #[test]
    fn rates_handle_zero_calls() {
        let mut w = HeatWindow::new(2);
        w.push(frame(1, 0, 0));
        let d = w.windowed().expect("frames pushed");
        assert_eq!(d.deadline_rate(), 0.0);
        assert_eq!(d.retry_rate(), 0.0);
    }
}
