//! Metric exporters: Prometheus text exposition and JSON snapshots.
//!
//! The runtime assembles a [`MetricsSnapshot`] — an ordered bag of named
//! counters, gauges, and histogram snapshots — and the exporters render
//! it. Histograms are exported Prometheus-summary style (`{quantile=...}`
//! series plus `_count`/`_sum`) rather than as 976 raw `_bucket` series.
//!
//! Both encoders are hand-rolled; the workspace builds without serde.

use crate::hist::HistogramSnapshot;

/// A point-in-time collection of named metrics.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    labeled_gauges: Vec<LabeledSample>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

/// One gauge sample carrying a Prometheus label set. Label *names* must
/// be Prometheus-safe (callers use static literals); label *values* are
/// arbitrary strings — the renderers escape them.
#[derive(Debug, Clone)]
struct LabeledSample {
    name: String,
    labels: Vec<(String, String)>,
    value: i64,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a counter sample. Names must be Prometheus-safe
    /// (`[a-zA-Z_][a-zA-Z0-9_]*`); callers use static literals.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        self.counters.push((name.into(), value));
        self
    }

    /// Adds a gauge sample.
    pub fn gauge(&mut self, name: impl Into<String>, value: i64) -> &mut Self {
        self.gauges.push((name.into(), value));
        self
    }

    /// Adds a gauge sample with a label set (e.g. per allocation site or
    /// per PMU event). Label values may contain any characters; the
    /// renderers escape them.
    pub fn labeled_gauge(
        &mut self,
        name: impl Into<String>,
        labels: &[(&str, &str)],
        value: i64,
    ) -> &mut Self {
        self.labeled_gauges.push(LabeledSample {
            name: name.into(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
        self
    }

    /// Adds a histogram snapshot.
    pub fn histogram(&mut self, name: impl Into<String>, snap: HistogramSnapshot) -> &mut Self {
        self.histograms.push((name.into(), snap));
        self
    }

    /// Looks up a histogram by name.
    #[must_use]
    pub fn get_histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Looks up a counter by name.
    #[must_use]
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    #[must_use]
    pub fn get_gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a labeled gauge by name and exact label set (order- and
    /// content-sensitive, as published).
    #[must_use]
    pub fn get_labeled_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.labeled_gauges
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), &(lk, lv))| k == lk && v == lv)
            })
            .map(|s| s.value)
    }

    /// Number of labeled-gauge samples published under `name`.
    #[must_use]
    pub fn labeled_gauge_count(&self, name: &str) -> usize {
        self.labeled_gauges
            .iter()
            .filter(|s| s.name == name)
            .count()
    }

    /// Renders Prometheus text exposition format (version 0.0.4). Every
    /// metric family gets a `# HELP` line derived from the naming
    /// convention (see [`help_text`]) followed by its `# TYPE` line.
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# HELP {name} {}", help_text(name));
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# HELP {name} {}", help_text(name));
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        let mut last_labeled: Option<&str> = None;
        for s in &self.labeled_gauges {
            if last_labeled != Some(s.name.as_str()) {
                let _ = writeln!(out, "# HELP {} {}", s.name, help_text(&s.name));
                let _ = writeln!(out, "# TYPE {} gauge", s.name);
                last_labeled = Some(s.name.as_str());
            }
            let _ = write!(out, "{}{{", s.name);
            for (i, (k, v)) in s.labels.iter().enumerate() {
                let _ = write!(out, "{}{k}=\"{}\"", comma(i), escape_label_value(v));
            }
            let _ = writeln!(out, "}} {}", s.value);
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# HELP {name} {}", help_text(name));
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [
                (0.5, h.p50()),
                (0.9, h.p90()),
                (0.99, h.p99()),
                (1.0, h.max()),
            ] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// Renders a JSON document with full parity to the Prometheus path:
    /// `{"counters":{...},"gauges":{...},"labeled_gauges":[{"name","labels","value"},...],"histograms":{name:{count,sum,mean,p50,p90,p99,max,buckets:[[lo,hi,n],...]}}}`.
    /// Labeled gauges keep their label sets structured (name/labels/
    /// value objects, values escaped as JSON strings) and histograms
    /// carry their occupied buckets, so nothing the text exposition
    /// exports is lost in the JSON form.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let _ = write!(out, "{}{}:{v}", comma(i), json_str(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let _ = write!(out, "{}{}:{v}", comma(i), json_str(name));
        }
        out.push_str("},\"labeled_gauges\":[");
        for (i, s) in self.labeled_gauges.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"name\":{},\"labels\":{{",
                comma(i),
                json_str(&s.name)
            );
            for (j, (k, v)) in s.labels.iter().enumerate() {
                let _ = write!(out, "{}{}:{}", comma(j), json_str(k), json_str(v));
            }
            let _ = write!(out, "}},\"value\":{}}}", s.value);
        }
        out.push_str("],\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let _ = write!(
                out,
                "{}{}:{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},\"buckets\":[",
                comma(i),
                json_str(name),
                h.count(),
                h.sum(),
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max(),
            );
            for (j, (lo, hi, c)) in h.nonzero_buckets().enumerate() {
                let _ = write!(out, "{}[{lo},{hi},{c}]", comma(j));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

fn comma(i: usize) -> &'static str {
    if i == 0 {
        ""
    } else {
        ","
    }
}

/// Derives a `# HELP` description from the metric-name convention
/// (`ngm_` prefix, unit suffix). Generating help from the convention —
/// instead of a per-metric table in this crate — means a series added
/// by any layer of the runtime gets a well-formed HELP line without a
/// registry to keep in sync; the README's metric index carries the
/// prose documentation.
fn help_text(name: &str) -> String {
    // The Prometheus-convention families have fixed, well-known
    // meanings; everything else derives from the naming convention.
    match name {
        "ngm_up" => return "1 while the tier's metrics endpoint is serving.".into(),
        "ngm_build_info" => {
            return "Build metadata carried in labels; the value is always 1.".into()
        }
        "process_start_time_seconds" => {
            return "Start time of the process since the Unix epoch, in seconds.".into()
        }
        _ => {}
    }
    let stem = name.strip_prefix("ngm_").unwrap_or(name);
    if let Some(s) = stem.strip_suffix("_total") {
        format!("Cumulative count of {} events.", words(s))
    } else if let Some(s) = stem.strip_suffix("_cycles") {
        format!("Distribution of {} durations in TSC cycles.", words(s))
    } else if let Some(s) = stem.strip_suffix("_ns") {
        format!("Distribution of {} durations in nanoseconds.", words(s))
    } else if let Some(s) = stem.strip_suffix("_bytes") {
        format!("Gauge of {} in bytes.", words(s))
    } else if let Some(s) = stem.strip_suffix("_blocks") {
        format!("Gauge of {} in blocks.", words(s))
    } else {
        format!("Gauge of {}.", words(stem))
    }
}

fn words(s: &str) -> String {
    s.replace('_', " ")
}

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote, and line feed must be escaped (`\\`, `\"`,
/// `\n`); everything else passes through.
fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Validates Prometheus text exposition format 0.0.4: families
/// announced by `# HELP` + `# TYPE` before their samples, legal metric
/// names, known family kinds, unique families and series, numeric
/// sample values, balanced label quoting. Returns the first violation
/// as an error string.
///
/// This is the acceptance gate shared by the contract tests, the live
/// `/metrics` endpoint tests, and the `repro obs` harness — one
/// validator, applied to rendered and scraped text alike.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::HashSet;
    let mut families: HashSet<&str> = HashSet::new();
    let mut last_help: Option<&str> = None;
    let mut series_seen: HashSet<String> = HashSet::new();
    let name_ok = |n: &str| {
        !n.is_empty()
            && n.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            last_help = rest.split_whitespace().next();
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| format!("TYPE names no metric: {line}"))?;
            let kind = it
                .next()
                .ok_or_else(|| format!("TYPE states no kind: {line}"))?;
            if !name_ok(name) {
                return Err(format!("bad family name: {line}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(format!("bad family kind: {line}"));
            }
            if last_help != Some(name) {
                return Err(format!("TYPE for {name} must follow its HELP line"));
            }
            if !families.insert(name) {
                return Err(format!("family {name} announced twice"));
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("unknown comment form: {line}"));
        }
        if line.is_empty() {
            continue;
        }
        // Sample: `name[{labels}] value`.
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample has no value: {line}"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("non-numeric sample value: {line}"));
        }
        let name = series
            .split(['{', ' '])
            .next()
            .ok_or_else(|| format!("sample has no name: {line}"))?;
        if !name_ok(name) {
            return Err(format!("bad sample name: {line}"));
        }
        // A summary's `_sum`/`_count` samples belong to the base family.
        let family_known = families.contains(name)
            || name
                .strip_suffix("_sum")
                .or_else(|| name.strip_suffix("_count"))
                .is_some_and(|base| families.contains(base));
        if !family_known {
            return Err(format!("sample before its TYPE line: {line}"));
        }
        if !series_seen.insert(series.to_string()) {
            return Err(format!("duplicate series: {series}"));
        }
        if let Some(open) = series.find('{') {
            if !series.ends_with('}') {
                return Err(format!("unterminated label set: {line}"));
            }
            let labels = &series[open + 1..series.len() - 1];
            // Escaped quotes/newlines must keep the sample on one line
            // with balanced quoting.
            if labels.replace("\\\"", "").matches('"').count() % 2 != 0 {
                return Err(format!("unbalanced label quoting: {line}"));
            }
        }
    }
    if families.is_empty() {
        return Err("exposition should not be empty".into());
    }
    Ok(())
}

/// Quotes a string as a JSON string literal (escaping `"`, `\`, and
/// control characters). Public so observability endpoints can build
/// JSON documents by hand without a serialization dependency.
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    fn sample() -> MetricsSnapshot {
        let h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let mut m = MetricsSnapshot::new();
        m.counter("ngm_calls_total", 3)
            .gauge("ngm_ring_occupancy", 2)
            .histogram("ngm_call_cycles", h.snapshot());
        m
    }

    #[test]
    fn prometheus_text_shape() {
        let text = sample().to_prometheus_text();
        assert!(text.contains("# TYPE ngm_calls_total counter"));
        assert!(text.contains("ngm_calls_total 3"));
        assert!(text.contains("# TYPE ngm_ring_occupancy gauge"));
        assert!(text.contains("ngm_ring_occupancy 2"));
        assert!(text.contains("# TYPE ngm_call_cycles summary"));
        assert!(text.contains("ngm_call_cycles{quantile=\"0.5\"}"));
        assert!(text.contains("ngm_call_cycles_count 3"));
        assert!(text.contains("ngm_call_cycles_sum 60"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn json_shape() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ngm_calls_total\":3"));
        assert!(json.contains("\"ngm_ring_occupancy\":2"));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"sum\":60"));
        assert!(json.contains("\"mean\":20.0"));
        // Histogram buckets ride along: values 10, 20, 30 land in three
        // distinct buckets, each `[lower,upper,count]`.
        assert!(json.contains("\"buckets\":[[10,10,1],"), "{json}");
        // Balanced braces (no nesting errors).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_snapshot_renders() {
        let m = MetricsSnapshot::new();
        assert_eq!(
            m.to_json(),
            "{\"counters\":{},\"gauges\":{},\"labeled_gauges\":[],\"histograms\":{}}"
        );
        assert_eq!(m.to_prometheus_text(), "");
    }

    #[test]
    fn json_carries_labeled_gauges_structured() {
        let mut m = MetricsSnapshot::new();
        m.labeled_gauge(
            "ngm_build_info",
            &[("version", "0.1.0"), ("features", "faultinject")],
            1,
        );
        let json = m.to_json();
        assert!(
            json.contains(
                "\"labeled_gauges\":[{\"name\":\"ngm_build_info\",\"labels\":{\"version\":\"0.1.0\",\"features\":\"faultinject\"},\"value\":1}]"
            ),
            "labeled gauges must keep structured label sets: {json}"
        );
    }

    #[test]
    fn json_escapes_quote_and_newline_in_label_values() {
        // Satellite: the JSON path must escape label values with the
        // same care as the text path — a `"` or newline in a site label
        // must not break the document.
        let mut m = MetricsSnapshot::new();
        m.labeled_gauge("ngm_site_live_bytes", &[("site", "a\"b\nc\\d")], 7);
        let json = m.to_json();
        assert!(!json.contains('\n'), "raw newline leaked: {json}");
        assert!(
            json.contains("\"site\":\"a\\\"b\\u000ac\\\\d\""),
            "label value not JSON-escaped: {json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // The value survives the round trip through the escapes.
        assert_eq!(
            m.get_labeled_gauge("ngm_site_live_bytes", &[("site", "a\"b\nc\\d")]),
            Some(7)
        );
    }

    #[test]
    fn validator_accepts_own_rendering() {
        let mut m = sample();
        m.labeled_gauge("ngm_shard_heat_score", &[("shard", "0")], 12);
        validate_exposition(&m.to_prometheus_text()).expect("own rendering is valid");
    }

    #[test]
    fn validator_rejects_malformed_text() {
        for bad in [
            // Sample with no announced family.
            "ngm_y_total 3\n",
            // TYPE without HELP.
            "# TYPE ngm_x_total counter\nngm_x_total 3\n",
            // Duplicate series.
            "# HELP ngm_x_total h\n# TYPE ngm_x_total counter\nngm_x_total 3\nngm_x_total 4\n",
            // Non-numeric value.
            "# HELP ngm_x_total h\n# TYPE ngm_x_total counter\nngm_x_total three\n",
            // Empty exposition.
            "",
        ] {
            assert!(
                validate_exposition(bad).is_err(),
                "validator accepted malformed text: {bad:?}"
            );
        }
    }

    #[test]
    fn conventional_families_get_fixed_help() {
        assert!(help_text("ngm_up").contains("metrics endpoint"));
        assert!(help_text("ngm_build_info").contains("always 1"));
        assert!(help_text("process_start_time_seconds").contains("Unix epoch"));
    }

    #[test]
    fn lookup_helpers() {
        let m = sample();
        assert_eq!(m.get_counter("ngm_calls_total"), Some(3));
        assert_eq!(m.get_gauge("ngm_ring_occupancy"), Some(2));
        assert!(m.get_histogram("ngm_call_cycles").is_some());
        assert!(m.get_histogram("absent").is_none());
    }

    #[test]
    fn json_escapes_names() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn labeled_gauges_render_and_lookup() {
        let mut m = MetricsSnapshot::new();
        m.labeled_gauge(
            "ngm_site_live_bytes",
            &[("site", "src/api.rs:222:17"), ("kind", "small")],
            4096,
        );
        let text = m.to_prometheus_text();
        assert!(text.contains("# TYPE ngm_site_live_bytes gauge"));
        assert!(
            text.contains("ngm_site_live_bytes{site=\"src/api.rs:222:17\",kind=\"small\"} 4096"),
            "bad labeled rendering:\n{text}"
        );
        assert_eq!(
            m.get_labeled_gauge(
                "ngm_site_live_bytes",
                &[("site", "src/api.rs:222:17"), ("kind", "small")]
            ),
            Some(4096)
        );
        assert_eq!(m.get_labeled_gauge("ngm_site_live_bytes", &[]), None);
        assert_eq!(m.labeled_gauge_count("ngm_site_live_bytes"), 1);
    }

    #[test]
    fn label_values_with_quote_and_newline_are_escaped() {
        // Satellite: a label value containing `"` and `\n` must render as
        // a single well-formed exposition line.
        let mut m = MetricsSnapshot::new();
        m.labeled_gauge("ngm_site_live_bytes", &[("site", "a\"b\nc\\d")], 7);
        let text = m.to_prometheus_text();
        let line = text
            .lines()
            .find(|l| !l.starts_with('#'))
            .expect("one sample line");
        assert_eq!(
            line, "ngm_site_live_bytes{site=\"a\\\"b\\nc\\\\d\"} 7",
            "escaping broke the exposition line"
        );
        assert_eq!(
            text.lines().filter(|l| !l.starts_with('#')).count(),
            1,
            "raw newline leaked into the rendering:\n{text}"
        );
        // The JSON document stays parseable too: balanced braces, no raw
        // control characters.
        let json = m.to_json();
        assert!(!json.contains('\n'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn every_type_line_is_preceded_by_matching_help() {
        let mut m = sample();
        m.labeled_gauge("ngm_site_live_bytes", &[("site", "x")], 1);
        let text = m.to_prometheus_text();
        let lines: Vec<&str> = text.lines().collect();
        let mut type_lines = 0;
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                type_lines += 1;
                let name = rest.split_whitespace().next().expect("metric name");
                let prev = lines.get(i.wrapping_sub(1)).copied().unwrap_or("");
                assert!(
                    prev.starts_with(&format!("# HELP {name} ")),
                    "TYPE for {name} lacks a HELP line above it:\n{text}"
                );
            }
        }
        assert!(type_lines >= 4, "expected families for all sample metrics");
    }

    #[test]
    fn help_text_follows_the_naming_convention() {
        assert_eq!(
            help_text("ngm_calls_total"),
            "Cumulative count of calls events."
        );
        assert_eq!(
            help_text("ngm_call_cycles"),
            "Distribution of call durations in TSC cycles."
        );
        assert_eq!(
            help_text("ngm_site_live_bytes"),
            "Gauge of site live in bytes."
        );
        assert_eq!(help_text("ngm_ring_occupancy"), "Gauge of ring occupancy.");
        // No backslash or newline may ever reach a HELP line.
        for name in ["ngm_x_total", "ngm_y_cycles", "plain"] {
            let h = help_text(name);
            assert!(!h.contains('\n') && !h.contains('\\'));
        }
    }

    #[test]
    fn escape_label_value_rules() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
    }
}
