//! Metric exporters: Prometheus text exposition and JSON snapshots.
//!
//! The runtime assembles a [`MetricsSnapshot`] — an ordered bag of named
//! counters, gauges, and histogram snapshots — and the exporters render
//! it. Histograms are exported Prometheus-summary style (`{quantile=...}`
//! series plus `_count`/`_sum`) rather than as 976 raw `_bucket` series.
//!
//! Both encoders are hand-rolled; the workspace builds without serde.

use crate::hist::HistogramSnapshot;

/// A point-in-time collection of named metrics.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    labeled_gauges: Vec<LabeledSample>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

/// One gauge sample carrying a Prometheus label set. Label *names* must
/// be Prometheus-safe (callers use static literals); label *values* are
/// arbitrary strings — the renderers escape them.
#[derive(Debug, Clone)]
struct LabeledSample {
    name: String,
    labels: Vec<(String, String)>,
    value: i64,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a counter sample. Names must be Prometheus-safe
    /// (`[a-zA-Z_][a-zA-Z0-9_]*`); callers use static literals.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        self.counters.push((name.into(), value));
        self
    }

    /// Adds a gauge sample.
    pub fn gauge(&mut self, name: impl Into<String>, value: i64) -> &mut Self {
        self.gauges.push((name.into(), value));
        self
    }

    /// Adds a gauge sample with a label set (e.g. per allocation site or
    /// per PMU event). Label values may contain any characters; the
    /// renderers escape them.
    pub fn labeled_gauge(
        &mut self,
        name: impl Into<String>,
        labels: &[(&str, &str)],
        value: i64,
    ) -> &mut Self {
        self.labeled_gauges.push(LabeledSample {
            name: name.into(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
        self
    }

    /// Adds a histogram snapshot.
    pub fn histogram(&mut self, name: impl Into<String>, snap: HistogramSnapshot) -> &mut Self {
        self.histograms.push((name.into(), snap));
        self
    }

    /// Looks up a histogram by name.
    #[must_use]
    pub fn get_histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Looks up a counter by name.
    #[must_use]
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    #[must_use]
    pub fn get_gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a labeled gauge by name and exact label set (order- and
    /// content-sensitive, as published).
    #[must_use]
    pub fn get_labeled_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.labeled_gauges
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), &(lk, lv))| k == lk && v == lv)
            })
            .map(|s| s.value)
    }

    /// Number of labeled-gauge samples published under `name`.
    #[must_use]
    pub fn labeled_gauge_count(&self, name: &str) -> usize {
        self.labeled_gauges
            .iter()
            .filter(|s| s.name == name)
            .count()
    }

    /// Renders Prometheus text exposition format (version 0.0.4). Every
    /// metric family gets a `# HELP` line derived from the naming
    /// convention (see [`help_text`]) followed by its `# TYPE` line.
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# HELP {name} {}", help_text(name));
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# HELP {name} {}", help_text(name));
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        let mut last_labeled: Option<&str> = None;
        for s in &self.labeled_gauges {
            if last_labeled != Some(s.name.as_str()) {
                let _ = writeln!(out, "# HELP {} {}", s.name, help_text(&s.name));
                let _ = writeln!(out, "# TYPE {} gauge", s.name);
                last_labeled = Some(s.name.as_str());
            }
            let _ = write!(out, "{}{{", s.name);
            for (i, (k, v)) in s.labels.iter().enumerate() {
                let _ = write!(out, "{}{k}=\"{}\"", comma(i), escape_label_value(v));
            }
            let _ = writeln!(out, "}} {}", s.value);
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# HELP {name} {}", help_text(name));
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [
                (0.5, h.p50()),
                (0.9, h.p90()),
                (0.99, h.p99()),
                (1.0, h.max()),
            ] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// Renders a JSON document:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,p50,p90,p99,max}}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let _ = write!(out, "{}{}:{v}", comma(i), json_str(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let _ = write!(out, "{}{}:{v}", comma(i), json_str(name));
        }
        // Labeled gauges join the gauge object under their full series
        // name (`name{k="v"}`); json_str escapes the embedded quotes.
        for (i, s) in self.labeled_gauges.iter().enumerate() {
            let mut series = format!("{}{{", s.name);
            for (j, (k, v)) in s.labels.iter().enumerate() {
                use std::fmt::Write as _;
                let _ = write!(series, "{}{k}=\"{}\"", comma(j), escape_label_value(v));
            }
            series.push('}');
            let _ = write!(
                out,
                "{}{}:{}",
                comma(i + self.gauges.len()),
                json_str(&series),
                s.value
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let _ = write!(
                out,
                "{}{}:{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                comma(i),
                json_str(name),
                h.count(),
                h.sum(),
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max(),
            );
        }
        out.push_str("}}");
        out
    }
}

fn comma(i: usize) -> &'static str {
    if i == 0 {
        ""
    } else {
        ","
    }
}

/// Derives a `# HELP` description from the metric-name convention
/// (`ngm_` prefix, unit suffix). Generating help from the convention —
/// instead of a per-metric table in this crate — means a series added
/// by any layer of the runtime gets a well-formed HELP line without a
/// registry to keep in sync; the README's metric index carries the
/// prose documentation.
fn help_text(name: &str) -> String {
    let stem = name.strip_prefix("ngm_").unwrap_or(name);
    if let Some(s) = stem.strip_suffix("_total") {
        format!("Cumulative count of {} events.", words(s))
    } else if let Some(s) = stem.strip_suffix("_cycles") {
        format!("Distribution of {} durations in TSC cycles.", words(s))
    } else if let Some(s) = stem.strip_suffix("_ns") {
        format!("Distribution of {} durations in nanoseconds.", words(s))
    } else if let Some(s) = stem.strip_suffix("_bytes") {
        format!("Gauge of {} in bytes.", words(s))
    } else if let Some(s) = stem.strip_suffix("_blocks") {
        format!("Gauge of {} in blocks.", words(s))
    } else {
        format!("Gauge of {}.", words(stem))
    }
}

fn words(s: &str) -> String {
    s.replace('_', " ")
}

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote, and line feed must be escaped (`\\`, `\"`,
/// `\n`); everything else passes through.
fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Quotes a metric name as a JSON string (escaping `"` and `\`, which
/// never appear in well-formed metric names, defensively).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    fn sample() -> MetricsSnapshot {
        let h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let mut m = MetricsSnapshot::new();
        m.counter("ngm_calls_total", 3)
            .gauge("ngm_ring_occupancy", 2)
            .histogram("ngm_call_cycles", h.snapshot());
        m
    }

    #[test]
    fn prometheus_text_shape() {
        let text = sample().to_prometheus_text();
        assert!(text.contains("# TYPE ngm_calls_total counter"));
        assert!(text.contains("ngm_calls_total 3"));
        assert!(text.contains("# TYPE ngm_ring_occupancy gauge"));
        assert!(text.contains("ngm_ring_occupancy 2"));
        assert!(text.contains("# TYPE ngm_call_cycles summary"));
        assert!(text.contains("ngm_call_cycles{quantile=\"0.5\"}"));
        assert!(text.contains("ngm_call_cycles_count 3"));
        assert!(text.contains("ngm_call_cycles_sum 60"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn json_shape() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ngm_calls_total\":3"));
        assert!(json.contains("\"ngm_ring_occupancy\":2"));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"sum\":60"));
        assert!(json.contains("\"mean\":20.0"));
        // Balanced braces (no nesting errors).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_snapshot_renders() {
        let m = MetricsSnapshot::new();
        assert_eq!(
            m.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert_eq!(m.to_prometheus_text(), "");
    }

    #[test]
    fn lookup_helpers() {
        let m = sample();
        assert_eq!(m.get_counter("ngm_calls_total"), Some(3));
        assert_eq!(m.get_gauge("ngm_ring_occupancy"), Some(2));
        assert!(m.get_histogram("ngm_call_cycles").is_some());
        assert!(m.get_histogram("absent").is_none());
    }

    #[test]
    fn json_escapes_names() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn labeled_gauges_render_and_lookup() {
        let mut m = MetricsSnapshot::new();
        m.labeled_gauge(
            "ngm_site_live_bytes",
            &[("site", "src/api.rs:222:17"), ("kind", "small")],
            4096,
        );
        let text = m.to_prometheus_text();
        assert!(text.contains("# TYPE ngm_site_live_bytes gauge"));
        assert!(
            text.contains("ngm_site_live_bytes{site=\"src/api.rs:222:17\",kind=\"small\"} 4096"),
            "bad labeled rendering:\n{text}"
        );
        assert_eq!(
            m.get_labeled_gauge(
                "ngm_site_live_bytes",
                &[("site", "src/api.rs:222:17"), ("kind", "small")]
            ),
            Some(4096)
        );
        assert_eq!(m.get_labeled_gauge("ngm_site_live_bytes", &[]), None);
        assert_eq!(m.labeled_gauge_count("ngm_site_live_bytes"), 1);
    }

    #[test]
    fn label_values_with_quote_and_newline_are_escaped() {
        // Satellite: a label value containing `"` and `\n` must render as
        // a single well-formed exposition line.
        let mut m = MetricsSnapshot::new();
        m.labeled_gauge("ngm_site_live_bytes", &[("site", "a\"b\nc\\d")], 7);
        let text = m.to_prometheus_text();
        let line = text
            .lines()
            .find(|l| !l.starts_with('#'))
            .expect("one sample line");
        assert_eq!(
            line, "ngm_site_live_bytes{site=\"a\\\"b\\nc\\\\d\"} 7",
            "escaping broke the exposition line"
        );
        assert_eq!(
            text.lines().filter(|l| !l.starts_with('#')).count(),
            1,
            "raw newline leaked into the rendering:\n{text}"
        );
        // The JSON document stays parseable too: balanced braces, no raw
        // control characters.
        let json = m.to_json();
        assert!(!json.contains('\n'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn every_type_line_is_preceded_by_matching_help() {
        let mut m = sample();
        m.labeled_gauge("ngm_site_live_bytes", &[("site", "x")], 1);
        let text = m.to_prometheus_text();
        let lines: Vec<&str> = text.lines().collect();
        let mut type_lines = 0;
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                type_lines += 1;
                let name = rest.split_whitespace().next().expect("metric name");
                let prev = lines.get(i.wrapping_sub(1)).copied().unwrap_or("");
                assert!(
                    prev.starts_with(&format!("# HELP {name} ")),
                    "TYPE for {name} lacks a HELP line above it:\n{text}"
                );
            }
        }
        assert!(type_lines >= 4, "expected families for all sample metrics");
    }

    #[test]
    fn help_text_follows_the_naming_convention() {
        assert_eq!(
            help_text("ngm_calls_total"),
            "Cumulative count of calls events."
        );
        assert_eq!(
            help_text("ngm_call_cycles"),
            "Distribution of call durations in TSC cycles."
        );
        assert_eq!(
            help_text("ngm_site_live_bytes"),
            "Gauge of site live in bytes."
        );
        assert_eq!(help_text("ngm_ring_occupancy"), "Gauge of ring occupancy.");
        // No backslash or newline may ever reach a HELP line.
        for name in ["ngm_x_total", "ngm_y_cycles", "plain"] {
            let h = help_text(name);
            assert!(!h.contains('\n') && !h.contains('\\'));
        }
    }

    #[test]
    fn escape_label_value_rules() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
    }
}
