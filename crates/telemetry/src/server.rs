//! Minimal dependency-free HTTP/1.0 server for observability endpoints.
//!
//! A production allocator-as-a-service must be scrapeable from *outside*
//! the process — Prometheus, a readiness probe, an engineer with curl —
//! without dragging an async runtime or an HTTP framework into a crate
//! whose whole point is dependency-free measurement. This server speaks
//! just enough HTTP for that job: `GET` on exact paths, one response per
//! connection, `Connection: close`. Every response carries a correct
//! `Content-Length`, so any HTTP/1.x client can consume it.
//!
//! Robustness over features: the accept loop is non-blocking and
//! poll-driven so [`HttpServer::stop`] always terminates promptly; each
//! connection is served on its own thread (scrapes are rare and cheap —
//! thread spawn is noise next to the handler's snapshot work) with a
//! read timeout so a stalled client cannot wedge a handler thread
//! forever; request lines are capped so a garbage client cannot balloon
//! memory.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Longest request line (method + path + version) accepted, bytes.
/// Beyond this the server answers `431` without reading further.
pub const MAX_REQUEST_LINE: usize = 4096;

/// Per-connection read timeout: a client that connects and then stalls
/// gets this long to produce a full request line.
pub const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Accept-loop poll interval while idle.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// One HTTP response: status, media type, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (200, 404, 503, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` plain-text response.
    #[must_use]
    pub fn ok_text(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into(),
        }
    }

    /// A `200 OK` JSON response.
    #[must_use]
    pub fn ok_json(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A `503 Service Unavailable` plain-text response (the tier is
    /// gone or not ready).
    #[must_use]
    pub fn unavailable(body: impl Into<String>) -> Response {
        Response {
            status: 503,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) {
        let head = format!(
            "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        // A client that hung up mid-response is its own problem.
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(self.body.as_bytes());
        let _ = stream.flush();
    }
}

type Handler = Box<dyn Fn() -> Response + Send + Sync>;

/// Exact-path GET routing table.
#[derive(Default)]
pub struct Router {
    routes: Vec<(&'static str, Handler)>,
}

impl Router {
    /// An empty router (every request 404s).
    #[must_use]
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers a handler for an exact path (e.g. `"/metrics"`).
    #[must_use]
    pub fn route(
        mut self,
        path: &'static str,
        handler: impl Fn() -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push((path, Box::new(handler)));
        self
    }

    /// Registered paths, in registration order (used by the `/` index).
    #[must_use]
    pub fn paths(&self) -> Vec<&'static str> {
        self.routes.iter().map(|(p, _)| *p).collect()
    }

    fn dispatch(&self, path: &str) -> Response {
        for (p, h) in &self.routes {
            if *p == path {
                return h();
            }
        }
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!("no such endpoint: {path}\n"),
        }
    }
}

/// A running observability HTTP server. Dropping it stops the accept
/// loop and joins it.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_loop: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port — the bound
    /// address is available via [`HttpServer::addr`]) and starts the
    /// accept loop on a background thread.
    pub fn start(addr: impl ToSocketAddrs, router: Router) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let router = Arc::new(router);
        let accept_loop = thread::Builder::new()
            .name("ngm-observer-http".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let router = Arc::clone(&router);
                            // Detached: the read timeout bounds each
                            // connection's lifetime, so stop() never
                            // waits on a stalled client.
                            let _ = thread::Builder::new()
                                .name("ngm-observer-conn".into())
                                .spawn(move || serve_connection(stream, &router));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => thread::sleep(POLL_INTERVAL),
                    }
                }
            })?;
        Ok(HttpServer {
            addr,
            stop,
            accept_loop: Some(accept_loop),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. In-flight connection threads
    /// finish on their own (bounded by [`READ_TIMEOUT`] plus handler
    /// time).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_loop.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(mut stream: TcpStream, router: &Router) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let response = match read_request_line(&mut stream) {
        RequestLine::Get(path) => router.dispatch(&path),
        RequestLine::OtherMethod => Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "only GET is supported\n".into(),
        },
        RequestLine::TooLong => Response {
            status: 431,
            content_type: "text/plain; charset=utf-8",
            body: "request line too long\n".into(),
        },
        RequestLine::Malformed => Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "malformed request\n".into(),
        },
        RequestLine::Dead => return,
    };
    response.write_to(&mut stream);
    // Closing a socket with unread request bytes (the headers we never
    // parse) makes the kernel send RST, which can destroy the response
    // before the client reads it. Half-close our side, then drain the
    // peer's leftovers until it hangs up — bounded by the read timeout
    // and a byte cap, so a hostile client cannot pin this thread.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scrap = [0u8; 1024];
    let mut drained = 0usize;
    while drained < 64 * 1024 {
        match stream.read(&mut scrap) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

enum RequestLine {
    Get(String),
    OtherMethod,
    TooLong,
    Malformed,
    Dead,
}

/// Reads up to the first CRLF (or LF), bounded by [`MAX_REQUEST_LINE`].
/// Remaining request headers are irrelevant — the response closes the
/// connection — so they are left unread in the socket buffer.
fn read_request_line(stream: &mut TcpStream) -> RequestLine {
    let mut line: Vec<u8> = Vec::with_capacity(128);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                // Peer closed before finishing the request line: a
                // partial request gets a 400 if it sent anything, and
                // silence if it sent nothing.
                return if line.is_empty() {
                    RequestLine::Dead
                } else {
                    RequestLine::Malformed
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if byte[0] != b'\r' {
                    line.push(byte[0]);
                }
                if line.len() > MAX_REQUEST_LINE {
                    return RequestLine::TooLong;
                }
            }
            // Timeout or hard error mid-line: treat like a hangup.
            Err(_) => {
                return if line.is_empty() {
                    RequestLine::Dead
                } else {
                    RequestLine::Malformed
                };
            }
        }
    }
    let text = String::from_utf8_lossy(&line);
    let mut parts = text.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() {
        return RequestLine::Malformed;
    }
    if method != "GET" {
        return RequestLine::OtherMethod;
    }
    // Strip any query string: routes are exact paths.
    let path = target.split('?').next().unwrap_or(target).to_string();
    RequestLine::Get(path)
}

/// Blocking one-shot GET against a local server; returns
/// `(status, body)`. This is the client half used by tests, the bench
/// harness, and examples — kept here so nothing outside the telemetry
/// crate needs an HTTP client either.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: ngm\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "malformed HTTP response"))
}

fn parse_response(raw: &str) -> Option<(u16, String)> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let status_line = head.lines().next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    Some((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> HttpServer {
        let router = Router::new()
            .route("/ping", || Response::ok_text("pong\n"))
            .route("/json", || Response::ok_json("{\"ok\":true}"));
        HttpServer::start("127.0.0.1:0", router).expect("bind ephemeral port")
    }

    #[test]
    fn serves_registered_route() {
        let server = test_server();
        let (status, body) = http_get(server.addr(), "/ping").expect("request");
        assert_eq!(status, 200);
        assert_eq!(body, "pong\n");
        server.stop();
    }

    #[test]
    fn unknown_path_is_404() {
        let server = test_server();
        let (status, body) = http_get(server.addr(), "/nope").expect("request");
        assert_eq!(status, 404);
        assert!(body.contains("/nope"));
    }

    #[test]
    fn query_strings_are_stripped() {
        let server = test_server();
        let (status, _) = http_get(server.addr(), "/ping?verbose=1").expect("request");
        assert_eq!(status, 200);
    }

    #[test]
    fn non_get_method_is_405() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        write!(stream, "POST /ping HTTP/1.0\r\n\r\n").expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.0 405"), "{raw}");
    }

    #[test]
    fn oversized_request_line_is_431() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let long_path = "a".repeat(MAX_REQUEST_LINE + 64);
        write!(stream, "GET /{long_path} HTTP/1.0\r\n\r\n").expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.0 431"), "{raw}");
    }

    #[test]
    fn partial_request_gets_400() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        // Half a request line, then a clean FIN.
        write!(stream, "GET /pi").expect("write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.0 400"), "{raw}");
    }

    #[test]
    fn responses_carry_content_length() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        write!(stream, "GET /ping HTTP/1.0\r\n\r\n").expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.contains("Content-Length: 5"), "{raw}");
        assert!(raw.contains("Connection: close"), "{raw}");
    }

    #[test]
    fn concurrent_requests_are_all_served() {
        let server = test_server();
        let addr = server.addr();
        let workers: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let (status, body) = http_get(addr, "/ping").expect("request");
                    assert_eq!(status, 200);
                    assert_eq!(body, "pong\n");
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
    }

    #[test]
    fn stop_terminates_promptly() {
        let server = test_server();
        let addr = server.addr();
        let started = std::time::Instant::now();
        server.stop();
        assert!(started.elapsed() < Duration::from_secs(1));
        // The listener is gone: new connections must fail (either
        // refused outright or reset on first read).
        let gone = match TcpStream::connect(addr) {
            Err(_) => true,
            Ok(mut s) => {
                let _ = write!(s, "GET /ping HTTP/1.0\r\n\r\n");
                let mut raw = String::new();
                s.read_to_string(&mut raw).is_err() || raw.is_empty()
            }
        };
        assert!(gone, "accept loop still serving after stop");
    }
}
