//! Bounded event-trace rings.
//!
//! Each runtime thread owns a [`TraceRing`]: a fixed-capacity buffer of
//! timestamped [`TraceEvent`]s. When full, the *oldest* event is dropped
//! and a drop counter advances — a bounded trace can lose history but
//! never lies about having lost it. Rings are drained (e.g. by
//! `ngm-bench`'s converter into the replay trace format) without
//! stopping the producer.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::clock::cycles_now;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventKind {
    /// An allocation request completed; `a` = size, `b` = round-trip cycles.
    Alloc,
    /// A free completed; `a` = size if known (else 0), `b` = round-trip cycles.
    Free,
    /// A fire-and-forget free was posted; `a` = ring occupancy after post.
    Post,
    /// The service refilled / drained rings; `a` = items processed.
    Refill,
    /// The service wait loop changed phase; `a` = from, `b` = to
    /// (see `ngm-offload`'s wait-phase encoding).
    WaitTransition,
    /// A request-lifecycle span crossed a phase boundary; `a` = span id,
    /// `b` = phase code (see [`crate::span::SpanPhase`]). Pushed with
    /// [`TraceRing::push_at`] so the event's `tsc` is the *true* phase
    /// timestamp, not the record time.
    Span,
    /// An elastic-tier scaling decision; `a` = decision code (1 = spawn,
    /// 2 = drain begun, 3 = retired, 4 = drain aborted), `b` = the shard
    /// acted on. Recorded into the acting slot's trace ring so blackbox
    /// dumps show the controller's recent moves.
    Scale,
}

impl TraceEventKind {
    /// Stable lowercase label used by exporters.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            TraceEventKind::Alloc => "alloc",
            TraceEventKind::Free => "free",
            TraceEventKind::Post => "post",
            TraceEventKind::Refill => "refill",
            TraceEventKind::WaitTransition => "wait_transition",
            TraceEventKind::Span => "span",
            TraceEventKind::Scale => "scale",
        }
    }
}

/// One timestamped trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// [`cycles_now`] at record time.
    pub tsc: u64,
    /// Producer thread id (runtime-assigned, not OS tid).
    pub thread: u32,
    /// Event kind.
    pub kind: TraceEventKind,
    /// Kind-specific payload (see [`TraceEventKind`] docs).
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
}

struct RingInner {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded ring of trace events (oldest dropped on overflow).
pub struct TraceRing {
    inner: Mutex<RingInner>,
    capacity: usize,
    thread: u32,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity)
            .field("thread", &self.thread)
            .finish_non_exhaustive()
    }
}

impl TraceRing {
    /// A ring holding at most `capacity` events for runtime thread
    /// `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(thread: u32, capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs nonzero capacity");
        TraceRing {
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
            capacity,
            thread,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records an event, timestamping it now. Drops (and counts) the
    /// oldest event if the ring is full.
    pub fn push(&self, kind: TraceEventKind, a: u64, b: u64) {
        self.push_at(cycles_now(), kind, a, b);
    }

    /// Records an event with an explicit timestamp — for span phase
    /// events, whose meaningful time is when the phase boundary was
    /// crossed, not when the client got around to recording it. Events
    /// within one ring may therefore be slightly out of `tsc` order;
    /// mergers sort.
    pub fn push_at(&self, tsc: u64, kind: TraceEventKind, a: u64, b: u64) {
        let ev = TraceEvent {
            tsc,
            thread: self.thread,
            kind,
            a,
            b,
        };
        let mut g = self.lock();
        if g.buf.len() == self.capacity {
            g.buf.pop_front();
            g.dropped += 1;
        }
        g.buf.push_back(ev);
    }

    /// The runtime thread id this ring records for.
    #[must_use]
    pub fn thread(&self) -> u32 {
        self.thread
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// Whether no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events dropped to overflow since creation (not reset by
    /// draining).
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.lock().dropped
    }

    /// Removes and returns all buffered events (oldest first), plus the
    /// cumulative overflow-drop count at drain time.
    #[must_use]
    pub fn drain(&self) -> TraceDrain {
        let mut g = self.lock();
        TraceDrain {
            events: g.buf.drain(..).collect(),
            dropped_total: g.dropped,
        }
    }

    /// Copies up to the `last` most recent events (oldest first) without
    /// draining — the blackbox flight recorder's read: a post-mortem
    /// snapshot must not consume the history someone else may still
    /// drain.
    #[must_use]
    pub fn peek(&self, last: usize) -> Vec<TraceEvent> {
        let g = self.lock();
        let skip = g.buf.len().saturating_sub(last);
        g.buf.iter().skip(skip).copied().collect()
    }
}

/// Result of [`TraceRing::drain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDrain {
    /// Drained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Cumulative events lost to overflow over the ring's lifetime.
    pub dropped_total: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_in_order() {
        let r = TraceRing::new(7, 8);
        for i in 0..5 {
            r.push(TraceEventKind::Alloc, i, 0);
        }
        let d = r.drain();
        assert_eq!(d.dropped_total, 0);
        let payloads: Vec<u64> = d.events.iter().map(|e| e.a).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
        assert!(d.events.iter().all(|e| e.thread == 7));
        assert!(d.events.windows(2).all(|w| w[0].tsc <= w[1].tsc));
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let r = TraceRing::new(0, 4);
        for i in 0..10 {
            r.push(TraceEventKind::Post, i, 0);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped_total(), 6);
        let d = r.drain();
        let payloads: Vec<u64> = d.events.iter().map(|e| e.a).collect();
        assert_eq!(payloads, vec![6, 7, 8, 9], "newest survive");
        assert_eq!(d.dropped_total, 6);
    }

    #[test]
    fn drain_preserves_drop_counter() {
        let r = TraceRing::new(0, 2);
        for i in 0..5 {
            r.push(TraceEventKind::Free, i, 0);
        }
        assert_eq!(r.drain().dropped_total, 3);
        r.push(TraceEventKind::Free, 9, 0);
        let d = r.drain();
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.dropped_total, 3, "counter survives draining");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TraceEventKind::WaitTransition.label(), "wait_transition");
        assert_eq!(TraceEventKind::Span.label(), "span");
        assert_eq!(TraceEventKind::Scale.label(), "scale");
    }

    #[test]
    fn push_at_records_explicit_timestamp() {
        let r = TraceRing::new(3, 4);
        r.push_at(12_345, TraceEventKind::Span, 7, 0);
        let d = r.drain();
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].tsc, 12_345);
        assert_eq!(d.events[0].thread, 3);
    }

    #[test]
    fn peek_is_non_draining_and_bounded() {
        let r = TraceRing::new(0, 8);
        for i in 0..5 {
            r.push(TraceEventKind::Alloc, i, 0);
        }
        let tail = r.peek(3);
        assert_eq!(
            tail.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "newest `last` events, oldest first"
        );
        assert_eq!(r.len(), 5, "peek consumed nothing");
        assert_eq!(r.peek(100).len(), 5, "over-asking returns everything");
    }
}
