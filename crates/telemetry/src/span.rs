//! Request-lifecycle spans.
//!
//! Every synchronous request through the offload runtime is one **span**:
//! minted at the client call site, stamped at each phase boundary of the
//! slot protocol, and terminated when the client observes the response
//! (or gives up). The phase sequence mirrors the protocol states:
//!
//! ```text
//!  enqueue ──► ring_resident ──► claimed ──► served ──► published ──► observed
//!     │              │
//!     │              └──► retracted   (deadline won the REQUEST→EMPTY race)
//!     └────────────────► abandoned   (server claimed, then died mid-serve)
//! ```
//!
//! Span ids are minted from `(runtime thread id, slot publish sequence)`,
//! so a retracted-then-republished request gets a *new* id — the
//! publish-sequence machinery that already disambiguates fault-injected
//! drops guarantees spans never alias across retries. Phase events are
//! recorded into the ordinary [`crate::trace::TraceRing`]s (kind
//! [`TraceEventKind::Span`], `a` = span id, `b` = phase code) with their
//! true boundary timestamps, so a drained trace reconstructs into spans
//! via [`reconstruct`].

use std::collections::HashMap;

use crate::trace::{TraceEvent, TraceEventKind};

/// A phase boundary in a request's lifecycle. Discriminants are the wire
/// encoding carried in a span trace event's `b` payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpanPhase {
    /// Client decided to issue the request (before the REQUEST store).
    Enqueue = 0,
    /// Request published into the slot (after the REQUEST store).
    RingResident = 1,
    /// Server claimed the request (REQUEST → SERVING).
    Claimed = 2,
    /// Server finished computing the response.
    Served = 3,
    /// Server published the response (RESPONSE store).
    Published = 4,
    /// Client observed and consumed the response. Terminal.
    Observed = 5,
    /// Client retracted an unclaimed request at its deadline. Terminal.
    Retracted = 6,
    /// Client gave up on a claimed request (server died). Terminal.
    Abandoned = 7,
}

impl SpanPhase {
    /// All phases, in lifecycle order.
    pub const ALL: [SpanPhase; 8] = [
        SpanPhase::Enqueue,
        SpanPhase::RingResident,
        SpanPhase::Claimed,
        SpanPhase::Served,
        SpanPhase::Published,
        SpanPhase::Observed,
        SpanPhase::Retracted,
        SpanPhase::Abandoned,
    ];

    /// Wire encoding (the trace event's `b` payload).
    #[must_use]
    pub const fn code(self) -> u64 {
        self as u64
    }

    /// Decodes a wire code.
    #[must_use]
    pub const fn from_code(code: u64) -> Option<SpanPhase> {
        match code {
            0 => Some(SpanPhase::Enqueue),
            1 => Some(SpanPhase::RingResident),
            2 => Some(SpanPhase::Claimed),
            3 => Some(SpanPhase::Served),
            4 => Some(SpanPhase::Published),
            5 => Some(SpanPhase::Observed),
            6 => Some(SpanPhase::Retracted),
            7 => Some(SpanPhase::Abandoned),
            _ => None,
        }
    }

    /// Stable lowercase label used by exporters and dumps.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            SpanPhase::Enqueue => "enqueue",
            SpanPhase::RingResident => "ring_resident",
            SpanPhase::Claimed => "claimed",
            SpanPhase::Served => "served",
            SpanPhase::Published => "published",
            SpanPhase::Observed => "observed",
            SpanPhase::Retracted => "retracted",
            SpanPhase::Abandoned => "abandoned",
        }
    }

    /// Whether this phase ends a span.
    #[must_use]
    pub const fn is_terminal(self) -> bool {
        matches!(
            self,
            SpanPhase::Observed | SpanPhase::Retracted | SpanPhase::Abandoned
        )
    }
}

/// Span ids set this bit for fire-and-forget posts (which have only
/// enqueue/ring-resident phases) so they can never collide with
/// synchronous-call ids minted from the slot publish sequence.
pub const POST_SPAN_BIT: u64 = 1 << 63;

/// Mints a synchronous-call span id from the client's runtime thread id
/// and the slot's publish sequence for this request. The sequence bumps
/// on every publish — including the republish after a retract — so a
/// retried request is a distinct span by construction.
#[must_use]
pub const fn call_span_id(thread: u32, publish_seq: u64) -> u64 {
    ((thread as u64) << 47) | (publish_seq & ((1 << 47) - 1))
}

/// Mints a post span id from the client's runtime thread id and a
/// client-local post counter.
#[must_use]
pub const fn post_span_id(thread: u32, post_seq: u64) -> u64 {
    POST_SPAN_BIT | ((thread as u64) << 47) | (post_seq & ((1 << 47) - 1))
}

/// One reconstructed span: its id and the phase boundaries observed for
/// it, in lifecycle order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id (see [`call_span_id`] / [`post_span_id`]).
    pub id: u64,
    /// Observed `(phase, tsc)` boundaries, sorted by phase order.
    pub phases: Vec<(SpanPhase, u64)>,
}

impl SpanRecord {
    /// Whether the span is **well-nested**: phases strictly increase in
    /// lifecycle order, no phase repeats, at most one terminal phase and
    /// only in final position.
    #[must_use]
    pub fn well_nested(&self) -> bool {
        if self.phases.is_empty() {
            return false;
        }
        let ordered = self
            .phases
            .windows(2)
            .all(|w| (w[0].0.code()) < (w[1].0.code()));
        let terminals_last = self
            .phases
            .iter()
            .enumerate()
            .all(|(i, (p, _))| !p.is_terminal() || i == self.phases.len() - 1);
        ordered && terminals_last
    }

    /// Whether phase timestamps are monotone non-decreasing in lifecycle
    /// order (cross-core TSC reads can tie, never regress on an
    /// invariant TSC).
    #[must_use]
    pub fn phase_monotonic(&self) -> bool {
        self.phases.windows(2).all(|w| w[0].1 <= w[1].1)
    }

    /// Whether the span reached a terminal phase.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.phases.last().is_some_and(|(p, _)| p.is_terminal())
    }

    /// The timestamp of `phase`, if observed.
    #[must_use]
    pub fn at(&self, phase: SpanPhase) -> Option<u64> {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|&(_, tsc)| tsc)
    }

    /// End-to-end cycles from enqueue to the terminal phase, if both
    /// were observed.
    #[must_use]
    pub fn total_cycles(&self) -> Option<u64> {
        let start = self.at(SpanPhase::Enqueue)?;
        let (last, end) = *self.phases.last()?;
        last.is_terminal().then(|| end.saturating_sub(start))
    }
}

/// Rebuilds spans from drained trace events (any mix of threads and
/// kinds — non-span events are ignored). Returns spans sorted by their
/// earliest timestamp; each span's phases are sorted in lifecycle order.
#[must_use]
pub fn reconstruct(events: &[TraceEvent]) -> Vec<SpanRecord> {
    let mut by_id: HashMap<u64, Vec<(SpanPhase, u64)>> = HashMap::new();
    for e in events {
        if e.kind != TraceEventKind::Span {
            continue;
        }
        let Some(phase) = SpanPhase::from_code(e.b) else {
            continue;
        };
        by_id.entry(e.a).or_default().push((phase, e.tsc));
    }
    let mut spans: Vec<SpanRecord> = by_id
        .into_iter()
        .map(|(id, mut phases)| {
            phases.sort_by_key(|&(p, _)| p.code());
            SpanRecord { id, phases }
        })
        .collect();
    spans.sort_by_key(|s| s.phases.first().map_or(u64::MAX, |&(_, tsc)| tsc));
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRing;

    fn push_span(ring: &TraceRing, tsc: u64, id: u64, phase: SpanPhase) {
        ring.push_at(tsc, TraceEventKind::Span, id, phase.code());
    }

    #[test]
    fn codes_roundtrip() {
        for p in SpanPhase::ALL {
            assert_eq!(SpanPhase::from_code(p.code()), Some(p));
        }
        assert_eq!(SpanPhase::from_code(99), None);
    }

    #[test]
    fn ids_never_alias_across_kinds_or_threads() {
        assert_ne!(call_span_id(1, 5), call_span_id(2, 5));
        assert_ne!(call_span_id(1, 5), call_span_id(1, 6));
        assert_ne!(call_span_id(1, 5), post_span_id(1, 5));
        assert!(post_span_id(0, 0) & POST_SPAN_BIT != 0);
    }

    #[test]
    fn reconstructs_interleaved_spans() {
        let ring = TraceRing::new(1, 64);
        let (a, b) = (call_span_id(1, 1), call_span_id(1, 2));
        // Interleave two spans' events out of phase order.
        push_span(&ring, 10, a, SpanPhase::Enqueue);
        push_span(&ring, 30, b, SpanPhase::Enqueue);
        push_span(&ring, 12, a, SpanPhase::RingResident);
        push_span(&ring, 20, a, SpanPhase::Claimed);
        push_span(&ring, 32, b, SpanPhase::RingResident);
        push_span(&ring, 25, a, SpanPhase::Served);
        push_span(&ring, 26, a, SpanPhase::Published);
        push_span(&ring, 28, a, SpanPhase::Observed);
        push_span(&ring, 40, b, SpanPhase::Retracted);
        let spans = reconstruct(&ring.drain().events);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, a, "sorted by start time");
        assert!(spans[0].well_nested() && spans[0].phase_monotonic());
        assert!(spans[1].well_nested() && spans[1].phase_monotonic());
        assert!(spans[0].completed() && spans[1].completed());
        assert_eq!(spans[0].total_cycles(), Some(18));
        assert_eq!(spans[1].at(SpanPhase::Retracted), Some(40));
        assert_eq!(spans[1].at(SpanPhase::Claimed), None);
    }

    #[test]
    fn malformed_spans_are_detected() {
        // Repeated phase.
        let s = SpanRecord {
            id: 1,
            phases: vec![(SpanPhase::Enqueue, 1), (SpanPhase::Enqueue, 2)],
        };
        assert!(!s.well_nested());
        // Timestamp regression.
        let s = SpanRecord {
            id: 2,
            phases: vec![(SpanPhase::Enqueue, 9), (SpanPhase::Observed, 3)],
        };
        assert!(s.well_nested() && !s.phase_monotonic());
        // Empty.
        assert!(!SpanRecord {
            id: 3,
            phases: vec![]
        }
        .well_nested());
    }
}
