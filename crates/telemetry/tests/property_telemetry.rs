//! Property tests for the telemetry primitives: the histogram's bucket
//! algebra and the trace ring's overflow accounting.

use ngm_telemetry::hist::{bucket_bounds, bucket_index, LatencyHistogram, N_BUCKETS};
use ngm_telemetry::trace::{TraceEventKind, TraceRing};
use proptest::collection;
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> ngm_telemetry::hist::HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every `u64` lands in a bucket whose bounds contain it.
    #[test]
    fn bucket_roundtrip_contains_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < N_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
    }

    /// Bucket bounds bound the relative error: the histogram's value
    /// resolution is one part in 2^SUB_BITS (6.25%) or better.
    #[test]
    fn bucket_width_bounds_relative_error(v in any::<u64>()) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        let width = hi - lo;
        prop_assert!(
            width == 0 || width * 16 <= lo,
            "bucket [{lo}, {hi}] wider than 6.25% of its base"
        );
    }

    /// Merging snapshots is associative and count/sum-preserving —
    /// per-thread histograms can be combined in any grouping.
    #[test]
    fn merge_is_associative(
        a in collection::vec(any::<u64>(), 0..32),
        b in collection::vec(any::<u64>(), 0..32),
        c in collection::vec(any::<u64>(), 0..32),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.count(), (a.len() + b.len() + c.len()) as u64);
        let expect_sum = a.iter().chain(&b).chain(&c).fold(0u64, |s, &v| s.wrapping_add(v));
        prop_assert_eq!(left.sum(), expect_sum);
    }

    /// Percentiles are monotone in `p` and dominated by the max.
    #[test]
    fn percentiles_are_monotone(values in collection::vec(any::<u64>(), 1..64)) {
        let s = snapshot_of(&values);
        prop_assert!(s.p50() <= s.p90());
        prop_assert!(s.p90() <= s.p99());
        prop_assert!(s.p99() <= s.max());
        // The reported max is the recorded max, rounded up by at most
        // one bucket width.
        let true_max = *values.iter().max().expect("non-empty");
        let (_, hi) = bucket_bounds(bucket_index(true_max));
        prop_assert!(s.max() >= true_max && s.max() <= hi);
    }

    /// Overflow never lies: length is capped, every drop is counted, and
    /// the survivors are exactly the newest events.
    #[test]
    fn trace_ring_overflow_keeps_newest_and_counts_drops(
        capacity in 1usize..32,
        pushes in 0usize..96,
    ) {
        let ring = TraceRing::new(9, capacity);
        for i in 0..pushes {
            ring.push(TraceEventKind::Alloc, i as u64, 0);
        }
        let kept = pushes.min(capacity);
        prop_assert_eq!(ring.len(), kept);
        prop_assert_eq!(ring.dropped_total(), (pushes - kept) as u64);

        let drain = ring.drain();
        prop_assert_eq!(drain.dropped_total, (pushes - kept) as u64);
        let kept_ids: Vec<u64> = drain.events.iter().map(|e| e.a).collect();
        let expect: Vec<u64> = ((pushes - kept)..pushes).map(|i| i as u64).collect();
        prop_assert_eq!(kept_ids, expect, "survivors must be the newest pushes in order");
    }
}
