//! `cache-thrash`: Hoard's active-false-sharing microbenchmark.
//!
//! Unlike [`crate::cache_scratch`], every worker allocates its own object
//! from the start — there is no hand-off. A per-thread allocator places
//! each worker's object in different pages and no lines ping-pong; a
//! global allocator that packs concurrent small allocations into one line
//! induces the same false sharing actively.

use crate::events::Event;

/// Parameters for cache-thrash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheThrashParams {
    /// Worker threads.
    pub workers: u8,
    /// Object size in bytes.
    pub object_size: u32,
    /// Rounds per worker.
    pub iterations: u32,
    /// Writes to the object per round.
    pub writes_per_iteration: u32,
}

impl Default for CacheThrashParams {
    fn default() -> Self {
        CacheThrashParams {
            workers: 4,
            object_size: 8,
            iterations: 200,
            writes_per_iteration: 50,
        }
    }
}

impl CacheThrashParams {
    /// A quick configuration for unit tests.
    pub fn tiny() -> Self {
        CacheThrashParams {
            workers: 2,
            iterations: 5,
            writes_per_iteration: 3,
            ..Default::default()
        }
    }
}

/// Generates the workload, interleaving allocation across workers so a
/// global allocator serves them back-to-back (line-packing hazard).
pub fn generate(p: &CacheThrashParams, emit: &mut dyn FnMut(Event)) {
    assert!(p.workers >= 1);
    let mut next_id: u64 = 1;
    let mut current: Vec<u64> = Vec::with_capacity(p.workers as usize);

    // All workers allocate "simultaneously" (interleaved).
    for w in 0..p.workers {
        let id = next_id;
        next_id += 1;
        emit(Event::Malloc {
            thread: w,
            id,
            size: p.object_size,
        });
        current.push(id);
    }

    for _round in 0..p.iterations {
        for (w, id) in current.iter_mut().enumerate() {
            let t = w as u8;
            for _ in 0..p.writes_per_iteration {
                emit(Event::Touch {
                    thread: t,
                    id: *id,
                    offset: 0,
                    len: p.object_size,
                    write: true,
                });
            }
            emit(Event::Compute {
                thread: t,
                amount: 64,
            });
            emit(Event::Free { thread: t, id: *id });
            let fresh = next_id;
            next_id += 1;
            emit(Event::Malloc {
                thread: t,
                id: fresh,
                size: p.object_size,
            });
            *id = fresh;
        }
    }
    for (w, id) in current.into_iter().enumerate() {
        emit(Event::Free {
            thread: w as u8,
            id,
        });
    }
}

/// Collects the full stream into memory.
pub fn collect(p: &CacheThrashParams) -> Vec<Event> {
    let mut v = Vec::new();
    generate(p, &mut |e| v.push(e));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::validate;

    #[test]
    fn stream_is_balanced() {
        let p = CacheThrashParams::tiny();
        let s = validate(collect(&p).into_iter(), false).unwrap();
        assert_eq!(s.mallocs, s.frees);
        assert_eq!(s.threads, p.workers);
    }

    #[test]
    fn every_free_is_local() {
        let ev = collect(&CacheThrashParams::tiny());
        let mut owner = std::collections::HashMap::new();
        for e in &ev {
            match *e {
                Event::Malloc { thread, id, .. } => {
                    owner.insert(id, thread);
                }
                Event::Free { thread, id } => assert_eq!(owner[&id], thread),
                _ => {}
            }
        }
    }
}
