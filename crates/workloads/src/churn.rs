//! Parameterized random churn: the workhorse for property tests and
//! ablation sweeps.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::events::Event;

/// Parameters for synthetic churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnParams {
    /// Logical threads.
    pub threads: u8,
    /// Total malloc events across all threads.
    pub total_allocs: u32,
    /// Maximum live objects per thread before a free is forced.
    pub live_cap: u32,
    /// Object size range (inclusive), bytes.
    pub size_range: (u32, u32),
    /// Probability (percent) that a step frees instead of allocating,
    /// when the live set is non-empty.
    pub free_percent: u8,
    /// Probability (percent) that an allocated object is touched.
    pub touch_percent: u8,
    /// Compute instructions per step.
    pub compute_per_step: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            threads: 1,
            total_allocs: 10_000,
            live_cap: 512,
            size_range: (16, 4096),
            free_percent: 45,
            touch_percent: 80,
            compute_per_step: 100,
            seed: 0x6368726e, // "chrn"
        }
    }
}

impl ChurnParams {
    /// A quick configuration for unit tests.
    pub fn tiny() -> Self {
        ChurnParams {
            total_allocs: 300,
            live_cap: 32,
            ..Default::default()
        }
    }
}

/// Generates the workload.
pub fn generate(p: &ChurnParams, emit: &mut dyn FnMut(Event)) {
    assert!(p.threads >= 1);
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let mut next_id: u64 = 1;
    let mut live: Vec<Vec<(u64, u32)>> = vec![Vec::new(); p.threads as usize];
    let mut remaining = p.total_allocs;

    while remaining > 0 {
        let t = rng.random_range(0..p.threads);
        let mine = &mut live[t as usize];
        let must_free = mine.len() as u32 >= p.live_cap;
        let want_free = !mine.is_empty() && rng.random_range(0..100u8) < p.free_percent;
        if must_free || want_free {
            let idx = rng.random_range(0..mine.len());
            let (id, _) = mine.swap_remove(idx);
            emit(Event::Free { thread: t, id });
        } else {
            let id = next_id;
            next_id += 1;
            let size = rng.random_range(p.size_range.0..=p.size_range.1);
            emit(Event::Malloc {
                thread: t,
                id,
                size,
            });
            if rng.random_range(0..100u8) < p.touch_percent {
                emit(Event::Touch {
                    thread: t,
                    id,
                    offset: 0,
                    len: size,
                    write: true,
                });
            }
            mine.push((id, size));
            remaining -= 1;
        }
        emit(Event::Compute {
            thread: t,
            amount: p.compute_per_step,
        });
    }
    for (t, mine) in live.into_iter().enumerate() {
        for (id, _) in mine {
            emit(Event::Free {
                thread: t as u8,
                id,
            });
        }
    }
}

/// Collects the full stream into memory.
pub fn collect(p: &ChurnParams) -> Vec<Event> {
    let mut v = Vec::new();
    generate(p, &mut |e| v.push(e));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::validate;

    #[test]
    fn stream_is_balanced() {
        let p = ChurnParams::tiny();
        let s = validate(collect(&p).into_iter(), false).unwrap();
        assert_eq!(s.mallocs, u64::from(p.total_allocs));
        assert_eq!(s.mallocs, s.frees);
    }

    #[test]
    fn live_cap_respected() {
        let p = ChurnParams {
            live_cap: 16,
            ..ChurnParams::tiny()
        };
        let s = validate(collect(&p).into_iter(), false).unwrap();
        assert!(s.peak_live <= 16 * u64::from(p.threads));
    }

    #[test]
    fn multithreaded_variant_is_valid() {
        let p = ChurnParams {
            threads: 4,
            ..ChurnParams::tiny()
        };
        let s = validate(collect(&p).into_iter(), false).unwrap();
        assert!(s.threads <= 4);
        assert_eq!(s.mallocs, s.frees);
    }

    #[test]
    fn deterministic() {
        let p = ChurnParams::tiny();
        assert_eq!(collect(&p), collect(&p));
    }
}
