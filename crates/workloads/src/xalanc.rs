//! A synthetic stand-in for SPEC CPU2017's `xalancbmk`.
//!
//! `xalancbmk` performs XSLT transformations on XML: it parses documents
//! into trees of small nodes and strings, runs queries over the DOM, and
//! emits output text — an allocation-heavy churn in which, per the paper,
//! "only 2 % of the execution time is spent on malloc and free" yet
//! allocator choice swings end-to-end time by 72 %.
//!
//! The generator reproduces the *mechanism* behind that swing:
//!
//! * A sliding **window of live documents** with a small fraction of
//!   **retained survivors** per document. Teardown therefore leaves
//!   fragmented hole runs rather than one coalescable extent, so a
//!   best-fit heap (PTMalloc2) scatters the next document's nodes across
//!   the arena while size-class heaps keep them dense.
//! * **Temporally-local DOM queries**: most queries hit objects allocated
//!   shortly before the current node. A locality-preserving allocator
//!   maps that temporal locality to page locality (TLB hits); a
//!   fragmented best-fit heap does not — which is exactly the paper's
//!   Table 1 dTLB story.
//! * Short-lived output strings churned in batches, the steady hole
//!   source.
//!
//! Allocator operations stay a small share of instructions (the "2 %"),
//! while the query/walk traffic — whose cost *depends on placement* —
//! dominates memory behaviour.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::events::Event;

/// Parameters for the xalanc-like workload (single-threaded, as in SPEC
/// rate-1 runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XalancParams {
    /// Number of documents processed.
    pub docs: u32,
    /// Elements per document.
    pub nodes_per_doc: u32,
    /// Documents kept live simultaneously (the DOM window).
    pub live_docs: u32,
    /// Per-mille of elements that allocate a pinned cache entry with a
    /// random multi-document lifetime. Pins expire continuously, punching
    /// holes through every region — the long-run fragmentation a
    /// best-fit heap cannot coalesce away.
    pub pin_per_mille: u32,
    /// DOM queries per node during the transform.
    pub queries_per_node: u32,
    /// Compute instructions per parsed node.
    pub parse_compute: u32,
    /// Compute instructions per transformed node.
    pub transform_compute: u32,
    /// RNG seed; identical parameters and seed give identical streams.
    pub seed: u64,
}

impl Default for XalancParams {
    fn default() -> Self {
        XalancParams {
            docs: 18,
            nodes_per_doc: 6000,
            live_docs: 5,
            pin_per_mille: 200,
            queries_per_node: 24,
            parse_compute: 3000,
            transform_compute: 6000,
            seed: 0x78616c61, // "xala"
        }
    }
}

impl XalancParams {
    /// A quick configuration for unit tests.
    pub fn tiny() -> Self {
        XalancParams {
            docs: 5,
            nodes_per_doc: 120,
            live_docs: 2,
            queries_per_node: 6,
            ..Default::default()
        }
    }

    /// A mid-size configuration that still shows the paper's shape but
    /// runs quickly in debug builds (used by the bench crate's tests).
    pub fn small() -> Self {
        XalancParams {
            docs: 8,
            nodes_per_doc: 2200,
            live_docs: 3,
            queries_per_node: 24,
            ..Default::default()
        }
    }

    /// Scales document count by `factor` (for longer statistical runs).
    pub fn scaled(mut self, factor: u32) -> Self {
        self.docs *= factor;
        self
    }

    /// Number of warmup documents whose events should be excluded from
    /// measurement (the window must cycle once to reach the fragmented
    /// steady state).
    pub fn warmup_docs(&self) -> u32 {
        self.live_docs + 1
    }
}

/// Size of the fixed element-node struct (pointers, tag ids, child list).
const NODE_SIZE: u32 = 100;

/// Output strings are freed in batches of this many.
const OUT_BATCH: usize = 32;

/// Draws a text-string size with the log-skew typical of XML content.
fn text_size(rng: &mut SmallRng) -> u32 {
    match rng.random_range(0..100u32) {
        0..=59 => rng.random_range(8..=48),
        60..=89 => rng.random_range(48..=256),
        90..=97 => rng.random_range(256..=1024),
        _ => rng.random_range(1024..=8192),
    }
}

/// One live document's objects.
struct Doc {
    /// (node id, text id, text size) per element.
    elems: Vec<(u64, u64, u32)>,
}

/// Generates the workload, emitting events in program order. Returns the
/// number of events that belong to the warmup prefix (see
/// [`XalancParams::warmup_docs`]).
pub fn generate(p: &XalancParams, emit: &mut dyn FnMut(Event)) -> usize {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let mut next_id: u64 = 1;
    let t = 0u8;
    let mut count: usize = 0;
    let mut warmup_events: usize = 0;
    let mut window: std::collections::VecDeque<Doc> = std::collections::VecDeque::new();
    // Pinned cache entries by expiry document index.
    let mut expiry: std::collections::HashMap<u32, Vec<u64>> = std::collections::HashMap::new();

    macro_rules! ev {
        ($e:expr) => {{
            count += 1;
            emit($e);
        }};
    }

    for doc_idx in 0..p.docs {
        if doc_idx == p.warmup_docs() {
            warmup_events = count;
        }

        // -- Teardown: retire the oldest document when the window is full.
        // Frees run in shuffled order — destructor order in real DOM trees
        // is not allocation order — which leaves the arena's free bins in
        // address-shuffled LIFO order: the fragmentation seed for a
        // best-fit allocator.
        if window.len() == p.live_docs as usize {
            let old = window.pop_front().expect("window is full");
            let mut ids: Vec<u64> = old.elems.iter().flat_map(|&(n, x, _)| [n, x]).collect();
            // Fisher-Yates with the workload RNG (deterministic).
            for i in (1..ids.len()).rev() {
                let j = rng.random_range(0..=i);
                ids.swap(i, j);
            }
            for id in ids {
                ev!(Event::Free { thread: t, id });
            }
        }

        // Pins expiring this document are freed interleaved with parsing
        // (below), so hole creation mixes with allocation.
        let mut expiring: Vec<u64> = expiry.remove(&doc_idx).unwrap_or_default();
        for i in (1..expiring.len()).rev() {
            let j = rng.random_range(0..=i);
            expiring.swap(i, j);
        }

        // -- Parse phase: build the node tree.
        let mut doc = Doc {
            elems: Vec::with_capacity(p.nodes_per_doc as usize),
        };
        let expire_step = (expiring.len() / p.nodes_per_doc.max(1) as usize).max(1);
        for _ in 0..p.nodes_per_doc {
            // Interleave pin expiry with allocation.
            for _ in 0..expire_step {
                if let Some(id) = expiring.pop() {
                    ev!(Event::Free { thread: t, id });
                }
            }
            let node_id = next_id;
            next_id += 1;
            ev!(Event::Malloc {
                thread: t,
                id: node_id,
                size: NODE_SIZE,
            });
            ev!(Event::Touch {
                thread: t,
                id: node_id,
                offset: 0,
                len: NODE_SIZE,
                write: true,
            });
            let ts = text_size(&mut rng);
            let text_id = next_id;
            next_id += 1;
            ev!(Event::Malloc {
                thread: t,
                id: text_id,
                size: ts,
            });
            ev!(Event::Touch {
                thread: t,
                id: text_id,
                offset: 0,
                len: ts,
                write: true,
            });
            ev!(Event::Compute {
                thread: t,
                amount: p.parse_compute,
            });
            doc.elems.push((node_id, text_id, ts));
            // Pinned cache entries with random multi-document lifetimes.
            // All pins share one size (a fixed cache-entry struct): in a
            // size-class heap they concentrate in their own class pages,
            // letting node/text pages retire cleanly — class isolation is
            // precisely how slab allocators survive lifetime mixing that
            // shreds a best-fit arena.
            if rng.random_range(0..1000) < p.pin_per_mille {
                let pin_id = next_id;
                next_id += 1;
                let pin_size = 136u32;
                ev!(Event::Malloc {
                    thread: t,
                    id: pin_id,
                    size: pin_size,
                });
                ev!(Event::Touch {
                    thread: t,
                    id: pin_id,
                    offset: 0,
                    len: pin_size,
                    write: true,
                });
                let dies = doc_idx + 1 + rng.random_range(0..2 * p.live_docs);
                expiry.entry(dies).or_default().push(pin_id);
            }
        }
        // Any leftover expiring pins.
        for id in expiring {
            ev!(Event::Free { thread: t, id });
        }

        // -- Transform phase: walk, query, and emit output strings.
        let mut out: Vec<u64> = Vec::with_capacity(OUT_BATCH);
        for i in 0..doc.elems.len() {
            let (node_id, text_id, ts) = doc.elems[i];
            ev!(Event::Touch {
                thread: t,
                id: node_id,
                offset: 0,
                len: NODE_SIZE,
                write: false,
            });
            ev!(Event::Touch {
                thread: t,
                id: text_id,
                offset: 0,
                len: ts.min(128),
                write: false,
            });
            // DOM queries, three temporal ranges:
            //  * short lookbacks — a locality-preserving allocator keeps
            //    these on dTLB-resident pages; a fragmented best-fit heap
            //    has already left the page;
            //  * medium log-uniform lookbacks — stress STLB/LLC reach;
            //  * far window-wide queries — miss everywhere (both
            //    allocators pay; keeps the comparison honest).
            for _ in 0..p.queries_per_node {
                let (qn, qt, qs) = {
                    let class = rng.random_range(0..1000u32);
                    if class < 905 {
                        let max_back = i.min(800);
                        let back = if max_back == 0 {
                            0
                        } else {
                            let r: f64 = rng.random();
                            ((-r.ln() * 160.0) as usize).min(max_back)
                        };
                        doc.elems[i - back]
                    } else if class < 985 {
                        // Medium-range lookback: log-uniform reach into
                        // the document's colder region.
                        let max_back = i.clamp(1, 4096);
                        let r: f64 = rng.random();
                        let back = ((max_back as f64).powf(r) as usize).min(i);
                        doc.elems[i - back]
                    } else {
                        let d = rng.random_range(0..window.len() + 1);
                        let src = if d < window.len() {
                            &window[d].elems
                        } else {
                            &doc.elems
                        };
                        src[rng.random_range(0..src.len().max(1)).min(src.len() - 1)]
                    }
                };
                if rng.random_range(0..4) < 3 {
                    ev!(Event::Touch {
                        thread: t,
                        id: qn,
                        offset: 0,
                        len: NODE_SIZE,
                        write: false,
                    });
                } else {
                    ev!(Event::Touch {
                        thread: t,
                        id: qt,
                        offset: 0,
                        len: qs.min(64),
                        write: false,
                    });
                }
            }
            // Output string: short-lived churn.
            let out_size = (ts + ts / 4).max(16);
            let out_id = next_id;
            next_id += 1;
            ev!(Event::Malloc {
                thread: t,
                id: out_id,
                size: out_size,
            });
            ev!(Event::Touch {
                thread: t,
                id: out_id,
                offset: 0,
                len: out_size.min(256),
                write: true,
            });
            ev!(Event::Compute {
                thread: t,
                amount: p.transform_compute,
            });
            out.push(out_id);
            if out.len() == OUT_BATCH {
                for id in out.drain(..) {
                    ev!(Event::Free { thread: t, id });
                }
            }
        }
        for id in out.drain(..) {
            ev!(Event::Free { thread: t, id });
        }

        window.push_back(doc);
    }

    // -- Final teardown (past the last possible warmup point, so the
    // event counter is no longer needed).
    for doc in window {
        for (node_id, text_id, _) in doc.elems {
            emit(Event::Free {
                thread: t,
                id: node_id,
            });
            emit(Event::Free {
                thread: t,
                id: text_id,
            });
        }
    }
    let mut remaining: Vec<u64> = expiry.into_values().flatten().collect();
    remaining.sort_unstable();
    for id in remaining {
        emit(Event::Free { thread: t, id });
    }
    warmup_events
}

/// Collects the full stream into memory (tests and small runs).
pub fn collect(p: &XalancParams) -> Vec<Event> {
    let mut v = Vec::new();
    generate(p, &mut |e| v.push(e));
    v
}

/// Collects the stream and the warmup split point.
pub fn collect_with_warmup(p: &XalancParams) -> (Vec<Event>, usize) {
    let mut v = Vec::new();
    let warmup = generate(p, &mut |e| v.push(e));
    (v, warmup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::validate;

    #[test]
    fn stream_is_well_formed() {
        let p = XalancParams::tiny();
        let s = validate(collect(&p).into_iter(), false).unwrap();
        assert_eq!(s.mallocs, s.frees, "no leaks");
        assert!(s.mallocs >= u64::from(p.docs * p.nodes_per_doc) * 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = XalancParams::tiny();
        assert_eq!(collect(&p), collect(&p));
        let mut p2 = p;
        p2.seed += 1;
        assert_ne!(collect(&p), collect(&p2));
    }

    #[test]
    fn alloc_instruction_share_is_small() {
        // The paper's framing: ~2 % of time in malloc/free. Model each
        // allocator op at ~130 instructions and compare against the rest.
        let p = XalancParams::default();
        let s = validate(collect(&p).into_iter(), false).unwrap();
        let alloc_instr = (s.mallocs + s.frees) * 100;
        let other = s.compute + s.touches * 3;
        let share = alloc_instr as f64 / (alloc_instr as f64 + other as f64);
        assert!(
            (0.005..0.10).contains(&share),
            "allocator share {share} out of the paper's regime"
        );
    }

    #[test]
    fn window_bounds_live_set() {
        let p = XalancParams::tiny();
        let s = validate(collect(&p).into_iter(), false).unwrap();
        // Window docs + pins + in-flight outputs.
        let per_doc = u64::from(p.nodes_per_doc) * (2 + u64::from(p.pin_per_mille) / 100 + 1);
        let cap = (u64::from(p.live_docs) * 2 + 1) * per_doc * 3;
        assert!(s.peak_live < cap, "peak {} vs cap {}", s.peak_live, cap);
    }

    #[test]
    fn warmup_split_is_interior() {
        let p = XalancParams::tiny();
        let (events, warmup) = collect_with_warmup(&p);
        assert!(warmup > 0 && warmup < events.len());
    }

    #[test]
    fn single_threaded() {
        let s = validate(collect(&XalancParams::tiny()).into_iter(), false).unwrap();
        assert_eq!(s.threads, 1);
    }
}
