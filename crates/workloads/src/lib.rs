//! Workload generators for the NextGen-Malloc reproduction.
//!
//! Every workload is a deterministic stream of [`Event`]s — allocations,
//! frees, touches of allocated memory, and pure compute — that can be
//! replayed either against the cache-simulator allocator models
//! (`ngm-simalloc`) to regenerate the paper's PMU tables, or against the
//! real heaps (`ngm-heap`, `ngm-core`) for wall-clock measurements.
//!
//! The stable of workloads mirrors the paper's evaluation:
//!
//! * [`xalanc`] — a synthetic stand-in for SPEC CPU2017's `xalancbmk`
//!   (XML transformation: allocation-heavy tree building and string
//!   churn, ~2 % of instructions in malloc/free). Figure 1, Tables 1 & 3.
//! * [`xmalloc`] — Lever & Boreham's cross-thread-free stress: "a thread
//!   allocates data but a different thread deallocates". Table 2.
//! * [`cache_scratch`] / [`cache_thrash`] — Hoard's passive/active
//!   false-sharing microbenchmarks (named in the paper's §1 alongside
//!   xmalloc as mimalloc-bench members).
//! * [`larson`] — the classic server-churn benchmark from mimalloc-bench.
//! * [`churn`] — parameterized random churn for property tests and
//!   ablations.

#![warn(missing_docs)]

pub mod cache_scratch;
pub mod cache_thrash;
pub mod churn;
pub mod events;
pub mod larson;
pub mod trace;
pub mod xalanc;
pub mod xmalloc;

pub use events::{Event, StreamSummary};
