//! `cache-scratch`: Hoard's passive-false-sharing microbenchmark.
//!
//! The main thread allocates one small object per worker; each worker
//! frees the object it was handed, allocates a replacement, and then
//! repeatedly writes it. If the allocator packed the original objects —
//! or packs the replacements — into the same cache line across threads,
//! every write ping-pongs the line between cores (passive false sharing
//! *induced by the allocator's placement*, not by the program).

use crate::events::Event;

/// Parameters for cache-scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheScratchParams {
    /// Worker threads (workers are threads `1..=workers`; thread 0 is the
    /// allocating main thread).
    pub workers: u8,
    /// Object size in bytes (small, so several fit in one line).
    pub object_size: u32,
    /// Free/reallocate rounds per worker.
    pub iterations: u32,
    /// Writes to the object per round.
    pub writes_per_iteration: u32,
}

impl Default for CacheScratchParams {
    fn default() -> Self {
        CacheScratchParams {
            workers: 4,
            object_size: 8,
            iterations: 200,
            writes_per_iteration: 50,
        }
    }
}

impl CacheScratchParams {
    /// A quick configuration for unit tests.
    pub fn tiny() -> Self {
        CacheScratchParams {
            workers: 2,
            iterations: 5,
            writes_per_iteration: 3,
            ..Default::default()
        }
    }
}

/// Generates the workload. Worker rounds are interleaved to approximate
/// concurrency in the simulator's single global order.
pub fn generate(p: &CacheScratchParams, emit: &mut dyn FnMut(Event)) {
    assert!(p.workers >= 1);
    let mut next_id: u64 = 1;

    // Main thread allocates the initial objects back-to-back — this is
    // the placement that a line-packing allocator turns into false
    // sharing.
    let initial: Vec<u64> = (0..p.workers)
        .map(|_| {
            let id = next_id;
            next_id += 1;
            emit(Event::Malloc {
                thread: 0,
                id,
                size: p.object_size,
            });
            emit(Event::Touch {
                thread: 0,
                id,
                offset: 0,
                len: p.object_size,
                write: true,
            });
            id
        })
        .collect();

    // Each worker frees its inherited object and allocates its own.
    let mut current: Vec<u64> = Vec::with_capacity(p.workers as usize);
    for (w, &id) in initial.iter().enumerate() {
        let t = w as u8 + 1;
        emit(Event::Free { thread: t, id });
        let mine = next_id;
        next_id += 1;
        emit(Event::Malloc {
            thread: t,
            id: mine,
            size: p.object_size,
        });
        current.push(mine);
    }

    // Scratch rounds: interleaved writes from all workers.
    for _round in 0..p.iterations {
        for (w, id) in current.iter_mut().enumerate() {
            let t = w as u8 + 1;
            for _ in 0..p.writes_per_iteration {
                emit(Event::Touch {
                    thread: t,
                    id: *id,
                    offset: 0,
                    len: p.object_size,
                    write: true,
                });
            }
            emit(Event::Compute {
                thread: t,
                amount: 64,
            });
            // Churn: replace the object each round.
            emit(Event::Free { thread: t, id: *id });
            let fresh = next_id;
            next_id += 1;
            emit(Event::Malloc {
                thread: t,
                id: fresh,
                size: p.object_size,
            });
            *id = fresh;
        }
    }
    for (w, id) in current.into_iter().enumerate() {
        emit(Event::Free {
            thread: w as u8 + 1,
            id,
        });
    }
}

/// Collects the full stream into memory.
pub fn collect(p: &CacheScratchParams) -> Vec<Event> {
    let mut v = Vec::new();
    generate(p, &mut |e| v.push(e));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::validate;

    #[test]
    fn stream_is_balanced() {
        let p = CacheScratchParams::tiny();
        let s = validate(collect(&p).into_iter(), false).unwrap();
        assert_eq!(s.mallocs, s.frees);
        assert_eq!(s.threads, p.workers + 1);
    }

    #[test]
    fn inherited_objects_freed_by_workers() {
        let p = CacheScratchParams::tiny();
        let ev = collect(&p);
        // The first `workers` mallocs are on thread 0; their frees are not.
        let mut owner = std::collections::HashMap::new();
        for e in &ev {
            match *e {
                Event::Malloc { thread, id, .. } => {
                    owner.insert(id, thread);
                }
                Event::Free { thread, id } if owner[&id] == 0 => {
                    assert_ne!(thread, 0, "main-thread objects freed by workers");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn touch_volume_matches_params() {
        let p = CacheScratchParams::tiny();
        let s = validate(collect(&p).into_iter(), false).unwrap();
        let expected = u64::from(p.workers)
            * (u64::from(p.iterations) * u64::from(p.writes_per_iteration))
            + u64::from(p.workers); // initial main-thread touches
        assert_eq!(s.touches, expected);
    }
}
