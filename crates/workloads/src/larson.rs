//! `larson`: the classic server-churn benchmark (Larson & Krishnan), a
//! mimalloc-bench staple.
//!
//! Each thread owns an array of slots holding live objects. Rounds pick a
//! random slot, free its occupant, allocate a replacement of random size,
//! and touch it. A fraction of slots is periodically handed to another
//! thread (ownership migration), mixing local and remote frees the way a
//! long-running server does.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::events::Event;

/// Parameters for the larson workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LarsonParams {
    /// Worker threads.
    pub threads: u8,
    /// Slots per thread.
    pub slots: u32,
    /// Replacement rounds per thread.
    pub rounds: u32,
    /// Object size range (inclusive), bytes.
    pub size_range: (u32, u32),
    /// One in `migrate_every` replacements is freed by another thread.
    pub migrate_every: u32,
    /// Compute instructions per replacement.
    pub compute_per_round: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LarsonParams {
    fn default() -> Self {
        LarsonParams {
            threads: 4,
            slots: 256,
            rounds: 10_000,
            size_range: (16, 1024),
            migrate_every: 8,
            compute_per_round: 300,
            seed: 0x6c617273, // "lars"
        }
    }
}

impl LarsonParams {
    /// A quick configuration for unit tests.
    pub fn tiny() -> Self {
        LarsonParams {
            threads: 2,
            slots: 8,
            rounds: 50,
            ..Default::default()
        }
    }
}

/// Generates the workload (rounds interleaved across threads).
pub fn generate(p: &LarsonParams, emit: &mut dyn FnMut(Event)) {
    assert!(p.threads >= 1 && p.slots >= 1);
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let mut next_id: u64 = 1;
    let mut slots: Vec<Vec<(u64, u32)>> = Vec::new();

    // Fill phase: every thread populates its slot array.
    for t in 0..p.threads {
        let mut mine = Vec::with_capacity(p.slots as usize);
        for _ in 0..p.slots {
            let id = next_id;
            next_id += 1;
            let size = rng.random_range(p.size_range.0..=p.size_range.1);
            emit(Event::Malloc {
                thread: t,
                id,
                size,
            });
            emit(Event::Touch {
                thread: t,
                id,
                offset: 0,
                len: size,
                write: true,
            });
            mine.push((id, size));
        }
        slots.push(mine);
    }

    // Churn phase.
    for round in 0..p.rounds {
        for t in 0..p.threads {
            let slot_idx = rng.random_range(0..p.slots) as usize;
            let (old_id, _) = slots[t as usize][slot_idx];
            let freer = if p.migrate_every > 0 && round % p.migrate_every == p.migrate_every - 1 {
                (t + 1) % p.threads
            } else {
                t
            };
            emit(Event::Free {
                thread: freer,
                id: old_id,
            });
            let id = next_id;
            next_id += 1;
            let size = rng.random_range(p.size_range.0..=p.size_range.1);
            emit(Event::Malloc {
                thread: t,
                id,
                size,
            });
            emit(Event::Touch {
                thread: t,
                id,
                offset: 0,
                len: size.min(128),
                write: true,
            });
            emit(Event::Compute {
                thread: t,
                amount: p.compute_per_round,
            });
            slots[t as usize][slot_idx] = (id, size);
        }
    }

    // Drain phase.
    for (t, mine) in slots.into_iter().enumerate() {
        for (id, _) in mine {
            emit(Event::Free {
                thread: t as u8,
                id,
            });
        }
    }
}

/// Collects the full stream into memory.
pub fn collect(p: &LarsonParams) -> Vec<Event> {
    let mut v = Vec::new();
    generate(p, &mut |e| v.push(e));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::validate;

    #[test]
    fn stream_is_balanced() {
        let p = LarsonParams::tiny();
        let s = validate(collect(&p).into_iter(), false).unwrap();
        assert_eq!(s.mallocs, s.frees);
        let expected = u64::from(p.threads) * (u64::from(p.slots) + u64::from(p.rounds));
        assert_eq!(s.mallocs, expected);
    }

    #[test]
    fn live_set_stays_at_slot_count() {
        let p = LarsonParams::tiny();
        let s = validate(collect(&p).into_iter(), false).unwrap();
        let cap = u64::from(p.threads) * u64::from(p.slots);
        assert!(s.peak_live <= cap + u64::from(p.threads));
    }

    #[test]
    fn some_frees_migrate() {
        let p = LarsonParams::tiny();
        let ev = collect(&p);
        let mut owner = std::collections::HashMap::new();
        let mut remote = 0u64;
        for e in &ev {
            match *e {
                Event::Malloc { thread, id, .. } => {
                    owner.insert(id, thread);
                }
                Event::Free { thread, id } if owner[&id] != thread => remote += 1,
                _ => {}
            }
        }
        assert!(remote > 0, "migration must produce remote frees");
    }
}
