//! Allocation-trace record and replay.
//!
//! Two interchangeable encodings:
//!
//! * **JSON lines** — one serde-encoded event per line; human-inspectable,
//!   diff-friendly.
//! * **Binary** — a compact tagged little-endian encoding via `bytes`,
//!   ~10× smaller, for long traces.
//!
//! Traces let an experiment capture a workload once and replay the exact
//! stream against every allocator, removing generator nondeterminism from
//! comparisons entirely.

use std::io::{self, BufRead, Read, Write};

use bytes::{Buf, BufMut};

use crate::events::Event;

/// Magic header for binary traces.
const MAGIC: &[u8; 8] = b"NGMTRC01";

/// Writes a stream as JSON lines.
///
/// # Errors
///
/// Propagates serialization and I/O failures.
pub fn write_json<'a>(
    events: impl Iterator<Item = &'a Event>,
    mut out: impl Write,
) -> io::Result<()> {
    for e in events {
        serde_json::to_writer(&mut out, e)?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a JSON-lines trace.
///
/// # Errors
///
/// Fails on malformed lines or I/O errors.
pub fn read_json(input: impl BufRead) -> io::Result<Vec<Event>> {
    let mut events = Vec::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(serde_json::from_str(&line)?);
    }
    Ok(events)
}

fn encode_event(e: &Event, buf: &mut Vec<u8>) {
    match *e {
        Event::Malloc { thread, id, size } => {
            buf.put_u8(0);
            buf.put_u8(thread);
            buf.put_u64_le(id);
            buf.put_u32_le(size);
        }
        Event::Free { thread, id } => {
            buf.put_u8(1);
            buf.put_u8(thread);
            buf.put_u64_le(id);
        }
        Event::Touch {
            thread,
            id,
            offset,
            len,
            write,
        } => {
            buf.put_u8(if write { 3 } else { 2 });
            buf.put_u8(thread);
            buf.put_u64_le(id);
            buf.put_u32_le(offset);
            buf.put_u32_le(len);
        }
        Event::Compute { thread, amount } => {
            buf.put_u8(4);
            buf.put_u8(thread);
            buf.put_u32_le(amount);
        }
    }
}

/// Writes a stream in the compact binary encoding.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_binary<'a>(
    events: impl Iterator<Item = &'a Event>,
    mut out: impl Write,
) -> io::Result<()> {
    out.write_all(MAGIC)?;
    let mut buf = Vec::with_capacity(64 * 1024);
    for e in events {
        encode_event(e, &mut buf);
        if buf.len() >= 60 * 1024 {
            out.write_all(&buf)?;
            buf.clear();
        }
    }
    out.write_all(&buf)?;
    Ok(())
}

/// Reads a binary trace produced by [`write_binary`].
///
/// # Errors
///
/// Fails on a bad magic header, truncated records, or unknown tags.
pub fn read_binary(mut input: impl Read) -> io::Result<Vec<Event>> {
    let mut all = Vec::new();
    input.read_to_end(&mut all)?;
    let mut buf = &all[..];
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic"));
    }
    buf.advance(MAGIC.len());
    let mut events = Vec::new();
    while buf.has_remaining() {
        let need = |n: usize, buf: &&[u8]| -> io::Result<()> {
            if buf.remaining() < n {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated trace record",
                ))
            } else {
                Ok(())
            }
        };
        let tag = buf.get_u8();
        let e = match tag {
            0 => {
                need(13, &buf)?;
                Event::Malloc {
                    thread: buf.get_u8(),
                    id: buf.get_u64_le(),
                    size: buf.get_u32_le(),
                }
            }
            1 => {
                need(9, &buf)?;
                Event::Free {
                    thread: buf.get_u8(),
                    id: buf.get_u64_le(),
                }
            }
            2 | 3 => {
                need(17, &buf)?;
                Event::Touch {
                    write: tag == 3,
                    thread: buf.get_u8(),
                    id: buf.get_u64_le(),
                    offset: buf.get_u32_le(),
                    len: buf.get_u32_le(),
                }
            }
            4 => {
                need(5, &buf)?;
                Event::Compute {
                    thread: buf.get_u8(),
                    amount: buf.get_u32_le(),
                }
            }
            t => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown trace tag {t}"),
                ))
            }
        };
        events.push(e);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::{collect, ChurnParams};

    fn sample() -> Vec<Event> {
        collect(&ChurnParams::tiny())
    }

    #[test]
    fn json_roundtrip() {
        let ev = sample();
        let mut buf = Vec::new();
        write_json(ev.iter(), &mut buf).unwrap();
        let back = read_json(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn binary_roundtrip() {
        let ev = sample();
        let mut buf = Vec::new();
        write_binary(ev.iter(), &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn binary_is_compact() {
        let ev = sample();
        let mut json = Vec::new();
        write_json(ev.iter(), &mut json).unwrap();
        let mut bin = Vec::new();
        write_binary(ev.iter(), &mut bin).unwrap();
        assert!(bin.len() * 3 < json.len(), "binary should be much smaller");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_binary(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_record_rejected() {
        let ev = vec![Event::Free { thread: 0, id: 1 }];
        let mut buf = Vec::new();
        write_binary(ev.iter(), &mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_binary([].iter(), &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), Vec::<Event>::new());
    }
}
