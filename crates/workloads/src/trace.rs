//! Allocation-trace record and replay.
//!
//! Two interchangeable encodings:
//!
//! * **JSON lines** — one externally-tagged object per line (the same
//!   shape serde would emit, e.g. `{"Malloc":{"thread":0,"id":3,"size":64}}`);
//!   human-inspectable, diff-friendly. Encoded and decoded by a small
//!   hand-rolled codec so the crate stays dependency-free in hermetic
//!   builds.
//! * **Binary** — a compact tagged little-endian encoding, ~10× smaller,
//!   for long traces.
//!
//! Traces let an experiment capture a workload once and replay the exact
//! stream against every allocator, removing generator nondeterminism from
//! comparisons entirely.

use std::io::{self, BufRead, Read, Write};

use crate::events::Event;

/// Magic header for binary traces.
const MAGIC: &[u8; 8] = b"NGMTRC01";

/// Writes a stream as JSON lines.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_json<'a>(
    events: impl Iterator<Item = &'a Event>,
    mut out: impl Write,
) -> io::Result<()> {
    let mut line = String::with_capacity(96);
    for e in events {
        line.clear();
        event_to_json(e, &mut line);
        line.push('\n');
        out.write_all(line.as_bytes())?;
    }
    Ok(())
}

fn event_to_json(e: &Event, out: &mut String) {
    use std::fmt::Write as _;
    match *e {
        Event::Malloc { thread, id, size } => {
            let _ = write!(
                out,
                r#"{{"Malloc":{{"thread":{thread},"id":{id},"size":{size}}}}}"#
            );
        }
        Event::Free { thread, id } => {
            let _ = write!(out, r#"{{"Free":{{"thread":{thread},"id":{id}}}}}"#);
        }
        Event::Touch {
            thread,
            id,
            offset,
            len,
            write,
        } => {
            let _ = write!(
                out,
                r#"{{"Touch":{{"thread":{thread},"id":{id},"offset":{offset},"len":{len},"write":{write}}}}}"#
            );
        }
        Event::Compute { thread, amount } => {
            let _ = write!(
                out,
                r#"{{"Compute":{{"thread":{thread},"amount":{amount}}}}}"#
            );
        }
    }
}

/// Cursor over one JSON line of the trace schema: externally-tagged
/// objects whose fields are unsigned integers or booleans.
struct JsonCursor<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> JsonCursor<'a> {
    fn new(s: &'a str) -> Self {
        JsonCursor {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad trace JSON at byte {}: expected {what}", self.pos),
        )
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> io::Result<()> {
        self.skip_ws();
        if self.pos < self.s.len() && self.s[self.pos] == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("'{}'", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn string(&mut self) -> io::Result<&'a str> {
        self.expect(b'"')?;
        let start = self.pos;
        while self.pos < self.s.len() && self.s[self.pos] != b'"' {
            if self.s[self.pos] == b'\\' {
                return Err(self.err("unescaped key"));
            }
            self.pos += 1;
        }
        if self.pos == self.s.len() {
            return Err(self.err("closing '\"'"));
        }
        let out =
            std::str::from_utf8(&self.s[start..self.pos]).map_err(|_| self.err("UTF-8 key"))?;
        self.pos += 1;
        Ok(out)
    }

    fn u64_value(&mut self) -> io::Result<u64> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("integer"));
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| self.err("integer in range"))
    }

    fn bool_value(&mut self) -> io::Result<bool> {
        self.skip_ws();
        let rest = &self.s[self.pos..];
        if rest.starts_with(b"true") {
            self.pos += 4;
            Ok(true)
        } else if rest.starts_with(b"false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(self.err("boolean"))
        }
    }

    /// Parses `{"k":v, ...}` where each value is an integer or bool,
    /// returning values in the order `keys` lists them.
    fn fields(&mut self, keys: &[&str]) -> io::Result<Vec<u64>> {
        self.expect(b'{')?;
        let mut out = vec![None; keys.len()];
        loop {
            let key = self.string()?;
            let slot = keys
                .iter()
                .position(|k| *k == key)
                .ok_or_else(|| self.err("known field"))?;
            self.expect(b':')?;
            let v = if key == "write" {
                u64::from(self.bool_value()?)
            } else {
                self.u64_value()?
            };
            if out[slot].replace(v).is_some() {
                return Err(self.err("unique field"));
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
        out.into_iter()
            .collect::<Option<Vec<u64>>>()
            .ok_or_else(|| self.err("all fields present"))
    }
}

fn narrow<T: TryFrom<u64>>(v: u64, cursor: &JsonCursor<'_>) -> io::Result<T> {
    T::try_from(v).map_err(|_| cursor.err("field in range"))
}

fn event_from_json(line: &str) -> io::Result<Event> {
    let mut c = JsonCursor::new(line);
    c.expect(b'{')?;
    let tag = c.string()?.to_string();
    c.expect(b':')?;
    let e = match tag.as_str() {
        "Malloc" => {
            let f = c.fields(&["thread", "id", "size"])?;
            Event::Malloc {
                thread: narrow(f[0], &c)?,
                id: f[1],
                size: narrow(f[2], &c)?,
            }
        }
        "Free" => {
            let f = c.fields(&["thread", "id"])?;
            Event::Free {
                thread: narrow(f[0], &c)?,
                id: f[1],
            }
        }
        "Touch" => {
            let f = c.fields(&["thread", "id", "offset", "len", "write"])?;
            Event::Touch {
                thread: narrow(f[0], &c)?,
                id: f[1],
                offset: narrow(f[2], &c)?,
                len: narrow(f[3], &c)?,
                write: f[4] != 0,
            }
        }
        "Compute" => {
            let f = c.fields(&["thread", "amount"])?;
            Event::Compute {
                thread: narrow(f[0], &c)?,
                amount: narrow(f[1], &c)?,
            }
        }
        _ => return Err(c.err("known event tag")),
    };
    c.expect(b'}')?;
    c.skip_ws();
    if c.pos != c.s.len() {
        return Err(c.err("end of line"));
    }
    Ok(e)
}

/// Reads a JSON-lines trace.
///
/// # Errors
///
/// Fails on malformed lines or I/O errors.
pub fn read_json(input: impl BufRead) -> io::Result<Vec<Event>> {
    let mut events = Vec::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(event_from_json(&line)?);
    }
    Ok(events)
}

fn encode_event(e: &Event, buf: &mut Vec<u8>) {
    match *e {
        Event::Malloc { thread, id, size } => {
            buf.push(0);
            buf.push(thread);
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&size.to_le_bytes());
        }
        Event::Free { thread, id } => {
            buf.push(1);
            buf.push(thread);
            buf.extend_from_slice(&id.to_le_bytes());
        }
        Event::Touch {
            thread,
            id,
            offset,
            len,
            write,
        } => {
            buf.push(if write { 3 } else { 2 });
            buf.push(thread);
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&offset.to_le_bytes());
            buf.extend_from_slice(&len.to_le_bytes());
        }
        Event::Compute { thread, amount } => {
            buf.push(4);
            buf.push(thread);
            buf.extend_from_slice(&amount.to_le_bytes());
        }
    }
}

/// Writes a stream in the compact binary encoding.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_binary<'a>(
    events: impl Iterator<Item = &'a Event>,
    mut out: impl Write,
) -> io::Result<()> {
    out.write_all(MAGIC)?;
    let mut buf = Vec::with_capacity(64 * 1024);
    for e in events {
        encode_event(e, &mut buf);
        if buf.len() >= 60 * 1024 {
            out.write_all(&buf)?;
            buf.clear();
        }
    }
    out.write_all(&buf)?;
    Ok(())
}

/// Little-endian read cursor over a byte slice.
struct ByteCursor<'a>(&'a [u8]);

impl ByteCursor<'_> {
    fn need(&self, n: usize) -> io::Result<()> {
        if self.0.len() < n {
            Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated trace record",
            ))
        } else {
            Ok(())
        }
    }

    fn get_u8(&mut self) -> io::Result<u8> {
        self.need(1)?;
        let v = self.0[0];
        self.0 = &self.0[1..];
        Ok(v)
    }

    fn get_u32_le(&mut self) -> io::Result<u32> {
        self.need(4)?;
        let (head, rest) = self.0.split_at(4);
        self.0 = rest;
        Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
    }

    fn get_u64_le(&mut self) -> io::Result<u64> {
        self.need(8)?;
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }
}

/// Reads a binary trace produced by [`write_binary`].
///
/// # Errors
///
/// Fails on a bad magic header, truncated records, or unknown tags.
pub fn read_binary(mut input: impl Read) -> io::Result<Vec<Event>> {
    let mut all = Vec::new();
    input.read_to_end(&mut all)?;
    if all.len() < MAGIC.len() || &all[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    let mut buf = ByteCursor(&all[MAGIC.len()..]);
    let mut events = Vec::new();
    while !buf.0.is_empty() {
        let tag = buf.get_u8()?;
        let e = match tag {
            0 => Event::Malloc {
                thread: buf.get_u8()?,
                id: buf.get_u64_le()?,
                size: buf.get_u32_le()?,
            },
            1 => Event::Free {
                thread: buf.get_u8()?,
                id: buf.get_u64_le()?,
            },
            2 | 3 => Event::Touch {
                write: tag == 3,
                thread: buf.get_u8()?,
                id: buf.get_u64_le()?,
                offset: buf.get_u32_le()?,
                len: buf.get_u32_le()?,
            },
            4 => Event::Compute {
                thread: buf.get_u8()?,
                amount: buf.get_u32_le()?,
            },
            t => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown trace tag {t}"),
                ))
            }
        };
        events.push(e);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::{collect, ChurnParams};

    fn sample() -> Vec<Event> {
        collect(&ChurnParams::tiny())
    }

    #[test]
    fn json_roundtrip() {
        let ev = sample();
        let mut buf = Vec::new();
        write_json(ev.iter(), &mut buf).unwrap();
        let back = read_json(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn json_format_is_externally_tagged() {
        let ev = [Event::Malloc {
            thread: 1,
            id: 7,
            size: 64,
        }];
        let mut buf = Vec::new();
        write_json(ev.iter(), &mut buf).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "{\"Malloc\":{\"thread\":1,\"id\":7,\"size\":64}}\n"
        );
    }

    #[test]
    fn json_accepts_whitespace_and_field_reorder() {
        let line =
            r#" { "Touch" : { "id": 3, "thread": 1, "len": 8, "offset": 0, "write": true } } "#;
        assert_eq!(
            event_from_json(line).unwrap(),
            Event::Touch {
                thread: 1,
                id: 3,
                offset: 0,
                len: 8,
                write: true,
            }
        );
    }

    #[test]
    fn json_rejects_garbage() {
        for bad in [
            "{}",
            r#"{"Malloc":{"thread":0,"id":1}}"#,
            r#"{"Malloc":{"thread":0,"id":1,"size":-4}}"#,
            r#"{"Malloc":{"thread":900,"id":1,"size":4}}"#,
            r#"{"Unknown":{"thread":0}}"#,
            r#"{"Free":{"thread":0,"id":1}} trailing"#,
            r#"{"Free":{"thread":0,"id":1,"id":2}}"#,
        ] {
            assert!(event_from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn binary_roundtrip() {
        let ev = sample();
        let mut buf = Vec::new();
        write_binary(ev.iter(), &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn binary_is_compact() {
        let ev = sample();
        let mut json = Vec::new();
        write_json(ev.iter(), &mut json).unwrap();
        let mut bin = Vec::new();
        write_binary(ev.iter(), &mut bin).unwrap();
        assert!(bin.len() * 3 < json.len(), "binary should be much smaller");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_binary(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_record_rejected() {
        let ev = [Event::Free { thread: 0, id: 1 }];
        let mut buf = Vec::new();
        write_binary(ev.iter(), &mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_binary([].iter(), &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), Vec::<Event>::new());
    }
}
