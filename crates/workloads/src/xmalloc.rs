//! `xmalloc`: the cross-thread-free stress test (Lever & Boreham).
//!
//! The paper's footnote 2: "xmalloc is a multi-threaded benchmark ... used
//! to exercise cases where a thread allocates data but a different thread
//! deallocates the allocated blocks." Table 2 runs it on TCMalloc with
//! 1–8 threads and observes LLC misses growing more than 10× — the cost
//! of per-thread caches exchanging blocks through shared structures.
//!
//! Structure: `threads` workers are arranged in a ring. Each worker
//! allocates blocks, touches them, and hands them to its ring successor,
//! which frees them. With one thread the ring degenerates to self-frees
//! (no contention); with more threads every block migrates cores.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::events::Event;

/// Parameters for the xmalloc workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XmallocParams {
    /// Worker threads (the paper sweeps 1, 2, 4, 8).
    pub threads: u8,
    /// Allocations per thread.
    pub allocs_per_thread: u32,
    /// Blocks a worker batches before handing them over.
    pub batch: u32,
    /// Block size range (inclusive), bytes.
    pub size_range: (u32, u32),
    /// Compute instructions between allocations.
    pub compute_per_alloc: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XmallocParams {
    fn default() -> Self {
        XmallocParams {
            threads: 4,
            allocs_per_thread: 20_000,
            batch: 64,
            size_range: (16, 256),
            compute_per_alloc: 120,
            seed: 0x786d616c, // "xmal"
        }
    }
}

impl XmallocParams {
    /// A quick configuration for unit tests.
    pub fn tiny() -> Self {
        XmallocParams {
            threads: 2,
            allocs_per_thread: 200,
            ..Default::default()
        }
    }

    /// Same workload with a different thread count (the Table 2 sweep).
    pub fn with_threads(mut self, threads: u8) -> Self {
        self.threads = threads;
        self
    }
}

/// Generates the workload. Events from the workers are interleaved
/// batch-by-batch round-robin, approximating concurrent execution for the
/// simulator (which executes a single global order).
pub fn generate(p: &XmallocParams, emit: &mut dyn FnMut(Event)) {
    assert!(p.threads >= 1, "xmalloc needs at least one thread");
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let mut next_id: u64 = 1;
    let batches = p.allocs_per_thread.div_ceil(p.batch);
    // In-flight blocks awaiting free, per consumer thread.
    let mut pending: Vec<Vec<u64>> = vec![Vec::new(); p.threads as usize];
    let mut remaining: Vec<u32> = vec![p.allocs_per_thread; p.threads as usize];

    for _round in 0..batches {
        for t in 0..p.threads {
            // Free what predecessors handed to us first (keeps live set
            // bounded, mirrors the real benchmark's queue discipline).
            for id in pending[t as usize].drain(..) {
                emit(Event::Free { thread: t, id });
            }
            let n = p.batch.min(remaining[t as usize]);
            remaining[t as usize] -= n;
            let successor = (t + 1) % p.threads;
            for _ in 0..n {
                let id = next_id;
                next_id += 1;
                let size = rng.random_range(p.size_range.0..=p.size_range.1);
                emit(Event::Malloc {
                    thread: t,
                    id,
                    size,
                });
                emit(Event::Touch {
                    thread: t,
                    id,
                    offset: 0,
                    len: size,
                    write: true,
                });
                emit(Event::Compute {
                    thread: t,
                    amount: p.compute_per_alloc,
                });
                pending[successor as usize].push(id);
            }
        }
    }
    // Drain the final batches.
    for t in 0..p.threads {
        for id in pending[t as usize].drain(..) {
            emit(Event::Free { thread: t, id });
        }
    }
}

/// Collects the full stream into memory.
pub fn collect(p: &XmallocParams) -> Vec<Event> {
    let mut v = Vec::new();
    generate(p, &mut |e| v.push(e));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::validate;

    #[test]
    fn balanced_and_bounded() {
        let p = XmallocParams::tiny();
        let s = validate(collect(&p).into_iter(), false).unwrap();
        assert_eq!(
            s.mallocs,
            u64::from(p.threads) * u64::from(p.allocs_per_thread)
        );
        assert_eq!(s.mallocs, s.frees);
        assert!(s.peak_live <= u64::from(p.threads) * u64::from(p.batch) * 2);
    }

    #[test]
    fn frees_happen_on_successor_thread() {
        let p = XmallocParams::tiny();
        let ev = collect(&p);
        let mut allocator = std::collections::HashMap::new();
        let mut cross = 0u64;
        let mut total = 0u64;
        for e in &ev {
            match *e {
                Event::Malloc { thread, id, .. } => {
                    allocator.insert(id, thread);
                }
                Event::Free { thread, id } => {
                    total += 1;
                    if allocator[&id] != thread {
                        cross += 1;
                    }
                }
                _ => {}
            }
        }
        assert_eq!(cross, total, "with 2+ threads every free is remote");
    }

    #[test]
    fn single_thread_has_no_remote_frees() {
        let p = XmallocParams::tiny().with_threads(1);
        let ev = collect(&p);
        let mut allocator = std::collections::HashMap::new();
        for e in &ev {
            match *e {
                Event::Malloc { thread, id, .. } => {
                    allocator.insert(id, thread);
                }
                Event::Free { thread, id } => assert_eq!(allocator[&id], thread),
                _ => {}
            }
        }
    }

    #[test]
    fn thread_sweep_preserves_per_thread_work() {
        for t in [1u8, 2, 4, 8] {
            let p = XmallocParams::tiny().with_threads(t);
            let s = validate(collect(&p).into_iter(), false).unwrap();
            assert_eq!(s.mallocs, u64::from(t) * u64::from(p.allocs_per_thread));
            assert_eq!(s.threads, t);
        }
    }
}
