//! The event vocabulary shared by all workloads.

/// One step of a workload.
///
/// Object identity is a dense `u64` assigned by the generator; replayers
/// map ids to addresses. `thread` selects the logical thread (mapped to a
/// simulated core or a real OS thread by the replayer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Allocate `size` bytes as object `id`.
    Malloc {
        /// Logical thread performing the allocation.
        thread: u8,
        /// Fresh object identifier.
        id: u64,
        /// Requested bytes.
        size: u32,
    },
    /// Free object `id`.
    Free {
        /// Logical thread performing the free.
        thread: u8,
        /// Object to release.
        id: u64,
    },
    /// Read or write `len` bytes at `offset` within object `id`.
    Touch {
        /// Logical thread touching the memory.
        thread: u8,
        /// Target object.
        id: u64,
        /// Byte offset within the object.
        offset: u32,
        /// Bytes touched.
        len: u32,
        /// Store (`true`) or load (`false`).
        write: bool,
    },
    /// Execute `amount` allocation-unrelated instructions.
    Compute {
        /// Logical thread doing the work.
        thread: u8,
        /// Instruction count.
        amount: u32,
    },
}

impl Event {
    /// The logical thread this event runs on.
    pub fn thread(&self) -> u8 {
        match *self {
            Event::Malloc { thread, .. }
            | Event::Free { thread, .. }
            | Event::Touch { thread, .. }
            | Event::Compute { thread, .. } => thread,
        }
    }
}

/// Aggregate facts about a stream, for sanity checks and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Total events.
    pub events: u64,
    /// Malloc events.
    pub mallocs: u64,
    /// Free events.
    pub frees: u64,
    /// Touch events.
    pub touches: u64,
    /// Total compute instructions.
    pub compute: u64,
    /// Bytes requested across all mallocs.
    pub bytes_requested: u64,
    /// Maximum simultaneously-live objects.
    pub peak_live: u64,
    /// Distinct threads seen.
    pub threads: u8,
}

impl StreamSummary {
    /// Scans a stream and accumulates its summary (consumes the iterator).
    pub fn scan(events: impl Iterator<Item = Event>) -> Self {
        let mut s = StreamSummary::default();
        let mut live: i64 = 0;
        for e in events {
            s.events += 1;
            s.threads = s.threads.max(e.thread() + 1);
            match e {
                Event::Malloc { size, .. } => {
                    s.mallocs += 1;
                    s.bytes_requested += u64::from(size);
                    live += 1;
                    s.peak_live = s.peak_live.max(live as u64);
                }
                Event::Free { .. } => {
                    s.frees += 1;
                    live -= 1;
                }
                Event::Touch { .. } => s.touches += 1,
                Event::Compute { amount, .. } => s.compute += u64::from(amount),
            }
        }
        s
    }

    /// Fraction of events that are allocator operations.
    pub fn alloc_op_fraction(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            (self.mallocs + self.frees) as f64 / self.events as f64
        }
    }
}

/// Validates that a stream is well-formed: every `Free`/`Touch` names a
/// live object, ids are never reused, and frees balance mallocs (up to
/// `allow_leaks`).
///
/// Returns the summary on success; a description of the first violation
/// otherwise. Used by property tests on every generator.
pub fn validate(
    events: impl Iterator<Item = Event>,
    allow_leaks: bool,
) -> Result<StreamSummary, String> {
    use std::collections::HashMap;
    let mut live: HashMap<u64, u32> = HashMap::new();
    let mut seen = std::collections::HashSet::new();
    let mut summary = StreamSummary::default();
    let mut live_count: i64 = 0;
    for (i, e) in events.enumerate() {
        summary.events += 1;
        summary.threads = summary.threads.max(e.thread() + 1);
        match e {
            Event::Malloc { id, size, .. } => {
                if !seen.insert(id) {
                    return Err(format!("event {i}: id {id} reused"));
                }
                live.insert(id, size);
                summary.mallocs += 1;
                summary.bytes_requested += u64::from(size);
                live_count += 1;
                summary.peak_live = summary.peak_live.max(live_count as u64);
            }
            Event::Free { id, .. } => {
                if live.remove(&id).is_none() {
                    return Err(format!("event {i}: free of dead id {id}"));
                }
                summary.frees += 1;
                live_count -= 1;
            }
            Event::Touch {
                id, offset, len, ..
            } => {
                match live.get(&id) {
                    None => return Err(format!("event {i}: touch of dead id {id}")),
                    Some(&size) => {
                        if u64::from(offset) + u64::from(len) > u64::from(size) {
                            return Err(format!(
                                "event {i}: touch [{offset}, {offset}+{len}) out of bounds of {size}"
                            ));
                        }
                    }
                }
                summary.touches += 1;
            }
            Event::Compute { amount, .. } => summary.compute += u64::from(amount),
        }
    }
    if !allow_leaks && !live.is_empty() {
        return Err(format!("{} objects leaked", live.len()));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(id: u64, size: u32) -> Event {
        Event::Malloc {
            thread: 0,
            id,
            size,
        }
    }

    fn f(id: u64) -> Event {
        Event::Free { thread: 0, id }
    }

    #[test]
    fn validate_accepts_balanced_stream() {
        let ev = vec![
            m(1, 64),
            Event::Touch {
                thread: 0,
                id: 1,
                offset: 0,
                len: 64,
                write: true,
            },
            f(1),
        ];
        let s = validate(ev.into_iter(), false).unwrap();
        assert_eq!(s.mallocs, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.peak_live, 1);
    }

    #[test]
    fn validate_rejects_double_free() {
        let ev = vec![m(1, 8), f(1), f(1)];
        assert!(validate(ev.into_iter(), false).is_err());
    }

    #[test]
    fn validate_rejects_oob_touch() {
        let ev = vec![
            m(1, 8),
            Event::Touch {
                thread: 0,
                id: 1,
                offset: 4,
                len: 8,
                write: false,
            },
            f(1),
        ];
        assert!(validate(ev.into_iter(), false).is_err());
    }

    #[test]
    fn validate_rejects_leak_unless_allowed() {
        let ev = vec![m(1, 8)];
        assert!(validate(ev.clone().into_iter(), false).is_err());
        assert!(validate(ev.into_iter(), true).is_ok());
    }

    #[test]
    fn summary_counts_compute_and_threads() {
        let ev = vec![
            Event::Compute {
                thread: 2,
                amount: 100,
            },
            Event::Compute {
                thread: 0,
                amount: 50,
            },
        ];
        let s = StreamSummary::scan(ev.into_iter());
        assert_eq!(s.compute, 150);
        assert_eq!(s.threads, 3);
        assert_eq!(s.alloc_op_fraction(), 0.0);
    }
}
