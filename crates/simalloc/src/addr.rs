//! Simulated virtual address space.

/// A bump reservation of simulated virtual addresses (an `mmap` stand-in).
///
/// Addresses are purely symbolic — nothing is mapped — but they are what
/// the cache and TLB models index by, so *where* a policy places blocks is
/// exactly as consequential as on real hardware.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u64,
    reserved: u64,
}

impl AddressSpace {
    /// Creates a space whose first reservation lands at `base`.
    pub fn new(base: u64) -> Self {
        AddressSpace {
            next: base,
            reserved: 0,
        }
    }

    /// Reserves `size` bytes aligned to `align` (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn reserve(&mut self, size: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + size;
        self.reserved += size;
        base
    }

    /// Total bytes ever reserved.
    pub fn reserved_bytes(&self) -> u64 {
        self.reserved
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        // Leave low memory for per-model fixed regions (TLS areas, bin
        // arrays, communication slots).
        AddressSpace::new(0x1000_0000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_are_disjoint_and_aligned() {
        let mut s = AddressSpace::default();
        let a = s.reserve(100, 64);
        let b = s.reserve(4096, 4096);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 4096, 0);
        assert!(b >= a + 100);
        assert_eq!(s.reserved_bytes(), 4196);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_align_panics() {
        AddressSpace::default().reserve(8, 3);
    }
}
