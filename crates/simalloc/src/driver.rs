//! Replays workload event streams against an allocator model on a
//! simulated machine.

use std::collections::HashMap;

use ngm_sim::{Access, AccessClass, Machine, PmuCounters};
use ngm_workloads::Event;

use crate::model::AllocModel;

/// The outcome of one replay.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Model display name.
    pub name: &'static str,
    /// Per-core PMU counters.
    pub per_core: Vec<PmuCounters>,
    /// Machine-wide sums.
    pub total: PmuCounters,
    /// Wall-clock cycles (max over cores — cores run concurrently).
    pub wall_cycles: u64,
    /// Metadata footprint at end of run.
    pub meta_bytes: u64,
    /// Atomic operations the model executed.
    pub model_atomics: u64,
    /// Objects still live at end of run (should be 0 for balanced
    /// streams).
    pub leaked: usize,
}

impl RunResult {
    /// Counters of the application cores only (excludes the NGM service
    /// core, which is the machine's last core when present).
    pub fn app_total(&self, app_cores: usize) -> PmuCounters {
        self.per_core[..app_cores.min(self.per_core.len())]
            .iter()
            .fold(PmuCounters::default(), |acc, c| acc.merge(c))
    }
}

/// Replays `events` against `model` on `machine`.
///
/// `Touch` traffic is issued at the addresses the model's placement chose,
/// with one architectural access plus `len/32` loop instructions per
/// event — identical across models, so instruction counts (the MPKI
/// denominator) differ only by allocator-internal work, as in the paper's
/// Table 1.
///
/// # Panics
///
/// Panics on malformed streams (frees or touches of dead ids) — workload
/// generators are property-tested to never produce them.
pub fn run(
    machine: &mut Machine,
    model: &mut dyn AllocModel,
    events: impl Iterator<Item = Event>,
) -> RunResult {
    run_warm(machine, model, events, 0)
}

/// Like [`run`], but zeroes the machine's counters after the first
/// `warmup` events, so measurements start from the allocator's fragmented
/// steady state (caches and TLBs stay warm — only the counters reset).
pub fn run_warm(
    machine: &mut Machine,
    model: &mut dyn AllocModel,
    events: impl Iterator<Item = Event>,
    warmup: usize,
) -> RunResult {
    let mut objects: HashMap<u64, (u64, u32)> = HashMap::new();
    for (i, e) in events.enumerate() {
        if i == warmup && warmup > 0 {
            machine.reset_counters();
        }
        match e {
            Event::Malloc { thread, id, size } => {
                let addr = model.malloc(machine, thread as usize, size);
                let prev = objects.insert(id, (addr, size));
                debug_assert!(prev.is_none(), "duplicate object id {id}");
            }
            Event::Free { thread, id } => {
                let (addr, size) = objects.remove(&id).expect("free of dead object");
                model.free(machine, thread as usize, addr, size);
            }
            Event::Touch {
                thread,
                id,
                offset,
                len,
                write,
            } => {
                let (addr, size) = *objects.get(&id).expect("touch of dead object");
                debug_assert!(offset + len <= size, "touch out of bounds");
                let core = thread as usize;
                let a = addr + u64::from(offset);
                let access = if write {
                    Access::store(a, len.max(1), AccessClass::User)
                } else {
                    // DOM walks and queries chase pointers: dependent.
                    Access::load(a, len.max(1), AccessClass::User).dependent()
                };
                machine.access(core, access);
                machine.retire(core, u64::from(len / 32));
            }
            Event::Compute { thread, amount } => {
                machine.retire(thread as usize, u64::from(amount));
            }
        }
    }
    let per_core: Vec<PmuCounters> = (0..machine.num_cores())
        .map(|c| machine.core_counters(c))
        .collect();
    RunResult {
        name: model.name(),
        total: per_core
            .iter()
            .fold(PmuCounters::default(), |acc, c| acc.merge(c)),
        wall_cycles: machine.wall_cycles(),
        per_core,
        meta_bytes: model.meta_bytes(),
        model_atomics: model.atomics(),
        leaked: objects.len(),
    }
}

/// Convenience: builds the machine and model for `kind`, replays, returns
/// the result.
pub fn run_kind(
    kind: crate::model::ModelKind,
    app_threads: usize,
    events: impl Iterator<Item = Event>,
) -> RunResult {
    run_kind_warm(kind, app_threads, events, 0)
}

/// [`run_kind`] with a warmup prefix excluded from the counters.
pub fn run_kind_warm(
    kind: crate::model::ModelKind,
    app_threads: usize,
    events: impl Iterator<Item = Event>,
    warmup: usize,
) -> RunResult {
    let mut machine = Machine::new(kind.machine(app_threads));
    let mut model = kind.build(app_threads);
    run_warm(&mut machine, model.as_mut(), events, warmup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use ngm_workloads::churn::{collect, ChurnParams};
    use ngm_workloads::xalanc::{self, XalancParams};

    #[test]
    fn all_models_replay_churn_without_leaks() {
        let events = collect(&ChurnParams::tiny());
        for kind in ModelKind::BASELINES.into_iter().chain([ModelKind::Ngm]) {
            let r = run_kind(kind, 1, events.iter().copied());
            assert_eq!(r.leaked, 0, "{} leaked objects", r.name);
            assert!(r.total.instructions > 0);
            assert!(r.wall_cycles > 0);
        }
    }

    #[test]
    fn multithreaded_churn_replays() {
        let events = collect(&ChurnParams {
            threads: 4,
            ..ChurnParams::tiny()
        });
        for kind in [ModelKind::TcMalloc, ModelKind::Mimalloc, ModelKind::Ngm] {
            let r = run_kind(kind, 4, events.iter().copied());
            assert_eq!(r.leaked, 0);
        }
    }

    #[test]
    fn instruction_counts_are_comparable_across_models() {
        // Table 1's instruction row varies by only a few percent between
        // allocators; the driver must reproduce that property.
        let events = xalanc::collect(&XalancParams::tiny());
        let base = run_kind(ModelKind::Mimalloc, 1, events.iter().copied());
        for kind in [ModelKind::PtMalloc2, ModelKind::TcMalloc, ModelKind::Ngm] {
            let r = run_kind(kind, 1, events.iter().copied());
            let app = r.app_total(1).instructions as f64;
            let ratio = app / base.app_total(1).instructions as f64;
            assert!(
                (0.9..1.1).contains(&ratio),
                "{}: instruction ratio {ratio} too far from Mimalloc",
                r.name
            );
        }
    }

    #[test]
    fn ngm_app_cores_see_no_heap_metadata_misses() {
        let events = xalanc::collect(&XalancParams::tiny());
        let r = run_kind(ModelKind::Ngm, 1, events.iter().copied());
        let svc = r.per_core.last().expect("service core");
        assert!(svc.instructions > 0, "service core did work");
    }

    #[test]
    #[should_panic(expected = "free of dead object")]
    fn malformed_stream_panics() {
        let events = vec![Event::Free { thread: 0, id: 9 }];
        run_kind(ModelKind::Mimalloc, 1, events.into_iter());
    }
}

#[cfg(test)]
mod diag {
    use super::*;
    use crate::model::ModelKind;
    use ngm_workloads::xalanc::{self, XalancParams};

    /// Diagnostic (run with --ignored --nocapture): placement entropy of
    /// node-sized allocations in the steady state.
    #[test]
    #[ignore]
    fn placement_scatter() {
        let p = XalancParams::small();
        let (events, warmup) = xalanc::collect_with_warmup(&p);
        for kind in [ModelKind::PtMalloc2, ModelKind::Mimalloc] {
            let mut machine = Machine::new(kind.machine(1));
            let mut model = kind.build(1);
            let mut objects: HashMap<u64, (u64, u32)> = HashMap::new();
            let mut node_addrs: Vec<u64> = Vec::new();
            for (i, e) in events.iter().copied().enumerate() {
                match e {
                    Event::Malloc { thread, id, size } => {
                        let addr = model.malloc(&mut machine, thread as usize, size);
                        objects.insert(id, (addr, size));
                        if size == 100 && i > warmup {
                            node_addrs.push(addr);
                        }
                    }
                    Event::Free { thread, id } => {
                        let (addr, size) = objects.remove(&id).unwrap();
                        model.free(&mut machine, thread as usize, addr, size);
                    }
                    _ => {}
                }
            }
            // Distinct 4KiB pages per window of 64 consecutive nodes.
            let mut pages_per_win = Vec::new();
            for w in node_addrs.chunks(64) {
                let pages: std::collections::HashSet<u64> = w.iter().map(|a| a >> 12).collect();
                pages_per_win.push(pages.len());
            }
            let avg: f64 =
                pages_per_win.iter().sum::<usize>() as f64 / pages_per_win.len().max(1) as f64;
            // Mean jump between consecutive nodes.
            let jumps: Vec<u64> = node_addrs.windows(2).map(|w| w[0].abs_diff(w[1])).collect();
            let med = {
                let mut j = jumps.clone();
                j.sort_unstable();
                j.get(j.len() / 2).copied().unwrap_or(0)
            };
            println!(
                "{}: nodes={} pages/64-node-window={:.1} median-jump={}",
                model.name(),
                node_addrs.len(),
                avg,
                med
            );
        }
    }
}
