//! TCMalloc model: per-thread caches over central free lists.
//!
//! §2.3: "TCMalloc uses per-CPU/thread cache to maintain metadata
//! associated with each logical core, avoiding locks for most memory
//! allocations and deallocations. ... However, maintaining thread-local
//! caches will increase metadata size, resulting in more heap memory
//! consumption and more cache pollution for the user program."
//!
//! Model shape:
//!
//! * Fast path: pop/push on a per-core free list whose links are threaded
//!   through the objects themselves (TCMalloc free lists are intrusive).
//! * Slow path: batch refill/flush against a central per-class list under
//!   an atomic lock, touching every transferred object's line.
//! * Cross-thread frees land in the *freeing* core's cache; blocks
//!   migrate between caches through the central list — the Table 2
//!   mechanism (LLC misses grow >10× from 1 to 8 threads).

use ngm_sim::{Access, AccessClass, Machine};

use crate::addr::AddressSpace;
use crate::model::{large_alloc, large_free, size_class, AllocModel, CLASS_SIZES, LARGE_CUTOFF};
use crate::slab::{MetaTraffic, SlabHeap};

/// Objects transferred per central-list round trip.
const BATCH: usize = 16;

/// Per-class cache-length cap before half is flushed centrally.
const CACHE_CAP: usize = 128;

/// The TCMalloc-style model.
pub struct TcMallocModel {
    space: AddressSpace,
    /// Central page-backed storage (spans), one shared instance.
    central: SlabHeap,
    /// Per-core, per-class cached object addresses.
    caches: Vec<Vec<Vec<u64>>>,
    /// Base of each core's thread-cache metadata region.
    tls_base: Vec<u64>,
    /// Central free-list lock/metadata lines, one per class.
    central_meta: u64,
    atomics: u64,
}

impl TcMallocModel {
    /// Creates the model for `threads` application cores.
    pub fn new(threads: usize) -> Self {
        let mut space = AddressSpace::default();
        let central_meta = space.reserve(64 * CLASS_SIZES.len() as u64, 4096);
        let tls_base = (0..threads).map(|_| space.reserve(4096, 4096)).collect();
        // TCMalloc spans for small classes are 8 KiB.
        let central = SlabHeap::with_page_size(&mut space, MetaTraffic::InBlock, usize::MAX, 8192);
        TcMallocModel {
            space,
            central,
            caches: vec![vec![Vec::new(); CLASS_SIZES.len()]; threads],
            tls_base,
            central_meta,
            atomics: 0,
        }
    }

    fn list_head_addr(&self, core: usize, class: usize) -> u64 {
        self.tls_base[core] + class as u64 * 16
    }

    fn central_lock_addr(&self, class: usize) -> u64 {
        self.central_meta + class as u64 * 64
    }

    /// Total objects parked in thread caches (metadata footprint probe).
    pub fn cached_objects(&self) -> usize {
        self.caches
            .iter()
            .flat_map(|c| c.iter())
            .map(Vec::len)
            .sum()
    }
}

impl AllocModel for TcMallocModel {
    fn name(&self) -> &'static str {
        "TCMalloc"
    }

    fn malloc(&mut self, machine: &mut Machine, core: usize, size: u32) -> u64 {
        let Some((class, _block)) = size_class(size) else {
            return large_alloc(&mut self.space, machine, core, size);
        };
        machine.retire(core, 25);
        // Thread-cache head probe.
        machine.access(
            core,
            Access::load(self.list_head_addr(core, class), 8, AccessClass::Meta),
        );
        if self.caches[core][class].is_empty() {
            // Refill from the central list under its lock.
            machine.access(
                core,
                Access::atomic(self.central_lock_addr(class), 8, AccessClass::Meta),
            );
            self.atomics += 1;
            machine.retire(core, 80);
            for _ in 0..BATCH {
                let addr = self.central.alloc(machine, core, &mut self.space, class);
                // Chaining the object into the cache list touches it.
                machine.access(core, Access::store(addr, 8, AccessClass::Meta));
                self.caches[core][class].push(addr);
            }
            machine.access(
                core,
                Access::atomic(self.central_lock_addr(class), 8, AccessClass::Meta),
            );
            self.atomics += 1;
        }
        let addr = self.caches[core][class]
            .pop()
            .expect("refilled cache is non-empty");
        // Popping reads the intrusive next pointer in the object.
        machine.access(core, Access::load(addr, 8, AccessClass::Meta));
        machine.access(
            core,
            Access::store(self.list_head_addr(core, class), 8, AccessClass::Meta),
        );
        addr
    }

    fn free(&mut self, machine: &mut Machine, core: usize, addr: u64, size: u32) {
        if u64::from(size) > LARGE_CUTOFF {
            large_free(machine, core);
            return;
        }
        let (class, _block) = size_class(size).expect("small size has a class");
        machine.retire(core, 20);
        // Push onto this core's cache: write the intrusive link into the
        // object (dirtying a line that may live in another core's cache —
        // the xmalloc cross-thread pattern) and update the head.
        machine.access(core, Access::store(addr, 8, AccessClass::Meta));
        machine.access(
            core,
            Access::store(self.list_head_addr(core, class), 8, AccessClass::Meta),
        );
        self.caches[core][class].push(addr);

        if self.caches[core][class].len() > CACHE_CAP {
            // Flush half to the central list under its lock.
            machine.access(
                core,
                Access::atomic(self.central_lock_addr(class), 8, AccessClass::Meta),
            );
            self.atomics += 1;
            machine.retire(core, 100);
            for _ in 0..CACHE_CAP / 2 {
                let a = self.caches[core][class]
                    .pop()
                    .expect("cache has > CACHE_CAP entries");
                // Walking the chain touches each object on its way out.
                machine.access(core, Access::load(a, 8, AccessClass::Meta));
                self.central.free(machine, core, a);
            }
            machine.access(
                core,
                Access::atomic(self.central_lock_addr(class), 8, AccessClass::Meta),
            );
            self.atomics += 1;
        }
    }

    fn meta_bytes(&self) -> u64 {
        let tls = self.tls_base.len() as u64 * 4096;
        let cached_links = self.cached_objects() as u64 * 8;
        tls + cached_links + self.central.meta_bytes()
    }

    fn atomics(&self) -> u64 {
        self.atomics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngm_sim::MachineConfig;

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::a72(n))
    }

    #[test]
    fn fast_path_after_refill_takes_no_atomics() {
        let mut m = machine(1);
        let mut a = TcMallocModel::new(1);
        let _first = a.malloc(&mut m, 0, 64); // refill: 2 atomics
        let base = a.atomics();
        let p = a.malloc(&mut m, 0, 64);
        assert_eq!(a.atomics(), base, "fast path is atomic-free");
        a.free(&mut m, 0, p, 64);
        assert_eq!(a.atomics(), base, "local free is atomic-free");
    }

    #[test]
    fn refill_batches_from_central() {
        let mut m = machine(1);
        let mut a = TcMallocModel::new(1);
        a.malloc(&mut m, 0, 64);
        assert_eq!(a.caches[0][size_class(64).unwrap().0].len(), BATCH - 1);
    }

    #[test]
    fn same_class_blocks_are_dense() {
        let mut m = machine(1);
        let mut a = TcMallocModel::new(1);
        let mut addrs: Vec<u64> = (0..BATCH).map(|_| a.malloc(&mut m, 0, 64)).collect();
        addrs.sort_unstable();
        // One batch comes from one span: consecutive 64-byte blocks.
        assert_eq!(addrs[BATCH - 1] - addrs[0], 64 * (BATCH as u64 - 1));
    }

    #[test]
    fn overflow_flushes_to_central() {
        let mut m = machine(1);
        let mut a = TcMallocModel::new(1);
        let addrs: Vec<u64> = (0..CACHE_CAP + 8)
            .map(|_| a.malloc(&mut m, 0, 128))
            .collect();
        let before = a.atomics();
        for p in addrs {
            a.free(&mut m, 0, p, 128);
        }
        assert!(a.atomics() > before, "flush requires the central lock");
        assert!(a.caches[0][size_class(128).unwrap().0].len() <= CACHE_CAP);
    }

    #[test]
    fn cross_thread_free_migrates_blocks() {
        let mut m = machine(2);
        let mut a = TcMallocModel::new(2);
        let p = a.malloc(&mut m, 0, 64);
        // Freed by core 1: the block now sits in core 1's cache.
        a.free(&mut m, 1, p, 64);
        let q = a.malloc(&mut m, 1, 64);
        assert_eq!(p, q, "block reused by the freeing core");
        // Core 1's store to the block invalidated core 0's copy.
        assert!(m.core_counters(1).coherence_events > 0);
    }
}
