//! Figure 2 experiment: aggregated vs. segregated metadata layout, all
//! else equal.
//!
//! Both models here use the *same* placement policy (one slab heap on the
//! caller's core); the only difference is [`MetaTraffic`]: in-block links
//! (aggregated) versus a decoupled index array (segregated). Comparing
//! them isolates the layout trade-off the paper draws:
//!
//! * Aggregated warms the block's line during `malloc` — "better spatial
//!   localities ... if a block is accessed directly after the malloc".
//! * Segregated keeps user lines untouched by the allocator and enables
//!   offload, at the price of extra metadata space and a colder first
//!   user access.

use ngm_sim::Machine;

use crate::addr::AddressSpace;
use crate::model::{large_alloc, large_free, size_class, AllocModel, LARGE_CUTOFF};
use crate::slab::{MetaTraffic, SlabHeap};

/// A single-core slab allocator parameterized only by metadata layout.
pub struct LayoutModel {
    space: AddressSpace,
    heap: SlabHeap,
    layout: MetaTraffic,
}

impl LayoutModel {
    /// Builds the aggregated-layout variant.
    pub fn aggregated() -> Self {
        Self::with_layout(MetaTraffic::InBlock)
    }

    /// Builds the segregated-layout variant.
    pub fn segregated() -> Self {
        Self::with_layout(MetaTraffic::IndexArray)
    }

    fn with_layout(layout: MetaTraffic) -> Self {
        let mut space = AddressSpace::default();
        let heap = SlabHeap::new(&mut space, layout, 0);
        LayoutModel {
            space,
            heap,
            layout,
        }
    }

    /// Which layout this model exercises.
    pub fn layout(&self) -> MetaTraffic {
        self.layout
    }
}

impl AllocModel for LayoutModel {
    fn name(&self) -> &'static str {
        match self.layout {
            MetaTraffic::InBlock => "Aggregated",
            MetaTraffic::IndexArray => "Segregated",
        }
    }

    fn malloc(&mut self, machine: &mut Machine, core: usize, size: u32) -> u64 {
        let Some((class, _)) = size_class(size) else {
            return large_alloc(&mut self.space, machine, core, size);
        };
        machine.retire(core, 20);
        self.heap.alloc(machine, core, &mut self.space, class)
    }

    fn free(&mut self, machine: &mut Machine, core: usize, addr: u64, size: u32) {
        if u64::from(size) > LARGE_CUTOFF {
            large_free(machine, core);
            return;
        }
        machine.retire(core, 16);
        self.heap.free(machine, core, addr);
    }

    fn meta_bytes(&self) -> u64 {
        self.heap.meta_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngm_sim::{Access, AccessClass, MachineConfig};

    #[test]
    fn aggregated_warms_the_block_line() {
        let mut m = Machine::new(MachineConfig::a72(1));
        let mut agg = LayoutModel::aggregated();
        // Allocate and free once so the next malloc pops the free list.
        let p = agg.malloc(&mut m, 0, 64);
        agg.free(&mut m, 0, p, 64);
        let p = agg.malloc(&mut m, 0, 64);
        // The block's line was touched by the free-list pop: the user's
        // first access is an L1 hit.
        let lat = m.access(0, Access::load(p, 8, AccessClass::User));
        assert_eq!(lat, m.config().cost.l1_hit);
    }

    #[test]
    fn segregated_costs_more_metadata_space() {
        let mut m = Machine::new(MachineConfig::a72(1));
        let mut seg = LayoutModel::segregated();
        let mut agg = LayoutModel::aggregated();
        for _ in 0..100 {
            seg.malloc(&mut m, 0, 64);
            agg.malloc(&mut m, 0, 64);
        }
        assert!(seg.meta_bytes() > agg.meta_bytes());
    }

    #[test]
    fn both_layouts_place_identically() {
        let mut m = Machine::new(MachineConfig::a72(1));
        let mut seg = LayoutModel::segregated();
        let mut agg = LayoutModel::aggregated();
        let a: Vec<u64> = (0..50).map(|_| seg.malloc(&mut m, 0, 128)).collect();
        let b: Vec<u64> = (0..50).map(|_| agg.malloc(&mut m, 0, 128)).collect();
        let da: Vec<u64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        let db: Vec<u64> = b.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(da, db, "placement must be identical; only metadata moves");
    }
}
