//! Allocator policy models over the `ngm-sim` memory-hierarchy simulator.
//!
//! Each model re-implements the *placement policy and metadata traffic* of
//! one allocator family and drives a [`ngm_sim::Machine`] with the memory
//! accesses that policy would perform, so the machine's PMU-style counters
//! reproduce the paper's Tables 1–3 from first principles:
//!
//! | Model | Stands in for | Layout (Fig. 2) | Synchronization |
//! |-------|--------------|------------------|-----------------|
//! | [`PtMalloc2Model`] | Glibc PTMalloc2 | aggregated (boundary tags) | one arena lock |
//! | [`TcMallocModel`] | TCMalloc | intrusive free lists, size-class spans | per-thread cache + central lock |
//! | [`MimallocModel`] | Mimalloc | aggregated page-local lists | atomic thread-delayed free |
//! | [`JemallocModel`] | Jemalloc | run headers + tcache | per-arena lock |
//! | [`NgmModel`] | NextGen-Malloc | segregated, service-core-private | two flag atomics per call, zero heap atomics |
//!
//! The [`driver`] replays an `ngm-workloads` event stream against any
//! model, attributing user `Touch` traffic to the addresses the model
//! chose — which is how placement policy becomes LLC/TLB behaviour.

#![warn(missing_docs)]

pub mod addr;
pub mod completion;
pub mod driver;
pub mod jemalloc;
pub mod layout;
pub mod mimalloc;
pub mod model;
pub mod ngm;
pub mod ngm_batch;
pub mod ptmalloc;
pub mod slab;
pub mod tcmalloc;

pub use completion::CompletionModel;
pub use driver::{run, run_kind, run_kind_warm, run_warm, RunResult};
pub use jemalloc::JemallocModel;
pub use mimalloc::MimallocModel;
pub use model::{AllocModel, ModelKind};
pub use ngm::{NgmElasticModel, NgmModel, NgmShardedModel};
pub use ngm_batch::NgmBatchModel;
pub use ptmalloc::PtMalloc2Model;
pub use tcmalloc::TcMallocModel;
