//! Shared slab-page machinery for the size-class models.
//!
//! A slab heap hands out 64 KiB pages, each dedicated to one size class;
//! blocks are `page_base + index * block_size`. What differs between
//! models is *where the free-list metadata lives* and *who may touch it* —
//! which is exactly the axis of the paper's Figure 2 — so those accesses
//! are delegated to the caller through [`MetaTraffic`].

use std::collections::HashMap;

use ngm_sim::{Access, AccessClass, Machine};

use crate::addr::AddressSpace;
use crate::model::CLASS_SIZES;

/// Default slab page size (matches `ngm-heap`'s 64 KiB UMA page and
/// Mimalloc's small-object pages). TCMalloc spans and jemalloc runs are
/// smaller; models pass their own size to [`SlabHeap::with_page_size`].
pub const SIM_PAGE: u64 = 64 * 1024;

/// Where a model keeps its per-block free-list links (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaTraffic {
    /// Aggregated: the link lives in the block's first word, so pushing or
    /// popping touches the *user data* line.
    InBlock,
    /// Segregated: the link lives in a dedicated index array far from user
    /// data.
    IndexArray,
}

/// One slab page.
#[derive(Debug)]
pub struct SimPage {
    /// Base simulated address of the page's data.
    pub base: u64,
    /// Size class index.
    pub class: usize,
    /// Block size in bytes.
    pub block: u32,
    /// Total blocks.
    pub nblocks: u16,
    /// Live blocks.
    pub used: u16,
    /// Next never-used block.
    pub bump: u16,
    /// Freed block indices (LIFO).
    pub free: Vec<u16>,
    /// Core that owns the page (for remote-free routing).
    pub owner: usize,
}

impl SimPage {
    /// Whether another block can be served.
    pub fn has_space(&self) -> bool {
        !self.free.is_empty() || self.bump < self.nblocks
    }

    /// Address of block `idx`.
    pub fn block_addr(&self, idx: u16) -> u64 {
        self.base + u64::from(idx) * u64::from(self.block)
    }

    /// Block index containing `addr`.
    pub fn index_of(&self, addr: u64) -> u16 {
        ((addr - self.base) / u64::from(self.block)) as u16
    }
}

/// A set of slab pages for one owner (thread cache, arena, or the NGM
/// service heap), one partial-page list per class.
pub struct SlabHeap {
    /// All pages ever created, indexed by page id.
    pub pages: Vec<SimPage>,
    /// Page id by page base address.
    by_base: HashMap<u64, usize>,
    /// Partial (allocatable) page ids per class.
    partial: Vec<Vec<usize>>,
    /// Base address of the metadata region (descriptors + index arrays).
    pub meta_base: u64,
    /// Span/page size this heap carves (power of two).
    page_size: u64,
    layout: MetaTraffic,
    owner: usize,
}

impl SlabHeap {
    /// Creates an empty slab heap drawing pages from `space`.
    ///
    /// The metadata region is reserved up front so descriptor addresses
    /// are dense (and, for the NGM service, private to one core).
    pub fn new(space: &mut AddressSpace, layout: MetaTraffic, owner: usize) -> Self {
        Self::with_page_size(space, layout, owner, SIM_PAGE)
    }

    /// As [`SlabHeap::new`] with an explicit span size (power of two,
    /// at least 4 KiB).
    ///
    /// # Panics
    ///
    /// Panics on a non-power-of-two or undersized page size.
    pub fn with_page_size(
        space: &mut AddressSpace,
        layout: MetaTraffic,
        owner: usize,
        page_size: u64,
    ) -> Self {
        assert!(page_size.is_power_of_two() && page_size >= 4096);
        // Descriptors (64 B each) + index arrays (2 B per 16 B of page)
        // for up to 16384 pages: a sparse virtual metadata window.
        let meta_base = space.reserve(64 * 16384 + (page_size / 8) * 16384, 4096);
        SlabHeap {
            pages: Vec::new(),
            by_base: HashMap::new(),
            partial: vec![Vec::new(); CLASS_SIZES.len()],
            meta_base,
            page_size,
            layout,
            owner,
        }
    }

    /// This heap's span size.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Address of page `id`'s descriptor (one line each).
    pub fn desc_addr(&self, id: usize) -> u64 {
        self.meta_base + id as u64 * 64
    }

    /// Address of the index-array slot for block `idx` of page `id`.
    pub fn index_slot_addr(&self, id: usize, idx: u16) -> u64 {
        self.meta_base + 64 * 16384 + id as u64 * (self.page_size / 8) + u64::from(idx) * 2
    }

    /// Finds the page id owning `addr`, if any.
    pub fn page_of(&self, addr: u64) -> Option<usize> {
        // Pages are aligned to their size, so masking recovers the base.
        self.by_base.get(&(addr & !(self.page_size - 1))).copied()
    }

    /// Allocates one block of `class` for the heap's owner, charging the
    /// metadata traffic to `core`.
    pub fn alloc(
        &mut self,
        machine: &mut Machine,
        core: usize,
        space: &mut AddressSpace,
        class: usize,
    ) -> u64 {
        loop {
            if let Some(&pid) = self.partial[class].last() {
                // Descriptor access: load-and-update.
                machine.access(
                    core,
                    Access::load(self.desc_addr(pid), 16, AccessClass::Meta),
                );
                let layout = self.layout;
                let (addr, idx_meta, exhausted);
                {
                    let page = &mut self.pages[pid];
                    debug_assert_eq!(page.class, class);
                    let idx = match page.free.pop() {
                        Some(i) => i,
                        None => {
                            let i = page.bump;
                            page.bump += 1;
                            i
                        }
                    };
                    page.used += 1;
                    addr = page.block_addr(idx);
                    idx_meta = idx;
                    exhausted = !page.has_space();
                }
                // Free-list link read: where it lives is the Fig. 2 axis.
                match layout {
                    MetaTraffic::InBlock => {
                        machine.access(core, Access::load(addr, 8, AccessClass::Meta));
                    }
                    MetaTraffic::IndexArray => {
                        machine.access(
                            core,
                            Access::load(self.index_slot_addr(pid, idx_meta), 2, AccessClass::Meta),
                        );
                    }
                }
                machine.access(
                    core,
                    Access::store(self.desc_addr(pid), 8, AccessClass::Meta),
                );
                if exhausted {
                    self.partial[class].pop();
                }
                return addr;
            }
            // No partial page: carve a fresh one.
            let base = space.reserve(self.page_size, self.page_size);
            let block = CLASS_SIZES[class];
            let pid = self.pages.len();
            self.by_base.insert(base, pid);
            self.pages.push(SimPage {
                base,
                class,
                block,
                nblocks: ((self.page_size / u64::from(block)).max(1)) as u16,
                used: 0,
                bump: 0,
                free: Vec::new(),
                owner: self.owner,
            });
            self.partial[class].push(pid);
            // Initializing the descriptor is a store.
            machine.access(
                core,
                Access::store(self.desc_addr(pid), 64, AccessClass::Meta),
            );
        }
    }

    /// Frees the block at `addr`, charging metadata traffic to `core`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not belong to this heap.
    pub fn free(&mut self, machine: &mut Machine, core: usize, addr: u64) {
        let pid = self
            .page_of(addr)
            .expect("free of address not in slab heap");
        machine.access(
            core,
            Access::load(self.desc_addr(pid), 16, AccessClass::Meta),
        );
        let layout = self.layout;
        let (idx, class, was_full);
        {
            let page = &mut self.pages[pid];
            idx = page.index_of(addr);
            class = page.class;
            was_full = !page.has_space();
            debug_assert!(page.used > 0);
            page.used -= 1;
            page.free.push(idx);
            if page.used == 0 {
                // Page retirement (mimalloc/tcmalloc/jemalloc all do
                // this): a fully-free page resets to sequential bump
                // allocation, so its next tenants are dense again instead
                // of inheriting the shuffled free-list order.
                page.free.clear();
                page.bump = 0;
            }
        }
        match layout {
            MetaTraffic::InBlock => {
                // Writing the link dirties the dead block's user line.
                machine.access(core, Access::store(addr, 8, AccessClass::Meta));
            }
            MetaTraffic::IndexArray => {
                machine.access(
                    core,
                    Access::store(self.index_slot_addr(pid, idx), 2, AccessClass::Meta),
                );
            }
        }
        machine.access(
            core,
            Access::store(self.desc_addr(pid), 8, AccessClass::Meta),
        );
        if was_full {
            self.partial[class].push(pid);
        }
    }

    /// Live-block count across all pages (consistency checks).
    pub fn live_blocks(&self) -> u64 {
        self.pages.iter().map(|p| u64::from(p.used)).sum()
    }

    /// Metadata bytes in use (descriptors plus, for the segregated layout,
    /// index arrays).
    pub fn meta_bytes(&self) -> u64 {
        let descs = self.pages.len() as u64 * 64;
        match self.layout {
            MetaTraffic::InBlock => descs,
            MetaTraffic::IndexArray => {
                descs
                    + self
                        .pages
                        .iter()
                        .map(|p| u64::from(p.nblocks) * 2)
                        .sum::<u64>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngm_sim::MachineConfig;

    fn setup() -> (Machine, AddressSpace, SlabHeap) {
        let m = Machine::new(MachineConfig::a72(1));
        let mut space = AddressSpace::default();
        let heap = SlabHeap::new(&mut space, MetaTraffic::IndexArray, 0);
        (m, space, heap)
    }

    #[test]
    fn blocks_are_dense_within_a_page() {
        let (mut m, mut space, mut h) = setup();
        let a = h.alloc(&mut m, 0, &mut space, 0);
        let b = h.alloc(&mut m, 0, &mut space, 0);
        assert_eq!(b, a + 16, "same-class blocks are adjacent");
    }

    #[test]
    fn free_then_alloc_reuses_lifo() {
        let (mut m, mut space, mut h) = setup();
        let a = h.alloc(&mut m, 0, &mut space, 3);
        h.free(&mut m, 0, a);
        let b = h.alloc(&mut m, 0, &mut space, 3);
        assert_eq!(a, b);
        assert_eq!(h.live_blocks(), 1);
    }

    #[test]
    fn page_exhaustion_opens_new_page() {
        let (mut m, mut space, mut h) = setup();
        let per_page = (SIM_PAGE / 16) as usize;
        let addrs: Vec<u64> = (0..per_page + 1)
            .map(|_| h.alloc(&mut m, 0, &mut space, 0))
            .collect();
        assert_eq!(h.pages.len(), 2);
        let first_page_base = h.pages[0].base;
        assert!(addrs[per_page] >= first_page_base + SIM_PAGE);
    }

    #[test]
    fn classes_use_distinct_pages() {
        let (mut m, mut space, mut h) = setup();
        let a = h.alloc(&mut m, 0, &mut space, 0);
        let b = h.alloc(&mut m, 0, &mut space, 5);
        assert_ne!(h.page_of(a), h.page_of(b));
    }

    #[test]
    fn segregated_layout_reports_index_meta() {
        let (mut m, mut space, mut h) = setup();
        h.alloc(&mut m, 0, &mut space, 0);
        let seg = h.meta_bytes();
        let mut space2 = AddressSpace::default();
        let mut h2 = SlabHeap::new(&mut space2, MetaTraffic::InBlock, 0);
        let mut m2 = Machine::new(MachineConfig::a72(1));
        h2.alloc(&mut m2, 0, &mut space2, 0);
        assert!(seg > h2.meta_bytes(), "segregated metadata costs space");
    }

    #[test]
    fn aggregated_free_touches_block_line() {
        let mut m = Machine::new(MachineConfig::a72(1));
        let mut space = AddressSpace::default();
        let mut h = SlabHeap::new(&mut space, MetaTraffic::InBlock, 0);
        let a = h.alloc(&mut m, 0, &mut space, 0);
        let before = m.core_counters(0);
        h.free(&mut m, 0, a);
        let after = m.core_counters(0);
        // The free issued at least one store at the block's own line; the
        // line was already cached by alloc so it must be an L1 hit.
        assert!(after.stores > before.stores);
    }
}
