//! The model interface and the catalogue of allocator families.

use ngm_sim::{Machine, MachineConfig};

/// A simulated allocator policy.
///
/// `malloc`/`free` must perform, on `machine`, the memory accesses and
/// instruction work the modelled allocator would perform, and return the
/// simulated address placement chose. The driver attributes subsequent
/// user traffic to that address.
pub trait AllocModel {
    /// Display name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Serves an allocation of `size` bytes on behalf of `core`.
    fn malloc(&mut self, machine: &mut Machine, core: usize, size: u32) -> u64;

    /// Releases the block at `addr` (of `size` bytes) on behalf of `core`.
    fn free(&mut self, machine: &mut Machine, core: usize, addr: u64, size: u32);

    /// Bytes of metadata the model currently maintains (footprint
    /// reporting for the Fig. 2 discussion).
    fn meta_bytes(&self) -> u64 {
        0
    }

    /// Atomic operations the model has executed (cross-checks §3.1.3).
    fn atomics(&self) -> u64 {
        0
    }
}

/// The allocator families of Figure 1 / Table 1, plus NextGen-Malloc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Glibc's default allocator.
    PtMalloc2,
    /// Jason Evans' jemalloc.
    Jemalloc,
    /// Google's TCMalloc.
    TcMalloc,
    /// Microsoft's mimalloc.
    Mimalloc,
    /// The paper's offloaded allocator.
    Ngm,
}

impl ModelKind {
    /// All baseline models in the paper's table order.
    pub const BASELINES: [ModelKind; 4] = [
        ModelKind::PtMalloc2,
        ModelKind::Jemalloc,
        ModelKind::TcMalloc,
        ModelKind::Mimalloc,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::PtMalloc2 => "PTMalloc2",
            ModelKind::Jemalloc => "JeMalloc",
            ModelKind::TcMalloc => "TCMalloc",
            ModelKind::Mimalloc => "Mimalloc",
            ModelKind::Ngm => "NextGen-Malloc",
        }
    }

    /// Builds a fresh model instance.
    pub fn build(self, app_threads: usize) -> Box<dyn AllocModel> {
        match self {
            ModelKind::PtMalloc2 => Box::new(crate::ptmalloc::PtMalloc2Model::new()),
            ModelKind::Jemalloc => Box::new(crate::jemalloc::JemallocModel::new(app_threads)),
            ModelKind::TcMalloc => Box::new(crate::tcmalloc::TcMallocModel::new(app_threads)),
            ModelKind::Mimalloc => Box::new(crate::mimalloc::MimallocModel::new(app_threads)),
            ModelKind::Ngm => Box::new(crate::ngm::NgmModel::new(app_threads)),
        }
    }

    /// The machine an experiment should run this model on: `app_threads`
    /// application cores, plus a dedicated service core for NextGen-Malloc.
    ///
    /// The service core is pinned in its own cluster (as the paper's
    /// prototype does on the 16-core, 4-cluster AWS A1): it gets that
    /// cluster's 1 MiB L2 to itself and stays out of the application
    /// cluster's shared cache.
    pub fn machine(self, app_threads: usize) -> MachineConfig {
        match self {
            ModelKind::Ngm => {
                let mut svc = ngm_sim::CoreConfig::big();
                svc.l2 = ngm_sim::CacheConfig::kib(1024, 16);
                MachineConfig::asymmetric(app_threads, svc)
            }
            _ => MachineConfig::a72(app_threads),
        }
    }
}

/// Size classes shared by the slab-style models (TCMalloc, Mimalloc,
/// Jemalloc, NGM). Kept identical to `ngm-heap`'s table so simulated and
/// real placement agree.
pub const CLASS_SIZES: [u32; 32] = [
    16, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 896, 1024,
    1280, 1536, 1792, 2048, 2560, 3072, 3584, 4096, 5120, 6144, 7168, 8192,
];

/// Requests above this many bytes take the large (direct-map) path in
/// every model, so large-object traffic is identical across allocators
/// and cancels out of comparisons.
pub const LARGE_CUTOFF: u64 = 8192;

/// Serves a large allocation: a dedicated simulated mapping plus the
/// modeled cost of the mmap round trip.
pub fn large_alloc(
    space: &mut crate::addr::AddressSpace,
    machine: &mut ngm_sim::Machine,
    core: usize,
    size: u32,
) -> u64 {
    machine.retire(core, 400); // syscall + page-table work
    space.reserve((u64::from(size) + 4095) & !4095, 4096)
}

/// Releases a large allocation (`munmap` cost; the address is never
/// reused, as with a real unmapped region).
pub fn large_free(machine: &mut ngm_sim::Machine, core: usize) {
    machine.retire(core, 250);
}

/// Maps a request size to `(class index, block size)`.
///
/// Sizes beyond the table go to the large path (returned as `None`).
pub fn size_class(size: u32) -> Option<(usize, u32)> {
    if size > *CLASS_SIZES.last().expect("non-empty table") {
        return None;
    }
    let idx = CLASS_SIZES
        .iter()
        .position(|&c| c >= size)
        .expect("covered by last class");
    Some((idx, CLASS_SIZES[idx]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_lookup_is_tight() {
        for size in 1..=8192u32 {
            let (idx, block) = size_class(size).unwrap();
            assert!(block >= size);
            if idx > 0 {
                assert!(CLASS_SIZES[idx - 1] < size);
            }
        }
        assert_eq!(size_class(8193), None);
    }

    #[test]
    fn kinds_build_and_name() {
        for kind in ModelKind::BASELINES {
            let m = kind.build(2);
            assert_eq!(m.name(), kind.label());
        }
        assert_eq!(ModelKind::Ngm.build(2).name(), "NextGen-Malloc");
    }

    #[test]
    fn ngm_machine_gets_extra_core() {
        assert_eq!(ModelKind::Ngm.machine(4).num_cores(), 5);
        assert_eq!(ModelKind::Mimalloc.machine(4).num_cores(), 4);
    }
}
