//! PTMalloc2 model: Glibc's default allocator.
//!
//! The design axes that matter for the paper's Table 1:
//!
//! * **Aggregated layout** — every chunk carries a boundary-tag header
//!   directly in front of the user data; free-list links live in the dead
//!   chunks. Allocator metadata therefore shares lines and pages with
//!   user data.
//! * **Best-fit with splitting and coalescing** over one contiguous-ish
//!   arena: different sizes interleave in memory and reuse lands wherever
//!   a hole fits, scattering consecutively-allocated objects across the
//!   arena — the locality/TLB penalty the modern allocators avoid.
//! * **One arena lock** — a lock/unlock atomic pair brackets every
//!   operation (§2.3's "software mutex locks ... critical performance
//!   bottleneck").

use std::collections::BTreeMap;

use ngm_sim::{Access, AccessClass, Machine};

use crate::addr::AddressSpace;
use crate::model::{large_alloc, large_free, AllocModel, LARGE_CUTOFF};

/// Chunk header size (size + flags + fd/bk space, as in dlmalloc).
const HEADER: u64 = 16;

/// Arena growth quantum (a `brk`/`mmap` extension).
const ARENA_GROW: u64 = 1024 * 1024;

/// Minimum leftover worth splitting off as a new free chunk.
const MIN_SPLIT: u64 = 48;

/// The Glibc-style allocator model.
pub struct PtMalloc2Model {
    space: AddressSpace,
    /// Lock word and bin-array region (the `malloc_state` of glibc).
    arena_state: u64,
    /// Free chunks by base address (for coalescing).
    by_addr: BTreeMap<u64, u64>,
    /// Free chunk bases by size, LIFO within a size (glibc's bins reuse
    /// the most recently freed chunk of a size first).
    by_size: BTreeMap<u64, Vec<u64>>,
    /// Current wilderness chunk: next carve position and region end.
    top: u64,
    top_end: u64,
    atomics: u64,
}

impl Default for PtMalloc2Model {
    fn default() -> Self {
        Self::new()
    }
}

impl PtMalloc2Model {
    /// Creates an empty arena.
    pub fn new() -> Self {
        let mut space = AddressSpace::default();
        let arena_state = space.reserve(4096, 4096);
        PtMalloc2Model {
            space,
            arena_state,
            by_addr: BTreeMap::new(),
            by_size: BTreeMap::new(),
            top: 0,
            top_end: 0,
            atomics: 0,
        }
    }

    fn lock(&mut self, machine: &mut Machine, core: usize) {
        machine.access(core, Access::atomic(self.arena_state, 8, AccessClass::Meta));
        self.atomics += 1;
    }

    fn unlock(&mut self, machine: &mut Machine, core: usize) {
        machine.access(core, Access::atomic(self.arena_state, 8, AccessClass::Meta));
        self.atomics += 1;
    }

    fn bin_addr(&self, csize: u64) -> u64 {
        // 128 bins, size-hashed, living in the malloc_state.
        self.arena_state + 64 + (csize / 16 % 128) * 8
    }

    fn insert_free(&mut self, base: u64, size: u64) {
        self.by_addr.insert(base, size);
        self.by_size.entry(size).or_default().push(base);
    }

    fn remove_free(&mut self, base: u64, size: u64) {
        self.by_addr.remove(&base);
        if let Some(list) = self.by_size.get_mut(&size) {
            // Coalescing usually removes a recently freed chunk; scan from
            // the back.
            if let Some(pos) = list.iter().rposition(|&b| b == base) {
                list.swap_remove(pos);
            }
            if list.is_empty() {
                self.by_size.remove(&size);
            }
        }
    }

    /// Rounds a request to a chunk size (user bytes + header, 16-aligned).
    fn chunk_size(size: u32) -> u64 {
        (u64::from(size) + HEADER + 15) & !15
    }

    /// Total bytes currently sitting in free chunks (fragmentation probe).
    pub fn free_bytes(&self) -> u64 {
        self.by_addr.values().sum()
    }

    /// Number of distinct free chunks.
    pub fn free_chunks(&self) -> usize {
        self.by_addr.len()
    }
}

impl AllocModel for PtMalloc2Model {
    fn name(&self) -> &'static str {
        "PTMalloc2"
    }

    fn malloc(&mut self, machine: &mut Machine, core: usize, size: u32) -> u64 {
        if u64::from(size) > LARGE_CUTOFF {
            return large_alloc(&mut self.space, machine, core, size);
        }
        let need = Self::chunk_size(size);
        self.lock(machine, core);
        machine.retire(core, 60);

        // Best fit: smallest free chunk that satisfies the request.
        let found = self
            .by_size
            .range(need..)
            .next()
            .map(|(&s, list)| (s, *list.last().expect("non-empty size bin")));
        let base = if let Some((csize, base)) = found {
            // Bin walk: touch the bin head and the chunk's own links
            // (which live in the dead chunk — aggregated layout).
            machine.access(
                core,
                Access::load(self.bin_addr(csize), 8, AccessClass::Meta),
            );
            machine.access(core, Access::load(base, 16, AccessClass::Meta));
            machine.retire(core, 40);
            self.remove_free(base, csize);
            let rem = csize - need;
            if rem >= MIN_SPLIT {
                let rem_base = base + need;
                self.insert_free(rem_base, rem);
                // Writing the remainder's boundary tag touches arena
                // memory adjacent to live data.
                machine.access(core, Access::store(rem_base, 16, AccessClass::Meta));
                machine.access(
                    core,
                    Access::store(self.bin_addr(rem), 8, AccessClass::Meta),
                );
            }
            base
        } else {
            // Carve from the wilderness; extend the arena if needed.
            if self.top + need > self.top_end {
                if self.top_end > self.top {
                    // The old wilderness tail becomes an ordinary free
                    // chunk (if big enough to matter).
                    let tail = self.top_end - self.top;
                    if tail >= MIN_SPLIT {
                        self.insert_free(self.top, tail);
                        machine.access(core, Access::store(self.top, 16, AccessClass::Meta));
                    }
                }
                let grow = ARENA_GROW.max(need);
                self.top = self.space.reserve(grow, 4096);
                self.top_end = self.top + grow;
                machine.retire(core, 300); // the mmap/brk excursion
            }
            let base = self.top;
            self.top += need;
            base
        };

        // Write the allocated chunk's boundary tag: the header line is the
        // line user data begins on.
        machine.access(core, Access::store(base, 16, AccessClass::Meta));
        self.unlock(machine, core);
        base + HEADER
    }

    fn free(&mut self, machine: &mut Machine, core: usize, addr: u64, size: u32) {
        if u64::from(size) > LARGE_CUTOFF {
            large_free(machine, core);
            return;
        }
        let mut base = addr - HEADER;
        let mut csize = Self::chunk_size(size);
        self.lock(machine, core);
        machine.retire(core, 50);

        // Read our header, then probe both neighbours' tags — three
        // touches of arena memory interleaved with live user data.
        machine.access(core, Access::load(base, 16, AccessClass::Meta));
        machine.access(core, Access::load(base + csize, 8, AccessClass::Meta));
        if base > 0 {
            machine.access(core, Access::load(base - 8, 8, AccessClass::Meta));
        }

        // Coalesce with the following free chunk.
        if let Some(&next_size) = self.by_addr.get(&(base + csize)) {
            self.remove_free(base + csize, next_size);
            csize += next_size;
        }
        // Coalesce with the preceding free chunk.
        if let Some((&prev_base, &prev_size)) = self.by_addr.range(..base).next_back() {
            if prev_base + prev_size == base {
                self.remove_free(prev_base, prev_size);
                base = prev_base;
                csize += prev_size;
            }
        }
        self.insert_free(base, csize);
        // Updated boundary tag + bin insertion.
        machine.access(core, Access::store(base, 16, AccessClass::Meta));
        machine.access(
            core,
            Access::store(self.bin_addr(csize), 8, AccessClass::Meta),
        );
        self.unlock(machine, core);
    }

    fn meta_bytes(&self) -> u64 {
        // malloc_state plus one boundary tag per free chunk.
        4096 + self.by_addr.len() as u64 * HEADER
    }

    fn atomics(&self) -> u64 {
        self.atomics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngm_sim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::a72(1))
    }

    #[test]
    fn alloc_free_realloc_reuses_hole() {
        let mut m = machine();
        let mut a = PtMalloc2Model::new();
        let p = a.malloc(&mut m, 0, 100);
        a.free(&mut m, 0, p, 100);
        let q = a.malloc(&mut m, 0, 100);
        assert_eq!(p, q, "best fit reuses the freed chunk");
    }

    #[test]
    fn neighbours_coalesce() {
        let mut m = machine();
        let mut a = PtMalloc2Model::new();
        let p1 = a.malloc(&mut m, 0, 100);
        let p2 = a.malloc(&mut m, 0, 100);
        let p3 = a.malloc(&mut m, 0, 100);
        a.free(&mut m, 0, p1, 100);
        a.free(&mut m, 0, p3, 100);
        assert_eq!(a.free_chunks(), 2);
        a.free(&mut m, 0, p2, 100);
        // p1..p3 merge into one chunk (p3 may stay separate from the
        // wilderness, so exactly one remains).
        assert_eq!(a.free_chunks(), 1);
    }

    #[test]
    fn every_op_pays_two_atomics() {
        let mut m = machine();
        let mut a = PtMalloc2Model::new();
        let p = a.malloc(&mut m, 0, 64);
        a.free(&mut m, 0, p, 64);
        assert_eq!(a.atomics(), 4);
        assert_eq!(m.core_counters(0).atomic_rmws, 4);
    }

    #[test]
    fn different_sizes_interleave_in_memory() {
        let mut m = machine();
        let mut a = PtMalloc2Model::new();
        let small = a.malloc(&mut m, 0, 32);
        let big = a.malloc(&mut m, 0, 1000);
        let small2 = a.malloc(&mut m, 0, 32);
        // Sequential carving: the two small blocks straddle the big one —
        // the opposite of size-class placement.
        assert!(small < big && big < small2);
        assert_eq!(big - small, PtMalloc2Model::chunk_size(32));
    }

    #[test]
    fn splitting_leaves_remainder() {
        let mut m = machine();
        let mut a = PtMalloc2Model::new();
        let p = a.malloc(&mut m, 0, 1024);
        a.free(&mut m, 0, p, 1024);
        let q = a.malloc(&mut m, 0, 100);
        assert_eq!(p, q, "front of the hole is reused");
        assert_eq!(a.free_chunks(), 1, "remainder stays free");
        assert!(a.free_bytes() < PtMalloc2Model::chunk_size(1024));
    }

    #[test]
    fn large_requests_bypass_the_arena() {
        let mut m = machine();
        let mut a = PtMalloc2Model::new();
        let before = a.atomics();
        let p = a.malloc(&mut m, 0, 100_000);
        a.free(&mut m, 0, p, 100_000);
        assert_eq!(a.atomics(), before, "large path takes no arena lock");
    }
}
