//! Analytical cost model of the completion-based front-end.
//!
//! The blocking front-end pays the full slot round trip on every
//! magazine miss: the client publishes an `AllocBatchReq` and *waits*
//! for the RESPONSE edge, so a miss costs the whole service latency
//! even though the client has other connections it could be serving.
//! The completion-based front-end submits the same request and keeps
//! driving other connections; the round trip still happens, but it
//! *overlaps* with client-side work, so what remains on the client's
//! critical path is only the submit/complete bookkeeping — until the
//! in-flight ceiling (or a dry magazine with a full slot) forces a
//! stall, surfaced to callers as `WouldBlock`.
//!
//! [`CompletionModel`] captures exactly that overlap argument with
//! per-event cycle constants, predicting the blocking and non-blocking
//! per-event critical-path costs and their ratio. The `repro conns`
//! experiment prints the prediction beside the measured ratio: a live
//! result far from the model means the overlap is not happening (lost
//! wakes, pump starvation), not merely that the machine is slow.

/// Cycle-cost model for one client core multiplexing many connections
/// over one allocator handle.
#[derive(Debug, Clone, Copy)]
pub struct CompletionModel {
    /// Full slot round trip on a magazine miss: publish → service claim
    /// → heap work → RESPONSE edge, as seen by a *waiting* client.
    pub round_trip_cycles: u64,
    /// Client-side bookkeeping per event on the non-blocking path
    /// (ticket, amortized share of a FIFO pump drain, waker arm) — the
    /// cost that replaces waiting.
    pub submit_complete_cycles: u64,
    /// Magazine pop / buffered-free push on a hit (both front-ends).
    pub fast_path_cycles: u64,
    /// Application work per connection event (parse, touch, reply);
    /// this is what the round trip overlaps with.
    pub event_work_cycles: u64,
    /// Allocations served per magazine refill (`batch_size`): one round
    /// trip is amortized over this many allocations.
    pub batch_size: u64,
    /// In-flight submission ceiling (`NgmConfig::with_inflight_limit`):
    /// below `batch_size` it caps how much overlap is available.
    pub inflight_limit: u64,
}

impl Default for CompletionModel {
    /// Constants in the regime the substrate crates measure: a slot
    /// round trip across cores lands in the hundreds of cycles
    /// (cache-line handoff each way plus service time), the magazine
    /// fast path and the non-blocking bookkeeping in the tens.
    fn default() -> Self {
        CompletionModel {
            round_trip_cycles: 600,
            submit_complete_cycles: 18,
            fast_path_cycles: 12,
            event_work_cycles: 150,
            batch_size: 16,
            inflight_limit: 256,
        }
    }
}

impl CompletionModel {
    /// Per-event critical-path cycles for the blocking front-end: the
    /// fast path plus the *unoverlapped* refill round trip amortized
    /// over the batch, plus the event's own work.
    pub fn blocking_cycles_per_event(&self) -> f64 {
        let batch = self.batch_size.max(1) as f64;
        self.event_work_cycles as f64
            + self.fast_path_cycles as f64
            + self.round_trip_cycles as f64 / batch
    }

    /// Per-event critical-path cycles for the completion front-end.
    ///
    /// The refill round trip overlaps with the work of events the
    /// client keeps driving while it is in flight; only the part the
    /// available overlap cannot cover stays on the critical path. The
    /// overlap window is the lesser of the in-flight ceiling and the
    /// batch (one slot carries one refill at a time) times the
    /// per-event work available to hide behind.
    pub fn nonblocking_cycles_per_event(&self) -> f64 {
        let batch = self.batch_size.max(1) as f64;
        let overlap_events = (self.inflight_limit.max(1) as f64).min(batch);
        let hidden = overlap_events * self.event_work_cycles as f64;
        let exposed = (self.round_trip_cycles as f64 - hidden).max(0.0);
        self.event_work_cycles as f64
            + self.fast_path_cycles as f64
            + self.submit_complete_cycles as f64
            + exposed / batch
    }

    /// Predicted non-blocking / blocking throughput ratio (events per
    /// cycle), > 1 when overlapping wins.
    pub fn predicted_speedup(&self) -> f64 {
        self.blocking_cycles_per_event() / self.nonblocking_cycles_per_event()
    }

    /// Connections one client core sustains at `event_rate_hz` events
    /// per connection per second on a `core_hz` core, non-blocking.
    pub fn connections_per_core(&self, core_hz: f64, event_rate_hz: f64) -> f64 {
        core_hz / (self.nonblocking_cycles_per_event() * event_rate_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_beats_blocking_when_work_hides_the_round_trip() {
        let m = CompletionModel::default();
        // batch 16 × 150 work cycles = 2400 > 600 round trip: fully
        // hidden, so the only added cost is bookkeeping.
        assert!(m.predicted_speedup() > 1.0, "{m:?}");
        let nb = m.nonblocking_cycles_per_event();
        assert!(
            (nb - (150.0 + 12.0 + 18.0)).abs() < 1e-9,
            "round trip fully hidden, got {nb}"
        );
    }

    #[test]
    fn tiny_inflight_limit_erodes_the_win() {
        let capped = CompletionModel {
            inflight_limit: 1,
            event_work_cycles: 50,
            ..CompletionModel::default()
        };
        let wide = CompletionModel {
            inflight_limit: 256,
            event_work_cycles: 50,
            ..CompletionModel::default()
        };
        assert!(
            capped.nonblocking_cycles_per_event() > wide.nonblocking_cycles_per_event(),
            "one in-flight submission hides less of the round trip"
        );
    }

    #[test]
    fn heavy_bookkeeping_can_lose_to_blocking() {
        // If submit/complete costs more than the amortized round trip,
        // the model must say so (speedup < 1) instead of flattering the
        // redesign.
        let m = CompletionModel {
            submit_complete_cycles: 500,
            ..CompletionModel::default()
        };
        assert!(m.predicted_speedup() < 1.0);
    }

    #[test]
    fn connections_per_core_scales_with_core_speed() {
        let m = CompletionModel::default();
        let slow = m.connections_per_core(1e9, 100.0);
        let fast = m.connections_per_core(3e9, 100.0);
        assert!(fast > 2.9 * slow && fast < 3.1 * slow);
        // A 3 GHz core at 100 events/s/conn holds tens of thousands of
        // connections in this regime — the experiment's ≥10k floor is
        // predicted to clear with margin.
        assert!(fast > 10_000.0, "{fast}");
    }
}
