//! Mimalloc model: per-thread heaps with page-local sharded free lists.
//!
//! §2.3: "Mimalloc uses three page-local shared free lists to increase
//! locality, avoid contention, and support a highly-tuned allocation and
//! free on fast path." The paper's Figure 2 classifies its layout as
//! *aggregated*: links thread through the blocks.
//!
//! Model shape:
//!
//! * Each core owns a slab heap; pages remember their owner.
//! * Local free: push onto the page's local list (write into the block).
//! * Remote free: one atomic CAS onto the page's `thread_free` list —
//!   §3.1.3's "if one thread tries to free a memory block that was
//!   allocated by another running thread, contention will result".
//! * Owners periodically collect their pages' `thread_free` lists.

use std::collections::HashMap;

use ngm_sim::{Access, AccessClass, Machine};

use crate::addr::AddressSpace;
use crate::model::{large_alloc, large_free, size_class, AllocModel, LARGE_CUTOFF};
use crate::slab::{MetaTraffic, SlabHeap, SIM_PAGE};

/// How many allocations between thread-free collections.
const COLLECT_INTERVAL: u64 = 32;

/// The Mimalloc-style model.
pub struct MimallocModel {
    space: AddressSpace,
    heaps: Vec<SlabHeap>,
    /// Page base → owning core (filled as pages are created).
    page_owner: HashMap<u64, usize>,
    /// Deferred remote frees, per owner core: (page desc addr, block addr).
    pending: Vec<Vec<u64>>,
    allocs: Vec<u64>,
    atomics: u64,
}

impl MimallocModel {
    /// Creates the model for `threads` application cores.
    pub fn new(threads: usize) -> Self {
        let mut space = AddressSpace::default();
        let heaps = (0..threads)
            .map(|c| SlabHeap::new(&mut space, MetaTraffic::InBlock, c))
            .collect();
        MimallocModel {
            space,
            heaps,
            page_owner: HashMap::new(),
            pending: vec![Vec::new(); threads],
            allocs: vec![0; threads],
            atomics: 0,
        }
    }

    fn note_new_pages(&mut self, core: usize) {
        // Record owners for any pages the heap just created.
        for p in &self.heaps[core].pages {
            self.page_owner.entry(p.base).or_insert(core);
        }
    }

    fn collect_thread_free(&mut self, machine: &mut Machine, core: usize) {
        let pending = std::mem::take(&mut self.pending[core]);
        for addr in pending {
            // The atomic swap that detaches the list is per page in real
            // mimalloc; per block here is a conservative overestimate the
            // batch below compensates for with one access per block.
            machine.access(core, Access::load(addr, 8, AccessClass::Meta));
            self.heaps[core].free(machine, core, addr);
        }
    }
}

impl AllocModel for MimallocModel {
    fn name(&self) -> &'static str {
        "Mimalloc"
    }

    fn malloc(&mut self, machine: &mut Machine, core: usize, size: u32) -> u64 {
        let Some((class, _block)) = size_class(size) else {
            return large_alloc(&mut self.space, machine, core, size);
        };
        machine.retire(core, 18);
        self.allocs[core] += 1;
        if self.allocs[core].is_multiple_of(COLLECT_INTERVAL) && !self.pending[core].is_empty() {
            // Detaching a thread_free list is one atomic per page batch.
            machine.access(
                core,
                Access::atomic(self.heaps[core].meta_base, 8, AccessClass::Meta),
            );
            self.atomics += 1;
            self.collect_thread_free(machine, core);
        }
        let addr = self.heaps[core].alloc(machine, core, &mut self.space, class);
        self.note_new_pages(core);
        addr
    }

    fn free(&mut self, machine: &mut Machine, core: usize, addr: u64, size: u32) {
        if u64::from(size) > LARGE_CUTOFF {
            large_free(machine, core);
            return;
        }
        let owner = *self
            .page_owner
            .get(&(addr & !(SIM_PAGE - 1)))
            .expect("freed block belongs to some heap");
        machine.retire(core, 15);
        if owner == core {
            self.heaps[core].free(machine, core, addr);
        } else {
            // Remote free: link through the block plus one CAS on the
            // owning page's thread_free head.
            machine.access(core, Access::store(addr, 8, AccessClass::Meta));
            let pid = self.heaps[owner]
                .page_of(addr)
                .expect("owner heap contains the page");
            machine.access(
                core,
                Access::atomic(self.heaps[owner].desc_addr(pid), 8, AccessClass::Meta),
            );
            self.atomics += 1;
            self.pending[owner].push(addr);
        }
    }

    fn meta_bytes(&self) -> u64 {
        self.heaps.iter().map(SlabHeap::meta_bytes).sum()
    }

    fn atomics(&self) -> u64 {
        self.atomics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngm_sim::MachineConfig;

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::a72(n))
    }

    #[test]
    fn local_roundtrip_is_atomic_free() {
        let mut m = machine(1);
        let mut a = MimallocModel::new(1);
        let p = a.malloc(&mut m, 0, 64);
        a.free(&mut m, 0, p, 64);
        assert_eq!(a.atomics(), 0);
        let q = a.malloc(&mut m, 0, 64);
        assert_eq!(p, q, "page-local LIFO reuse");
    }

    #[test]
    fn remote_free_pays_one_atomic() {
        let mut m = machine(2);
        let mut a = MimallocModel::new(2);
        let p = a.malloc(&mut m, 0, 64);
        a.free(&mut m, 1, p, 64);
        assert_eq!(a.atomics(), 1);
        assert_eq!(a.pending[0].len(), 1);
    }

    #[test]
    fn owner_collects_deferred_frees() {
        let mut m = machine(2);
        let mut a = MimallocModel::new(2);
        let ps: Vec<u64> = (0..8).map(|_| a.malloc(&mut m, 0, 64)).collect();
        for p in &ps {
            a.free(&mut m, 1, *p, 64);
        }
        // Enough local allocations trigger a collection.
        for _ in 0..2 * COLLECT_INTERVAL {
            let p = a.malloc(&mut m, 0, 48);
            a.free(&mut m, 0, p, 48);
        }
        assert!(a.pending[0].is_empty(), "thread_free collected");
        assert_eq!(a.heaps[0].live_blocks(), 0);
    }

    #[test]
    fn per_thread_heaps_use_disjoint_pages() {
        let mut m = machine(2);
        let mut a = MimallocModel::new(2);
        let p0 = a.malloc(&mut m, 0, 64);
        let p1 = a.malloc(&mut m, 1, 64);
        assert_ne!(p0 & !(SIM_PAGE - 1), p1 & !(SIM_PAGE - 1));
    }
}
