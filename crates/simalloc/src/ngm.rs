//! NextGen-Malloc model: the offloaded allocator.
//!
//! All heap metadata lives in one [`SlabHeap`] with a *segregated* layout
//! and is touched **only by the service core**, so its lines stay resident
//! in that core's private cache and never pollute the application cores
//! (§3.1.2). Application cores pay only the communication protocol:
//!
//! * `malloc` — §4.2's `malloc_start`/`malloc_done` handshake: the client
//!   writes the request into its slot and flips an atomic; the service
//!   flips the response atomic back. Four atomic operations per call, the
//!   count behind §4.1's 75-billion-cycle estimate. The client blocks for
//!   the service round trip (modelled as idle time).
//! * `free` — a single store into the client's SPSC ring; the service
//!   drains it off the critical path. No atomics, no waiting.

use ngm_sim::{Access, AccessClass, Machine};

use crate::addr::AddressSpace;
use crate::model::{large_alloc, large_free, size_class, AllocModel, LARGE_CUTOFF};
use crate::slab::{MetaTraffic, SlabHeap};

/// Entries per client free ring (ring region = entries × 16 bytes).
const RING_ENTRIES: u64 = 4096;

/// How the malloc handshake's cost is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Faithful micro-architecture accounting: every slot access goes
    /// through the coherence machinery; the client idles for the
    /// service's measured processing latency. Cross-core sync costs what
    /// the simulated machine says it costs.
    Detailed,
    /// The paper's §4.1 accounting: the entire round trip costs exactly
    /// four atomic operations at `CostModel::atomic_rmw` cycles, all
    /// other communication assumed overlapped with the client's spin
    /// wait. This is the cost model under which the paper projects its
    /// Table 3 win; comparing the two accountings is ablation D's point.
    PaperModel,
}

/// The NextGen-Malloc model.
pub struct NgmModel {
    space: AddressSpace,
    service: SlabHeap,
    /// One request/response slot line per client core.
    slot_base: Vec<u64>,
    /// Free-ring base and cursor per client core.
    ring_base: Vec<u64>,
    ring_pos: Vec<u64>,
    app_threads: usize,
    protocol: Protocol,
    atomics: u64,
}

impl NgmModel {
    /// Creates the model for `threads` application cores (the service
    /// core is the machine's last core; build the machine with
    /// [`crate::ModelKind::machine`]).
    pub fn new(threads: usize) -> Self {
        Self::with_protocol(threads, Protocol::Detailed)
    }

    /// Creates the model with an explicit protocol accounting.
    pub fn with_protocol(threads: usize, protocol: Protocol) -> Self {
        let mut space = AddressSpace::default();
        let slot_base = (0..threads).map(|_| space.reserve(128, 128)).collect();
        let ring_base = (0..threads)
            .map(|_| space.reserve(RING_ENTRIES * 16, 4096))
            .collect();
        // The service heap uses 16 KiB spans: segregated metadata makes
        // small spans cheap, and denser placement is the point.
        let service =
            SlabHeap::with_page_size(&mut space, MetaTraffic::IndexArray, usize::MAX, 16384);
        NgmModel {
            space,
            service,
            slot_base,
            ring_base,
            ring_pos: vec![0; threads],
            app_threads: threads,
            protocol,
            atomics: 0,
        }
    }

    fn service_core(&self, machine: &Machine) -> usize {
        debug_assert!(
            machine.num_cores() > self.app_threads,
            "NGM needs a dedicated service core; build the machine via ModelKind::machine"
        );
        machine.num_cores() - 1
    }

    /// Atomic operations executed per malloc (§4.1 charges four).
    pub const ATOMICS_PER_MALLOC: u64 = 4;
}

impl AllocModel for NgmModel {
    fn name(&self) -> &'static str {
        "NextGen-Malloc"
    }

    fn malloc(&mut self, machine: &mut Machine, core: usize, size: u32) -> u64 {
        let Some((class, _block)) = size_class(size) else {
            return large_alloc(&mut self.space, machine, core, size);
        };
        let svc = self.service_core(machine);
        let slot = self.slot_base[core];
        machine.retire(core, 10);
        self.atomics += 4;

        match self.protocol {
            Protocol::Detailed => {
                // Client: publish request (payload and flag share the
                // slot's cache line), flip malloc_start.
                machine.access(core, Access::store(slot + 8, 16, AccessClass::Meta));
                machine.access(core, Access::atomic(slot, 8, AccessClass::Meta));

                // Service: observe the flag, run the (atomic-free)
                // segregated heap, publish the response. Every heap
                // metadata line below is touched only by `svc`.
                let mut svc_latency = 0u64;
                svc_latency += machine.access(svc, Access::atomic(slot, 8, AccessClass::Meta));
                machine.retire(svc, 22);
                svc_latency += 11; // service compute at ipc 2
                let addr = self.service.alloc(machine, svc, &mut self.space, class);
                svc_latency += machine.access(svc, Access::store(slot + 8, 16, AccessClass::Meta));
                svc_latency += machine.access(svc, Access::atomic(slot, 8, AccessClass::Meta));

                // Client: spin until malloc_done (overlaps the service
                // latency), then pull the response line back.
                machine.idle(core, svc_latency);
                machine.access(core, Access::atomic(slot, 8, AccessClass::Meta));
                machine.access(core, Access::load(slot + 8, 16, AccessClass::Meta));
                addr
            }
            Protocol::PaperModel => {
                // §4.1: four atomics at the quoted per-RMW latency cover
                // the entire handshake; the service's heap work overlaps
                // the client's spin and is charged to the service core.
                let rmw = machine.config().cost.atomic_rmw;
                machine.idle(core, 4 * rmw);
                // Counter bookkeeping without coherence side effects:
                // touch a client-private shadow line.
                machine.access(core, Access::atomic(slot + 64, 8, AccessClass::Meta));
                machine.retire(svc, 22);
                let addr = self.service.alloc(machine, svc, &mut self.space, class);
                machine.access(svc, Access::load(slot + 8, 16, AccessClass::Meta));
                addr
            }
        }
    }

    fn free(&mut self, machine: &mut Machine, core: usize, addr: u64, size: u32) {
        if u64::from(size) > LARGE_CUTOFF {
            large_free(machine, core);
            return;
        }
        let svc = self.service_core(machine);

        // Client: one store into the SPSC ring, then done — asynchronous,
        // off the critical path, no atomics.
        machine.retire(core, 8);
        let entry = self.ring_base[core] + (self.ring_pos[core] % RING_ENTRIES) * 16;
        self.ring_pos[core] += 1;
        machine.access(core, Access::store(entry, 16, AccessClass::Meta));

        // Service (later, concurrently): pull the entry and free.
        machine.retire(svc, 15);
        machine.access(svc, Access::load(entry, 16, AccessClass::Meta));
        self.service.free(machine, svc, addr);
    }

    fn meta_bytes(&self) -> u64 {
        self.service.meta_bytes()
            + self.slot_base.len() as u64 * 128
            + self.ring_base.len() as u64 * RING_ENTRIES * 16
    }

    fn atomics(&self) -> u64 {
        self.atomics
    }
}

/// The sharded NextGen-Malloc model: the service tier generalized to
/// `shards` dedicated cores, each owning a disjoint slab heap.
///
/// Routing mirrors the real runtime: allocations pick the shard serving
/// the block's size class (`class % shards`), and frees recompute the
/// same pure function from the block's size — so a free always lands on
/// the shard whose heap created the block, regardless of which
/// application core issues it. Each (client, shard) pair has its own
/// request slot and free ring; shards share nothing, preserving the
/// zero-atomics-per-shard invariant at any tier width.
///
/// Build the machine with [`ngm_sim::MachineConfig::asymmetric_many`]
/// (`app_threads` big cores + `shards` service cores); the service tier
/// occupies the highest core IDs.
pub struct NgmShardedModel {
    space: AddressSpace,
    shards: Vec<SlabHeap>,
    /// Request/response slot line per (client, shard) pair, indexed
    /// `client * shards + shard`.
    slot_base: Vec<u64>,
    /// Free-ring base and cursor per (client, shard) pair.
    ring_base: Vec<u64>,
    ring_pos: Vec<u64>,
    app_threads: usize,
    atomics: u64,
}

impl NgmShardedModel {
    /// Creates the model for `threads` application cores served by
    /// `shards` service cores.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(threads: usize, shards: usize) -> Self {
        assert!(shards > 0, "a service tier has at least one shard");
        let mut space = AddressSpace::default();
        let pairs = threads * shards;
        let slot_base = (0..pairs).map(|_| space.reserve(128, 128)).collect();
        let ring_base = (0..pairs)
            .map(|_| space.reserve(RING_ENTRIES * 16, 4096))
            .collect();
        let heaps = (0..shards)
            .map(|_| {
                SlabHeap::with_page_size(&mut space, MetaTraffic::IndexArray, usize::MAX, 16384)
            })
            .collect();
        NgmShardedModel {
            space,
            shards: heaps,
            slot_base,
            ring_base,
            ring_pos: vec![0; pairs],
            app_threads: threads,
            atomics: 0,
        }
    }

    /// Number of service shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard serving `class` — a pure function shared by the alloc
    /// and free paths (the sim analog of the real runtime's owner-id
    /// routing: same class table, same heap, both directions).
    fn shard_of_class(&self, class: usize) -> usize {
        class % self.shards.len()
    }

    fn service_core(&self, machine: &Machine, shard: usize) -> usize {
        debug_assert!(
            machine.num_cores() >= self.app_threads + self.shards.len(),
            "machine too small: build it with MachineConfig::asymmetric_many"
        );
        machine.num_cores() - self.shards.len() + shard
    }

    fn pair(&self, core: usize, shard: usize) -> usize {
        core * self.shards.len() + shard
    }
}

impl AllocModel for NgmShardedModel {
    fn name(&self) -> &'static str {
        "NextGen-Malloc (sharded)"
    }

    fn malloc(&mut self, machine: &mut Machine, core: usize, size: u32) -> u64 {
        let Some((class, _block)) = size_class(size) else {
            return large_alloc(&mut self.space, machine, core, size);
        };
        let shard = self.shard_of_class(class);
        let svc = self.service_core(machine, shard);
        let slot = self.slot_base[self.pair(core, shard)];
        machine.retire(core, 10);
        self.atomics += 4;

        // The §4.2 handshake against the owning shard; identical per-op
        // cost to the single-shard model — the win is concurrency, not a
        // cheaper protocol.
        machine.access(core, Access::store(slot + 8, 16, AccessClass::Meta));
        machine.access(core, Access::atomic(slot, 8, AccessClass::Meta));

        let mut svc_latency = 0u64;
        svc_latency += machine.access(svc, Access::atomic(slot, 8, AccessClass::Meta));
        machine.retire(svc, 22);
        svc_latency += 11; // service compute at ipc 2
        let addr = self.shards[shard].alloc(machine, svc, &mut self.space, class);
        svc_latency += machine.access(svc, Access::store(slot + 8, 16, AccessClass::Meta));
        svc_latency += machine.access(svc, Access::atomic(slot, 8, AccessClass::Meta));

        machine.idle(core, svc_latency);
        machine.access(core, Access::atomic(slot, 8, AccessClass::Meta));
        machine.access(core, Access::load(slot + 8, 16, AccessClass::Meta));
        addr
    }

    fn free(&mut self, machine: &mut Machine, core: usize, addr: u64, size: u32) {
        let Some((class, _block)) = size_class(size) else {
            large_free(machine, core);
            return;
        };
        // Same pure routing as malloc: the class decides the owning
        // shard, so the free drains into the heap that placed the block.
        let shard = self.shard_of_class(class);
        let svc = self.service_core(machine, shard);
        let pair = self.pair(core, shard);

        machine.retire(core, 8);
        let entry = self.ring_base[pair] + (self.ring_pos[pair] % RING_ENTRIES) * 16;
        self.ring_pos[pair] += 1;
        machine.access(core, Access::store(entry, 16, AccessClass::Meta));

        machine.retire(svc, 15);
        machine.access(svc, Access::load(entry, 16, AccessClass::Meta));
        self.shards[shard].free(machine, svc, addr);
    }

    fn meta_bytes(&self) -> u64 {
        self.shards.iter().map(SlabHeap::meta_bytes).sum::<u64>()
            + self.slot_base.len() as u64 * 128
            + self.ring_base.len() as u64 * RING_ENTRIES * 16
    }

    fn atomics(&self) -> u64 {
        self.atomics
    }
}

/// The elastic NextGen-Malloc model: a sharded tier whose width is the
/// one the runtime's elastic controller would *converge to* for a given
/// client count, rather than a fixed operator choice.
///
/// The real controller (`ngm_core`'s scaling loop) compares mean
/// windowed per-shard load against its high/low water marks and spawns
/// or retires one shard per sustained breach. This model skips the
/// transient and runs the steady state: [`NgmElasticModel::predicted_shards`]
/// solves for the smallest tier width that keeps mean load at or under
/// the high-water mark, clamped to the policy's `[min, max]`. Comparing
/// its cycle counts against a live elastic run (the `repro elastic`
/// harness does exactly this) separates "the controller converged to
/// the wrong width" from "the width itself is wrong".
pub struct NgmElasticModel {
    inner: NgmShardedModel,
    predicted: usize,
}

impl NgmElasticModel {
    /// Windowed calls one steadily churning client contributes to its
    /// shard per controller scrape — the load unit behind the default
    /// water marks (high 96 ≈ four churning clients per shard).
    pub const LOAD_PER_CLIENT: u64 = 24;

    /// Creates the model for `threads` application cores with an elastic
    /// tier bounded by `[min, max]` shards, sized at the converged width.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or `min > max`.
    pub fn new(threads: usize, min: usize, max: usize) -> Self {
        let predicted = Self::predicted_shards(threads, min, max);
        NgmElasticModel {
            inner: NgmShardedModel::new(threads, predicted),
            predicted,
        }
    }

    /// The tier width the controller converges to for `clients` steadily
    /// churning application threads: the smallest width keeping mean
    /// per-shard load at or under the default high-water mark (96),
    /// clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or `min > max`.
    pub fn predicted_shards(clients: usize, min: usize, max: usize) -> usize {
        assert!(min > 0, "an elastic tier keeps at least one resident shard");
        assert!(min <= max, "elastic floor above its ceiling");
        const HIGH_WATER: u64 = 96;
        let load = clients as u64 * Self::LOAD_PER_CLIENT;
        (load.div_ceil(HIGH_WATER) as usize).clamp(min, max)
    }

    /// The width this instance was sized at.
    pub fn num_shards(&self) -> usize {
        self.predicted
    }
}

impl AllocModel for NgmElasticModel {
    fn name(&self) -> &'static str {
        "NextGen-Malloc (elastic)"
    }

    fn malloc(&mut self, machine: &mut Machine, core: usize, size: u32) -> u64 {
        self.inner.malloc(machine, core, size)
    }

    fn free(&mut self, machine: &mut Machine, core: usize, addr: u64, size: u32) {
        self.inner.free(machine, core, addr, size)
    }

    fn meta_bytes(&self) -> u64 {
        self.inner.meta_bytes()
    }

    fn atomics(&self) -> u64 {
        self.inner.atomics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use ngm_sim::Machine;

    fn machine(app: usize) -> Machine {
        Machine::new(ModelKind::Ngm.machine(app))
    }

    #[test]
    fn malloc_roundtrip_and_reuse() {
        let mut m = machine(1);
        let mut a = NgmModel::new(1);
        let p = a.malloc(&mut m, 0, 64);
        a.free(&mut m, 0, p, 64);
        let q = a.malloc(&mut m, 0, 64);
        assert_eq!(p, q);
    }

    #[test]
    fn four_atomics_per_malloc_zero_per_free() {
        let mut m = machine(1);
        let mut a = NgmModel::new(1);
        let p = a.malloc(&mut m, 0, 64);
        assert_eq!(a.atomics(), NgmModel::ATOMICS_PER_MALLOC);
        a.free(&mut m, 0, p, 64);
        assert_eq!(a.atomics(), NgmModel::ATOMICS_PER_MALLOC);
    }

    #[test]
    fn heap_metadata_stays_on_service_core() {
        let mut m = machine(2);
        let mut a = NgmModel::new(2);
        for core in 0..2 {
            for i in 0..100u32 {
                let p = a.malloc(&mut m, core, 64 + i % 512);
                a.free(&mut m, core, p, 64 + i % 512);
            }
        }
        let svc = m.num_cores() - 1;
        // Application cores' metadata misses are confined to the
        // communication slots/rings; the slab descriptors and index
        // arrays are touched only by the service core. Check via the
        // attribution counters: the service core sees metadata misses,
        // and app cores see none on user data (they touched none here).
        let svc_meta = m.core_counters(svc).meta_llc_misses;
        let app_user: u64 = (0..2).map(|c| m.core_counters(c).user_llc_misses).sum();
        assert!(svc_meta > 0, "service core does the heap's metadata work");
        assert_eq!(app_user, 0);
    }

    #[test]
    fn free_blocks_nobody() {
        let mut m = machine(1);
        let mut a = NgmModel::new(1);
        let p = a.malloc(&mut m, 0, 64);
        let before = m.core_counters(0).cycles;
        a.free(&mut m, 0, p, 64);
        let spent = m.core_counters(0).cycles - before;
        // The client-side cost of free is one ring store (worst case a
        // cold line plus a page walk) — far below a synchronous malloc
        // round trip with its four atomics.
        assert!(spent < 250, "async free cost {spent} too high");
    }

    fn sharded_machine(app: usize, shards: usize) -> Machine {
        let mut svc = ngm_sim::CoreConfig::big();
        svc.l2 = ngm_sim::CacheConfig::kib(1024, 16);
        Machine::new(ngm_sim::MachineConfig::asymmetric_many(app, shards, svc))
    }

    #[test]
    fn sharded_single_shard_matches_roundtrip_semantics() {
        let mut m = sharded_machine(1, 1);
        let mut a = NgmShardedModel::new(1, 1);
        let p = a.malloc(&mut m, 0, 64);
        a.free(&mut m, 0, p, 64);
        let q = a.malloc(&mut m, 0, 64);
        assert_eq!(p, q, "freed block is reused, as in the unsharded model");
        assert_eq!(a.atomics(), 2 * NgmModel::ATOMICS_PER_MALLOC);
    }

    #[test]
    fn sharded_frees_route_to_the_allocating_shard() {
        // Round-trip blocks of many classes: every free must reach the
        // shard that placed the block, or the reuse check fails (a heap
        // can only hand back addresses it owns).
        let mut m = sharded_machine(2, 4);
        let mut a = NgmShardedModel::new(2, 4);
        let sizes = [16u32, 64, 100, 256, 1024, 4000];
        let blocks: Vec<(u64, u32)> = sizes.iter().map(|&s| (a.malloc(&mut m, 0, s), s)).collect();
        for &(addr, size) in &blocks {
            a.free(&mut m, 1, addr, size); // freed from the *other* core
        }
        for &(addr, size) in &blocks {
            let again = a.malloc(&mut m, 0, size);
            assert_eq!(
                again, addr,
                "size {size}: block not reused — free misrouted"
            );
        }
    }

    #[test]
    fn sharded_tier_spreads_service_work() {
        let mut m = sharded_machine(4, 4);
        let mut a = NgmShardedModel::new(4, 4);
        for core in 0..4 {
            for i in 0..200u32 {
                // Sizes sweep several classes so each shard sees traffic.
                let size = 16 << (i % 5);
                let p = a.malloc(&mut m, core, size);
                a.free(&mut m, core, p, size);
            }
        }
        let n = m.num_cores();
        let busy = (n - 4..n)
            .filter(|&c| m.core_counters(c).instructions > 0)
            .count();
        assert!(busy >= 2, "only {busy} of 4 shards did any work");
    }

    #[test]
    fn sharding_divides_the_service_bottleneck() {
        // Service-bound regime: many clients, pure alloc/free churn. The
        // tier's whole point (§3.2 generalized): N shards split the one
        // saturated service core, so wall cycles drop.
        let run = |shards: usize| {
            let mut m = sharded_machine(8, shards);
            let mut a = NgmShardedModel::new(8, shards);
            for core in 0..8 {
                for i in 0..300u32 {
                    let size = 16 << (i % 4);
                    let p = a.malloc(&mut m, core, size);
                    a.free(&mut m, core, p, size);
                }
            }
            m.wall_cycles()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            (four as f64) < one as f64 / 1.5,
            "4 shards not ≥1.5x faster: 1-shard {one} vs 4-shard {four}"
        );
    }

    #[test]
    fn elastic_prediction_follows_load_and_clamps() {
        // One churning client fits one shard; sixteen need four (at
        // 24 load/client against the 96 high-water mark).
        assert_eq!(NgmElasticModel::predicted_shards(1, 1, 8), 1);
        assert_eq!(NgmElasticModel::predicted_shards(4, 1, 8), 1);
        assert_eq!(NgmElasticModel::predicted_shards(16, 1, 8), 4);
        // Monotone in clients, clamped at both ends.
        assert_eq!(NgmElasticModel::predicted_shards(64, 1, 8), 8);
        assert_eq!(NgmElasticModel::predicted_shards(1, 2, 8), 2);
        for c in 1..64 {
            assert!(
                NgmElasticModel::predicted_shards(c + 1, 1, 8)
                    >= NgmElasticModel::predicted_shards(c, 1, 8)
            );
        }
    }

    #[test]
    fn elastic_model_roundtrips_at_its_predicted_width() {
        let width = NgmElasticModel::predicted_shards(16, 1, 4);
        assert_eq!(width, 4);
        let mut m = sharded_machine(16, width);
        let mut a = NgmElasticModel::new(16, 1, 4);
        assert_eq!(a.num_shards(), width);
        let p = a.malloc(&mut m, 0, 64);
        a.free(&mut m, 1, p, 64);
        let q = a.malloc(&mut m, 0, 64);
        assert_eq!(q, p, "free reached the owning shard at elastic width");
    }

    #[test]
    fn wall_clock_overlaps_service_work() {
        let mut m = machine(1);
        let mut a = NgmModel::new(1);
        for _ in 0..1000 {
            let p = a.malloc(&mut m, 0, 128);
            a.free(&mut m, 0, p, 128);
        }
        let app = m.core_counters(0).cycles;
        let svc = m.core_counters(m.num_cores() - 1).cycles;
        assert_eq!(m.wall_cycles(), app.max(svc));
        // Frees execute concurrently: the service core is busier than the
        // idle-free client would suggest, yet wall time tracks the app.
        assert!(svc > 0);
    }
}
