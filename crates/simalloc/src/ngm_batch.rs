//! NGM-batch: the offloaded allocator with a batched handshake.
//!
//! §3.1.1 recalls that MMT's offloaded allocator "did not improve without
//! aggressive preallocations". This model implements that missing piece
//! for NextGen-Malloc: the client keeps a tiny per-class stash of
//! *addresses* (not blocks — the heap metadata stays on the service
//! core), and one `malloc_start`/`malloc_done` round trip refills a whole
//! batch. The handshake's ≥4×67-cycle cost is amortized over
//! [`NgmBatchModel::batch`] allocations, which is what moves Table 3's
//! comparison across the §4.1 break-even.
//!
//! What the client touches per allocation:
//! * its own stash array (a few TLS lines, L1-resident) — pop an address;
//! * nothing else. No page descriptors, no free lists, no block-interior
//!   links.
//!
//! Frees still stream through the SPSC ring individually (they are
//! already a single store).

use ngm_sim::{Access, AccessClass, Machine};

use crate::addr::AddressSpace;
use crate::model::{large_alloc, large_free, size_class, AllocModel, CLASS_SIZES, LARGE_CUTOFF};
use crate::slab::{MetaTraffic, SlabHeap};

/// Entries per client free ring.
const RING_ENTRIES: u64 = 4096;

/// The batched offloaded-allocator model.
pub struct NgmBatchModel {
    space: AddressSpace,
    service: SlabHeap,
    slot_base: Vec<u64>,
    /// Client-side per-class address stashes.
    stash: Vec<Vec<Vec<u64>>>,
    /// Base of each client's stash metadata region (the lines its pops
    /// touch).
    stash_base: Vec<u64>,
    ring_base: Vec<u64>,
    ring_pos: Vec<u64>,
    batch: usize,
    app_threads: usize,
    atomics: u64,
}

impl NgmBatchModel {
    /// Creates the model for `threads` application cores with the given
    /// refill batch (1 degenerates to per-call handshakes).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(threads: usize, batch: usize) -> Self {
        assert!(batch >= 1, "batch must be at least 1");
        let mut space = AddressSpace::default();
        let slot_base = (0..threads).map(|_| space.reserve(256, 256)).collect();
        let stash_base = (0..threads).map(|_| space.reserve(4096, 4096)).collect();
        let ring_base = (0..threads)
            .map(|_| space.reserve(RING_ENTRIES * 16, 4096))
            .collect();
        let service =
            SlabHeap::with_page_size(&mut space, MetaTraffic::IndexArray, usize::MAX, 16384);
        NgmBatchModel {
            space,
            service,
            slot_base,
            stash: vec![vec![Vec::new(); CLASS_SIZES.len()]; threads],
            stash_base,
            ring_base,
            ring_pos: vec![0; threads],
            batch,
            app_threads: threads,
            atomics: 0,
        }
    }

    /// The configured refill batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    fn service_core(&self, machine: &Machine) -> usize {
        debug_assert!(machine.num_cores() > self.app_threads);
        machine.num_cores() - 1
    }

    fn stash_head_addr(&self, core: usize, class: usize) -> u64 {
        self.stash_base[core] + class as u64 * 16
    }
}

impl AllocModel for NgmBatchModel {
    fn name(&self) -> &'static str {
        "NGM-batch"
    }

    fn malloc(&mut self, machine: &mut Machine, core: usize, size: u32) -> u64 {
        let Some((class, _block)) = size_class(size) else {
            return large_alloc(&mut self.space, machine, core, size);
        };
        let svc = self.service_core(machine);
        let slot = self.slot_base[core];

        machine.retire(core, 8);
        machine.access(
            core,
            Access::load(self.stash_head_addr(core, class), 8, AccessClass::Meta),
        );
        if self.stash[core][class].is_empty() {
            // One full handshake refills `batch` addresses.
            machine.access(core, Access::store(slot + 8, 16, AccessClass::Meta));
            machine.access(core, Access::atomic(slot, 8, AccessClass::Meta));
            self.atomics += 2;

            let mut svc_latency = 0u64;
            svc_latency += machine.access(svc, Access::atomic(slot, 8, AccessClass::Meta));
            machine.retire(svc, 16 + 6 * self.batch as u64);
            svc_latency += (16 + 6 * self.batch as u64) / 2;
            for i in 0..self.batch {
                let addr = self.service.alloc(machine, svc, &mut self.space, class);
                // The service writes each address into the response area
                // (consecutive words after the slot line).
                svc_latency += machine.access(
                    svc,
                    Access::store(slot + 64 + i as u64 * 8, 8, AccessClass::Meta),
                );
                self.stash[core][class].push(addr);
            }
            svc_latency += machine.access(svc, Access::atomic(slot, 8, AccessClass::Meta));
            self.atomics += 2;

            machine.idle(core, svc_latency);
            // Client pulls the response lines back (batch/8 lines).
            machine.access(
                core,
                Access::load(slot + 64, (self.batch as u32) * 8, AccessClass::Meta),
            );
            // Reverse so pops return addresses in service-LIFO order.
            self.stash[core][class].reverse();
        }
        let addr = self.stash[core][class].pop().expect("refilled above");
        machine.access(
            core,
            Access::store(self.stash_head_addr(core, class), 8, AccessClass::Meta),
        );
        addr
    }

    fn free(&mut self, machine: &mut Machine, core: usize, addr: u64, size: u32) {
        if u64::from(size) > LARGE_CUTOFF {
            large_free(machine, core);
            return;
        }
        let svc = self.service_core(machine);
        machine.retire(core, 8);
        let entry = self.ring_base[core] + (self.ring_pos[core] % RING_ENTRIES) * 16;
        self.ring_pos[core] += 1;
        machine.access(core, Access::store(entry, 16, AccessClass::Meta));

        machine.retire(svc, 15);
        machine.access(svc, Access::load(entry, 16, AccessClass::Meta));
        self.service.free(machine, svc, addr);
    }

    fn meta_bytes(&self) -> u64 {
        let stashes: u64 = self
            .stash
            .iter()
            .flat_map(|c| c.iter())
            .map(|s| s.len() as u64 * 8)
            .sum();
        self.service.meta_bytes()
            + stashes
            + self.slot_base.len() as u64 * 256
            + self.ring_base.len() as u64 * RING_ENTRIES * 16
    }

    fn atomics(&self) -> u64 {
        self.atomics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use ngm_sim::Machine;

    fn machine() -> Machine {
        Machine::new(ModelKind::Ngm.machine(1))
    }

    #[test]
    fn batch_amortizes_atomics() {
        let mut m = machine();
        let mut a = NgmBatchModel::new(1, 16);
        let mut addrs = Vec::new();
        for _ in 0..16 {
            addrs.push(a.malloc(&mut m, 0, 64));
        }
        // One refill handshake for sixteen allocations.
        assert_eq!(a.atomics(), 4);
        for p in addrs {
            a.free(&mut m, 0, p, 64);
        }
        assert_eq!(a.atomics(), 4, "frees stay atomic-free");
    }

    #[test]
    fn batch_one_matches_unbatched_atomic_count() {
        let mut m = machine();
        let mut a = NgmBatchModel::new(1, 1);
        a.malloc(&mut m, 0, 64);
        a.malloc(&mut m, 0, 64);
        assert_eq!(a.atomics(), 8, "batch=1 pays the full handshake per call");
    }

    #[test]
    fn stashed_addresses_are_service_placed_and_dense() {
        let mut m = machine();
        let mut a = NgmBatchModel::new(1, 8);
        let p1 = a.malloc(&mut m, 0, 64);
        let p2 = a.malloc(&mut m, 0, 64);
        assert_eq!(p2, p1 + 64, "batch preserves sequential placement");
    }

    #[test]
    fn roundtrip_reuses_blocks() {
        let mut m = machine();
        let mut a = NgmBatchModel::new(1, 4);
        let p = a.malloc(&mut m, 0, 128);
        a.free(&mut m, 0, p, 128);
        // The freed block goes back to the service and returns on the
        // next refill of that class.
        let again: Vec<u64> = (0..8).map(|_| a.malloc(&mut m, 0, 128)).collect();
        assert!(again.contains(&p));
    }

    #[test]
    fn cheaper_per_malloc_than_unbatched() {
        let events: Vec<u32> = (0..512).map(|i| 16 + (i % 128) * 16).collect();
        let mut m1 = machine();
        let mut unbatched = crate::ngm::NgmModel::new(1);
        for &s in &events {
            let p = unbatched.malloc(&mut m1, 0, s);
            unbatched.free(&mut m1, 0, p, s);
        }
        let mut m2 = machine();
        let mut batched = NgmBatchModel::new(1, 16);
        for &s in &events {
            let p = batched.malloc(&mut m2, 0, s);
            batched.free(&mut m2, 0, p, s);
        }
        assert!(
            m2.core_counters(0).cycles < m1.core_counters(0).cycles,
            "batched client must be cheaper: {} vs {}",
            m2.core_counters(0).cycles,
            m1.core_counters(0).cycles
        );
    }
}
