//! Jemalloc model: multiple arenas with per-thread caches.
//!
//! Jemalloc (Evans 2006) spreads threads over a fixed set of arenas to
//! dilute lock contention; each arena serves size-class runs whose
//! allocation bitmaps live in run headers (metadata grouped at the run's
//! start rather than threaded through every block). Threads keep a small
//! `tcache` in front of their arena.

use ngm_sim::{Access, AccessClass, Machine};

use crate::addr::AddressSpace;
use crate::model::{large_alloc, large_free, size_class, AllocModel, CLASS_SIZES, LARGE_CUTOFF};
use crate::slab::{MetaTraffic, SlabHeap};

/// Number of arenas (jemalloc defaults to a multiple of the CPU count;
/// a small fixed number keeps sharing observable).
const NARENAS: usize = 4;

/// tcache refill batch.
const TCACHE_BATCH: usize = 8;

/// tcache cap per class.
const TCACHE_CAP: usize = 32;

/// The jemalloc-style model.
pub struct JemallocModel {
    space: AddressSpace,
    arenas: Vec<SlabHeap>,
    arena_lock: Vec<u64>,
    tcache: Vec<Vec<Vec<u64>>>,
    tls_base: Vec<u64>,
    atomics: u64,
}

impl JemallocModel {
    /// Creates the model for `threads` application cores.
    pub fn new(threads: usize) -> Self {
        let mut space = AddressSpace::default();
        let arena_lock = (0..NARENAS).map(|_| space.reserve(4096, 4096)).collect();
        let tls_base = (0..threads).map(|_| space.reserve(4096, 4096)).collect();
        // Jemalloc small-class runs are a few pages; model 16 KiB.
        let arenas = (0..NARENAS)
            .map(|i| SlabHeap::with_page_size(&mut space, MetaTraffic::IndexArray, i, 16384))
            .collect();
        JemallocModel {
            space,
            arenas,
            arena_lock,
            tcache: vec![vec![Vec::new(); CLASS_SIZES.len()]; threads],
            tls_base,
            atomics: 0,
        }
    }

    fn arena_of(&self, core: usize) -> usize {
        core % NARENAS
    }

    fn tcache_head(&self, core: usize, class: usize) -> u64 {
        self.tls_base[core] + class as u64 * 16
    }
}

impl AllocModel for JemallocModel {
    fn name(&self) -> &'static str {
        "JeMalloc"
    }

    fn malloc(&mut self, machine: &mut Machine, core: usize, size: u32) -> u64 {
        let Some((class, _block)) = size_class(size) else {
            return large_alloc(&mut self.space, machine, core, size);
        };
        machine.retire(core, 30);
        machine.access(
            core,
            Access::load(self.tcache_head(core, class), 8, AccessClass::Meta),
        );
        if self.tcache[core][class].is_empty() {
            let arena = self.arena_of(core);
            machine.access(
                core,
                Access::atomic(self.arena_lock[arena], 8, AccessClass::Meta),
            );
            self.atomics += 1;
            machine.retire(core, 90);
            for _ in 0..TCACHE_BATCH {
                let addr = self.arenas[arena].alloc(machine, core, &mut self.space, class);
                self.tcache[core][class].push(addr);
            }
            machine.access(
                core,
                Access::atomic(self.arena_lock[arena], 8, AccessClass::Meta),
            );
            self.atomics += 1;
        }
        let addr = self.tcache[core][class]
            .pop()
            .expect("tcache refilled above");
        machine.access(
            core,
            Access::store(self.tcache_head(core, class), 8, AccessClass::Meta),
        );
        addr
    }

    fn free(&mut self, machine: &mut Machine, core: usize, addr: u64, size: u32) {
        if u64::from(size) > LARGE_CUTOFF {
            large_free(machine, core);
            return;
        }
        let (class, _block) = size_class(size).expect("small size has a class");
        machine.retire(core, 25);
        machine.access(
            core,
            Access::store(self.tcache_head(core, class), 8, AccessClass::Meta),
        );
        self.tcache[core][class].push(addr);
        if self.tcache[core][class].len() > TCACHE_CAP {
            // Flush half back to the owning arenas.
            let arena = self.arena_of(core);
            machine.access(
                core,
                Access::atomic(self.arena_lock[arena], 8, AccessClass::Meta),
            );
            self.atomics += 1;
            machine.retire(core, 110);
            for _ in 0..TCACHE_CAP / 2 {
                let a = self.tcache[core][class].pop().expect("tcache above cap");
                // The block may belong to a different arena than the one
                // this core drains to; route it home.
                let home = self
                    .arenas
                    .iter()
                    .position(|h| h.page_of(a).is_some())
                    .expect("block belongs to an arena");
                self.arenas[home].free(machine, core, a);
            }
            machine.access(
                core,
                Access::atomic(self.arena_lock[arena], 8, AccessClass::Meta),
            );
            self.atomics += 1;
        }
    }

    fn meta_bytes(&self) -> u64 {
        self.arenas.iter().map(SlabHeap::meta_bytes).sum::<u64>()
            + self.tls_base.len() as u64 * 4096
    }

    fn atomics(&self) -> u64 {
        self.atomics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngm_sim::MachineConfig;

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::a72(n))
    }

    #[test]
    fn roundtrip_and_fast_path() {
        let mut m = machine(1);
        let mut a = JemallocModel::new(1);
        let p = a.malloc(&mut m, 0, 200);
        let base = a.atomics();
        a.free(&mut m, 0, p, 200);
        let q = a.malloc(&mut m, 0, 200);
        assert_eq!(a.atomics(), base, "tcache hit takes no lock");
        assert_eq!(p, q);
    }

    #[test]
    fn cores_map_to_arenas_round_robin() {
        let a = JemallocModel::new(8);
        assert_eq!(a.arena_of(0), a.arena_of(NARENAS));
        assert_ne!(a.arena_of(0), a.arena_of(1));
    }

    #[test]
    fn flush_returns_blocks_to_home_arena() {
        let mut m = machine(2);
        let mut a = JemallocModel::new(2);
        // Core 0 allocates from arena 0; core 1 frees them (arena 1 core).
        let ps: Vec<u64> = (0..TCACHE_CAP + 4)
            .map(|_| a.malloc(&mut m, 0, 64))
            .collect();
        for p in ps {
            a.free(&mut m, 1, p, 64);
        }
        // Everything flushed must land back in arena 0's pages; whatever
        // arena 0 still counts live is exactly what sits in tcaches
        // (refill leftovers on core 0 plus unflushed frees on core 1).
        let live0 = a.arenas[0].live_blocks();
        let class = size_class(64).unwrap().0;
        let cached: usize = a.tcache[0][class].len() + a.tcache[1][class].len();
        assert_eq!(live0 as usize, cached, "arena 0 live = still-cached blocks");
    }
}
