//! The paper's §4.1 analytical model: when does offloading the allocator
//! pay for itself?
//!
//! The argument: offloading adds inter-core communication — atomic
//! operations "at the beginning and end of each malloc and free function
//! call", ~67 cycles each — and wins back LLC/TLB misses whose average
//! penalty the paper estimates at 214 cycles (comparing Mimalloc to
//! Glibc on `xalancbmk`). With `xalancbmk`'s 138,401,260 mallocs and
//! 141,394,145 frees, the added cost is ≈75 billion cycles, so
//! NextGen-Malloc must save at least
//! `4 × 67 / 214 ≈ 1.25` misses per malloc/free (plus the user code that
//! runs before the next one) to break even — plausible given Mimalloc's
//! 7 loads/stores per malloc and 10 per free.
//!
//! [`BreakEven`] encodes that arithmetic exactly and supports the
//! parameter sweeps used by the ablation benches (atomic-latency
//! crossover, miss-penalty sensitivity).

#![warn(missing_docs)]

/// `xalancbmk`'s malloc count from §4.1.
pub const XALANC_MALLOCS: u64 = 138_401_260;

/// `xalancbmk`'s free count from §4.1.
pub const XALANC_FREES: u64 = 141_394_145;

/// The paper's average atomic-RMW latency (Rajaram et al., Sandy Bridge).
pub const ATOMIC_CYCLES: u64 = 67;

/// The paper's worst-case contended atomic latency (Asgharzadeh et al.).
pub const ATOMIC_CYCLES_WORST: u64 = 700;

/// The paper's derived average LLC/TLB miss penalty in cycles.
pub const MISS_PENALTY: f64 = 214.0;

/// Atomics charged per offloaded call: one pair (`malloc_start`,
/// `malloc_done`) touched on each side.
pub const ATOMICS_PER_CALL: u64 = 4;

/// The §4.1 break-even model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakEven {
    /// malloc() calls in the workload.
    pub mallocs: u64,
    /// free() calls in the workload.
    pub frees: u64,
    /// Latency of one atomic RMW, cycles.
    pub atomic_cycles: u64,
    /// Atomic operations added per offloaded call.
    pub atomics_per_call: u64,
    /// Average penalty of one avoided LLC/TLB miss, cycles.
    pub miss_penalty: f64,
}

impl Default for BreakEven {
    /// The exact §4.1 configuration.
    fn default() -> Self {
        BreakEven {
            mallocs: XALANC_MALLOCS,
            frees: XALANC_FREES,
            atomic_cycles: ATOMIC_CYCLES,
            atomics_per_call: ATOMICS_PER_CALL,
            miss_penalty: MISS_PENALTY,
        }
    }
}

impl BreakEven {
    /// Total malloc + free calls.
    pub fn calls(&self) -> u64 {
        self.mallocs + self.frees
    }

    /// Cycles the offload protocol adds over the whole run (§4.1's "around
    /// 75 billion additional cycles").
    pub fn overhead_cycles(&self) -> u64 {
        self.calls() * self.atomics_per_call * self.atomic_cycles
    }

    /// Misses that must be saved per call (and the user code up to the
    /// next call) to amortize the overhead — §4.1's "at least 1.25".
    pub fn required_miss_reduction(&self) -> f64 {
        (self.atomics_per_call * self.atomic_cycles) as f64 / self.miss_penalty
    }

    /// Net cycles saved for a given measured miss reduction per call.
    /// Positive means offloading wins.
    pub fn net_savings(&self, misses_saved_per_call: f64) -> f64 {
        let saved = misses_saved_per_call * self.miss_penalty * self.calls() as f64;
        saved - self.overhead_cycles() as f64
    }

    /// Speedup over a baseline of `baseline_cycles` for a given miss
    /// reduction per call (>1 means faster).
    pub fn speedup(&self, baseline_cycles: f64, misses_saved_per_call: f64) -> f64 {
        baseline_cycles / (baseline_cycles - self.net_savings(misses_saved_per_call))
    }

    /// The atomic latency at which a given miss reduction stops paying:
    /// offloading wins only while `atomic_cycles` is below this.
    pub fn crossover_atomic_latency(&self, misses_saved_per_call: f64) -> f64 {
        misses_saved_per_call * self.miss_penalty / self.atomics_per_call as f64
    }

    /// Sweeps atomic latency over `range`, returning
    /// `(latency, net_savings)` pairs for a fixed miss reduction.
    pub fn sweep_atomic_latency(
        &self,
        range: impl Iterator<Item = u64>,
        misses_saved_per_call: f64,
    ) -> Vec<(u64, f64)> {
        range
            .map(|lat| {
                let m = BreakEven {
                    atomic_cycles: lat,
                    ..*self
                };
                (lat, m.net_savings(misses_saved_per_call))
            })
            .collect()
    }

    /// Sweeps the miss penalty (hardware dependence of the argument).
    pub fn sweep_miss_penalty(
        &self,
        range: impl Iterator<Item = u64>,
        misses_saved_per_call: f64,
    ) -> Vec<(u64, f64)> {
        range
            .map(|pen| {
                let m = BreakEven {
                    miss_penalty: pen as f64,
                    ..*self
                };
                (pen, m.net_savings(misses_saved_per_call))
            })
            .collect()
    }
}

/// Feasibility check from §4.1's closing argument: Mimalloc performs
/// 7 loads/stores per malloc and 10 per free, so saving ≥1.25 misses per
/// call is within reach if a modest fraction of those accesses miss.
pub fn feasible_miss_reduction(
    accesses_per_malloc: u64,
    accesses_per_free: u64,
    miss_rate: f64,
) -> f64 {
    debug_assert!((0.0..=1.0).contains(&miss_rate));
    (accesses_per_malloc + accesses_per_free) as f64 / 2.0 * miss_rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_overhead_is_about_75_billion_cycles() {
        let m = BreakEven::default();
        let overhead = m.overhead_cycles() as f64;
        assert!(
            (74e9..77e9).contains(&overhead),
            "overhead {overhead:.3e} not ≈75e9"
        );
    }

    #[test]
    fn paper_break_even_is_1_25_misses() {
        let m = BreakEven::default();
        let req = m.required_miss_reduction();
        assert!(
            (req - 1.25).abs() < 0.01,
            "required reduction {req} not ≈1.25"
        );
    }

    #[test]
    fn net_savings_sign_flips_at_break_even() {
        let m = BreakEven::default();
        let req = m.required_miss_reduction();
        assert!(m.net_savings(req * 0.99) < 0.0);
        assert!(m.net_savings(req * 1.01) > 0.0);
        assert!(m.net_savings(req).abs() < 1e7);
    }

    #[test]
    fn crossover_matches_inverse() {
        let m = BreakEven::default();
        let saved = 2.0;
        let cross = m.crossover_atomic_latency(saved);
        let at_cross = BreakEven {
            atomic_cycles: cross as u64,
            ..m
        };
        // At (the floor of) the crossover we are within one call-cost of
        // zero savings.
        assert!(at_cross.net_savings(saved).abs() < m.calls() as f64 * m.atomics_per_call as f64);
    }

    #[test]
    fn worst_case_atomics_kill_the_win() {
        let m = BreakEven {
            atomic_cycles: ATOMIC_CYCLES_WORST,
            ..BreakEven::default()
        };
        // 700-cycle atomics need >13 misses saved per call — implausible,
        // which is why the paper stresses reducing sync overhead.
        assert!(m.required_miss_reduction() > 13.0);
        assert!(m.net_savings(1.25) < 0.0);
    }

    #[test]
    fn speedup_of_4_5_percent_is_reachable() {
        // Table 3 reports a 4.51 % improvement. With the paper's cycle
        // count for Mimalloc (6.959e11) the model should find a modest
        // miss reduction that yields that speedup.
        let m = BreakEven::default();
        let baseline = 6.959e11;
        // Solve net = baseline * (1 - 1/1.0451).
        let target_net = baseline * (1.0 - 1.0 / 1.0451);
        let needed =
            (target_net + m.overhead_cycles() as f64) / (m.miss_penalty * m.calls() as f64);
        assert!(
            (1.0..4.0).contains(&needed),
            "needed reduction {needed} should be a small per-call count"
        );
        let s = m.speedup(baseline, needed);
        assert!((s - 1.0451).abs() < 1e-3);
    }

    #[test]
    fn feasibility_from_mimalloc_access_counts() {
        // 7 accesses per malloc, 10 per free: a 15 % miss rate on those
        // already exceeds the 1.25 break-even.
        let r = feasible_miss_reduction(7, 10, 0.15);
        assert!(r > 1.25);
    }

    #[test]
    fn sweeps_are_monotonic() {
        let m = BreakEven::default();
        let sweep = m.sweep_atomic_latency((20..=700).step_by(20), 1.25);
        assert!(sweep.windows(2).all(|w| w[0].1 >= w[1].1));
        let pens = m.sweep_miss_penalty((100..=400).step_by(50), 1.25);
        assert!(pens.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
