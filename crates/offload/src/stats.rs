//! Runtime statistics for the offload service thread.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::wait::WaitPhase;

/// Sentinel for "no core pinned".
const NOT_PINNED: usize = usize::MAX;

/// Live counters updated by the service thread and client handles.
///
/// Counter fields are monotonically increasing; `ring_occupancy` and
/// `wait_phase` are gauges the service loop overwrites each round. Read a
/// coherent view with [`RuntimeStats::snapshot`].
#[derive(Debug)]
pub struct RuntimeStats {
    /// Synchronous requests served.
    pub calls_served: AtomicU64,
    /// Fire-and-forget messages drained.
    pub posts_served: AtomicU64,
    /// Total polling rounds executed by the service loop.
    pub poll_rounds: AtomicU64,
    /// Polling rounds that found no work.
    pub empty_rounds: AtomicU64,
    /// Clients ever registered.
    pub clients_registered: AtomicU64,
    /// Times a client found its post ring full and had to retry.
    pub post_full_retries: AtomicU64,
    /// Fire-and-forget messages dropped because the service thread was
    /// already gone (its ring closed). Nonzero only after an unclean
    /// shard death; the memory those messages would have freed is lost.
    pub posts_dropped: AtomicU64,
    /// Flag: a client observed this runtime's service thread dead (ring
    /// closed / thread finished) outside of an orderly shutdown.
    pub service_down: AtomicBool,
    /// Times clients remapped allocation traffic away from this shard
    /// because its ring saturated (the sharded tier's rebalance path).
    pub rebalances: AtomicU64,
    /// Times clients rerouted a request to a surviving shard because
    /// this shard's service thread had died.
    pub failovers: AtomicU64,
    /// Batched synchronous requests served (magazine refills in the
    /// malloc deployment); a subset of `calls_served`.
    pub batched_calls_served: AtomicU64,
    /// Times a client's call or post exhausted its deadline budget
    /// against this shard (the shard was wedged or saturated, not
    /// necessarily dead).
    pub deadlines: AtomicU64,
    /// Total bounded retry iterations clients spent against this shard:
    /// full-ring post retries plus reroute attempts after a deadline.
    pub retry_total: AtomicU64,
    /// Times a non-blocking operation against this shard refused to wait:
    /// a submission found its slot busy, or a non-blocking post found the
    /// ring full. Transient by definition (the caller buffers and
    /// retries); sustained growth means clients outrun the shard.
    pub wouldblocks: AtomicU64,
    /// Gauge: submissions in flight through the non-blocking front-end
    /// (begun, neither completed nor retracted), published by submission
    /// queues as their depth changes.
    pub inflight: AtomicI64,
    /// Gauge: posts pending across all client rings, as of the service
    /// loop's last poll round.
    pub ring_occupancy: AtomicUsize,
    /// Gauge: pre-handed-out items stashed in client magazines, published
    /// by handles at refill/drop boundaries (never on the pop fast path —
    /// §3.1.3's no-new-atomics rule).
    pub magazine_occupancy: AtomicI64,
    /// Gauge: the service wait loop's current [`WaitPhase`] (as `u32`).
    pub wait_phase: AtomicU32,
    /// Times the service wait loop changed phase (spin → yield → sleep,
    /// or any phase → spin when work arrived).
    pub wait_transitions: AtomicU64,
    /// Whether the service thread asked to be pinned.
    pub pin_requested: AtomicBool,
    /// Core the service thread was pinned to, or `usize::MAX`.
    pub pinned_core: AtomicUsize,
}

/// A plain-value copy of [`RuntimeStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Synchronous requests served.
    pub calls_served: u64,
    /// Fire-and-forget messages drained.
    pub posts_served: u64,
    /// Total polling rounds executed by the service loop.
    pub poll_rounds: u64,
    /// Polling rounds that found no work.
    pub empty_rounds: u64,
    /// Clients ever registered.
    pub clients_registered: u64,
    /// Times a client found its post ring full and had to retry.
    pub post_full_retries: u64,
    /// Messages dropped because the service thread was already gone.
    pub posts_dropped: u64,
    /// Whether a client observed this runtime's service thread dead
    /// outside of an orderly shutdown.
    pub service_down: bool,
    /// Times clients rebalanced allocation traffic off this shard.
    pub rebalances: u64,
    /// Times clients failed a request over to a surviving shard.
    pub failovers: u64,
    /// Batched synchronous requests served (magazine refills).
    pub batched_calls_served: u64,
    /// Client operations that exhausted their deadline budget.
    pub deadlines: u64,
    /// Total bounded retry iterations clients spent against this shard.
    pub retry_total: u64,
    /// Non-blocking operations that refused to wait (busy slot or full
    /// ring at a single-attempt submission).
    pub wouldblocks: u64,
    /// Submissions in flight through the non-blocking front-end.
    pub inflight: i64,
    /// Posts pending across all client rings at the last poll round.
    pub ring_occupancy: usize,
    /// Items stashed in client magazines as of the last refill/drop
    /// publication.
    pub magazine_occupancy: i64,
    /// The service wait loop's phase when the snapshot was taken.
    pub wait_phase: WaitPhase,
    /// Wait-loop phase transitions so far.
    pub wait_transitions: u64,
    /// Core the service thread ended up pinned to, if any.
    pub pinned_core: Option<usize>,
}

impl Default for RuntimeStats {
    /// Equivalent to [`RuntimeStats::new`].
    ///
    /// A derived `Default` would zero `pinned_core`, making fresh stats
    /// claim a pin to core 0; the sentinel must be set explicitly.
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeStats {
    /// Creates zeroed stats (with `pinned_core` at its "not pinned"
    /// sentinel).
    pub fn new() -> Self {
        RuntimeStats {
            calls_served: AtomicU64::new(0),
            posts_served: AtomicU64::new(0),
            poll_rounds: AtomicU64::new(0),
            empty_rounds: AtomicU64::new(0),
            clients_registered: AtomicU64::new(0),
            post_full_retries: AtomicU64::new(0),
            posts_dropped: AtomicU64::new(0),
            service_down: AtomicBool::new(false),
            rebalances: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            batched_calls_served: AtomicU64::new(0),
            deadlines: AtomicU64::new(0),
            retry_total: AtomicU64::new(0),
            wouldblocks: AtomicU64::new(0),
            inflight: AtomicI64::new(0),
            ring_occupancy: AtomicUsize::new(0),
            magazine_occupancy: AtomicI64::new(0),
            wait_phase: AtomicU32::new(WaitPhase::Spin as u32),
            wait_transitions: AtomicU64::new(0),
            pin_requested: AtomicBool::new(false),
            pinned_core: AtomicUsize::new(NOT_PINNED),
        }
    }

    /// Records a successful pin.
    pub fn record_pin(&self, core: usize) {
        self.pinned_core.store(core, Ordering::Relaxed);
    }

    /// Flags this runtime's service thread as dead (observed by a client
    /// outside of an orderly shutdown).
    pub fn mark_service_down(&self) {
        self.service_down.store(true, Ordering::Relaxed);
    }

    /// Counts one message dropped because the service was gone.
    pub fn record_post_dropped(&self) {
        self.posts_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one rebalance of client traffic off this shard.
    pub fn record_rebalance(&self) {
        self.rebalances.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one failover of a request to a surviving shard.
    pub fn record_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one deadline expiry against this shard.
    pub fn record_deadline(&self) {
        self.deadlines.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` bounded retry iterations to the running total.
    pub fn add_retries(&self, n: u64) {
        if n != 0 {
            self.retry_total.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adjusts the magazine-occupancy gauge by `delta`. Called by client
    /// handles only at refill and drain boundaries, never per pop.
    pub fn add_magazine_occupancy(&self, delta: i64) {
        self.magazine_occupancy.fetch_add(delta, Ordering::Relaxed);
    }

    /// Counts one non-blocking refusal (busy slot or full ring on a
    /// single-attempt submission).
    pub fn record_wouldblock(&self) {
        self.wouldblocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Adjusts the in-flight-submission gauge by `delta`. Called by
    /// submission queues as entries are begun and completed/retracted.
    pub fn add_inflight(&self, delta: i64) {
        self.inflight.fetch_add(delta, Ordering::Relaxed);
    }

    /// Records a wait-loop phase change (gauge overwrite plus transition
    /// count). Called by the service loop only.
    pub fn record_wait_phase(&self, phase: WaitPhase) {
        self.wait_phase.store(phase as u32, Ordering::Relaxed);
        self.wait_transitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let pinned = self.pinned_core.load(Ordering::Relaxed);
        StatsSnapshot {
            calls_served: self.calls_served.load(Ordering::Relaxed),
            posts_served: self.posts_served.load(Ordering::Relaxed),
            poll_rounds: self.poll_rounds.load(Ordering::Relaxed),
            empty_rounds: self.empty_rounds.load(Ordering::Relaxed),
            clients_registered: self.clients_registered.load(Ordering::Relaxed),
            post_full_retries: self.post_full_retries.load(Ordering::Relaxed),
            posts_dropped: self.posts_dropped.load(Ordering::Relaxed),
            service_down: self.service_down.load(Ordering::Relaxed),
            rebalances: self.rebalances.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            batched_calls_served: self.batched_calls_served.load(Ordering::Relaxed),
            deadlines: self.deadlines.load(Ordering::Relaxed),
            retry_total: self.retry_total.load(Ordering::Relaxed),
            wouldblocks: self.wouldblocks.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            ring_occupancy: self.ring_occupancy.load(Ordering::Relaxed),
            magazine_occupancy: self.magazine_occupancy.load(Ordering::Relaxed),
            wait_phase: WaitPhase::from_u32(self.wait_phase.load(Ordering::Relaxed)),
            wait_transitions: self.wait_transitions.load(Ordering::Relaxed),
            pinned_core: (pinned != NOT_PINNED).then_some(pinned),
        }
    }
}

impl StatsSnapshot {
    /// Folds another shard's snapshot into this one: counters and
    /// occupancy gauges sum, `service_down` ORs, and the fields that only
    /// make sense per shard (`wait_phase`, `pinned_core`) keep `self`'s
    /// values. Used to present a fleet of service shards as one runtime.
    pub fn absorb(&mut self, other: &StatsSnapshot) {
        self.calls_served += other.calls_served;
        self.posts_served += other.posts_served;
        self.poll_rounds += other.poll_rounds;
        self.empty_rounds += other.empty_rounds;
        self.clients_registered += other.clients_registered;
        self.post_full_retries += other.post_full_retries;
        self.posts_dropped += other.posts_dropped;
        self.service_down |= other.service_down;
        self.rebalances += other.rebalances;
        self.failovers += other.failovers;
        self.batched_calls_served += other.batched_calls_served;
        self.deadlines += other.deadlines;
        self.retry_total += other.retry_total;
        self.wouldblocks += other.wouldblocks;
        self.inflight += other.inflight;
        self.ring_occupancy += other.ring_occupancy;
        self.magazine_occupancy += other.magazine_occupancy;
        self.wait_transitions += other.wait_transitions;
    }

    /// Fraction of polling rounds that found no work, in `[0, 1]`.
    pub fn idle_fraction(&self) -> f64 {
        if self.poll_rounds == 0 {
            0.0
        } else {
            self.empty_rounds as f64 / self.poll_rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stats_report_unpinned() {
        let s = RuntimeStats::new();
        assert_eq!(s.snapshot().pinned_core, None);
    }

    #[test]
    fn default_stats_report_unpinned() {
        // Regression: a derived `Default` left `pinned_core` at 0, so
        // default-constructed stats claimed a pin to core 0.
        let s = RuntimeStats::default();
        assert_eq!(s.snapshot().pinned_core, None);
    }

    #[test]
    fn record_pin_shows_in_snapshot() {
        let s = RuntimeStats::new();
        s.record_pin(3);
        assert_eq!(s.snapshot().pinned_core, Some(3));
    }

    #[test]
    fn idle_fraction_handles_zero_rounds() {
        let s = RuntimeStats::new();
        assert_eq!(s.snapshot().idle_fraction(), 0.0);
        s.poll_rounds.store(10, Ordering::Relaxed);
        s.empty_rounds.store(4, Ordering::Relaxed);
        assert!((s.snapshot().idle_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn magazine_occupancy_gauge_moves_both_ways() {
        let s = RuntimeStats::new();
        assert_eq!(s.snapshot().magazine_occupancy, 0);
        s.add_magazine_occupancy(16);
        s.add_magazine_occupancy(16);
        assert_eq!(s.snapshot().magazine_occupancy, 32);
        s.add_magazine_occupancy(-32);
        assert_eq!(s.snapshot().magazine_occupancy, 0);
    }

    #[test]
    fn absorb_sums_counters_and_ors_down_flag() {
        let a = RuntimeStats::new();
        a.calls_served.store(3, Ordering::Relaxed);
        a.ring_occupancy.store(2, Ordering::Relaxed);
        let b = RuntimeStats::new();
        b.calls_served.store(4, Ordering::Relaxed);
        b.ring_occupancy.store(5, Ordering::Relaxed);
        b.mark_service_down();
        b.record_rebalance();
        b.record_post_dropped();
        b.record_deadline();
        b.add_retries(5);
        let mut snap = a.snapshot();
        snap.absorb(&b.snapshot());
        assert_eq!(snap.calls_served, 7);
        assert_eq!(snap.ring_occupancy, 7);
        assert!(snap.service_down);
        assert_eq!(snap.rebalances, 1);
        assert_eq!(snap.posts_dropped, 1);
        assert_eq!(snap.deadlines, 1);
        assert_eq!(snap.retry_total, 5);
    }

    #[test]
    fn fresh_stats_report_service_up() {
        let s = RuntimeStats::new();
        let snap = s.snapshot();
        assert!(!snap.service_down);
        assert_eq!(snap.posts_dropped, 0);
        assert_eq!(snap.failovers, 0);
    }

    #[test]
    fn wouldblock_counter_and_inflight_gauge_absorb() {
        let a = RuntimeStats::new();
        a.record_wouldblock();
        a.add_inflight(3);
        let b = RuntimeStats::new();
        b.record_wouldblock();
        b.record_wouldblock();
        b.add_inflight(4);
        b.add_inflight(-2);
        let mut snap = a.snapshot();
        snap.absorb(&b.snapshot());
        assert_eq!(snap.wouldblocks, 3);
        assert_eq!(snap.inflight, 5);
    }

    #[test]
    fn wait_phase_gauge_tracks_transitions() {
        let s = RuntimeStats::new();
        assert_eq!(s.snapshot().wait_phase, WaitPhase::Spin);
        assert_eq!(s.snapshot().wait_transitions, 0);
        s.record_wait_phase(WaitPhase::Sleep);
        let snap = s.snapshot();
        assert_eq!(snap.wait_phase, WaitPhase::Sleep);
        assert_eq!(snap.wait_transitions, 1);
    }
}
