//! Runtime statistics for the offload service thread.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::wait::WaitPhase;

/// Sentinel for "no core pinned".
const NOT_PINNED: usize = usize::MAX;

/// Live counters updated by the service thread and client handles.
///
/// Counter fields are monotonically increasing; `ring_occupancy` and
/// `wait_phase` are gauges the service loop overwrites each round. Read a
/// coherent view with [`RuntimeStats::snapshot`].
#[derive(Debug)]
pub struct RuntimeStats {
    /// Synchronous requests served.
    pub calls_served: AtomicU64,
    /// Fire-and-forget messages drained.
    pub posts_served: AtomicU64,
    /// Total polling rounds executed by the service loop.
    pub poll_rounds: AtomicU64,
    /// Polling rounds that found no work.
    pub empty_rounds: AtomicU64,
    /// Clients ever registered.
    pub clients_registered: AtomicU64,
    /// Times a client found its post ring full and had to retry.
    pub post_full_retries: AtomicU64,
    /// Batched synchronous requests served (magazine refills in the
    /// malloc deployment); a subset of `calls_served`.
    pub batched_calls_served: AtomicU64,
    /// Gauge: posts pending across all client rings, as of the service
    /// loop's last poll round.
    pub ring_occupancy: AtomicUsize,
    /// Gauge: pre-handed-out items stashed in client magazines, published
    /// by handles at refill/drop boundaries (never on the pop fast path —
    /// §3.1.3's no-new-atomics rule).
    pub magazine_occupancy: AtomicI64,
    /// Gauge: the service wait loop's current [`WaitPhase`] (as `u32`).
    pub wait_phase: AtomicU32,
    /// Times the service wait loop changed phase (spin → yield → sleep,
    /// or any phase → spin when work arrived).
    pub wait_transitions: AtomicU64,
    /// Whether the service thread asked to be pinned.
    pub pin_requested: AtomicBool,
    /// Core the service thread was pinned to, or `usize::MAX`.
    pub pinned_core: AtomicUsize,
}

/// A plain-value copy of [`RuntimeStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Synchronous requests served.
    pub calls_served: u64,
    /// Fire-and-forget messages drained.
    pub posts_served: u64,
    /// Total polling rounds executed by the service loop.
    pub poll_rounds: u64,
    /// Polling rounds that found no work.
    pub empty_rounds: u64,
    /// Clients ever registered.
    pub clients_registered: u64,
    /// Times a client found its post ring full and had to retry.
    pub post_full_retries: u64,
    /// Batched synchronous requests served (magazine refills).
    pub batched_calls_served: u64,
    /// Posts pending across all client rings at the last poll round.
    pub ring_occupancy: usize,
    /// Items stashed in client magazines as of the last refill/drop
    /// publication.
    pub magazine_occupancy: i64,
    /// The service wait loop's phase when the snapshot was taken.
    pub wait_phase: WaitPhase,
    /// Wait-loop phase transitions so far.
    pub wait_transitions: u64,
    /// Core the service thread ended up pinned to, if any.
    pub pinned_core: Option<usize>,
}

impl Default for RuntimeStats {
    /// Equivalent to [`RuntimeStats::new`].
    ///
    /// A derived `Default` would zero `pinned_core`, making fresh stats
    /// claim a pin to core 0; the sentinel must be set explicitly.
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeStats {
    /// Creates zeroed stats (with `pinned_core` at its "not pinned"
    /// sentinel).
    pub fn new() -> Self {
        RuntimeStats {
            calls_served: AtomicU64::new(0),
            posts_served: AtomicU64::new(0),
            poll_rounds: AtomicU64::new(0),
            empty_rounds: AtomicU64::new(0),
            clients_registered: AtomicU64::new(0),
            post_full_retries: AtomicU64::new(0),
            batched_calls_served: AtomicU64::new(0),
            ring_occupancy: AtomicUsize::new(0),
            magazine_occupancy: AtomicI64::new(0),
            wait_phase: AtomicU32::new(WaitPhase::Spin as u32),
            wait_transitions: AtomicU64::new(0),
            pin_requested: AtomicBool::new(false),
            pinned_core: AtomicUsize::new(NOT_PINNED),
        }
    }

    /// Records a successful pin.
    pub fn record_pin(&self, core: usize) {
        self.pinned_core.store(core, Ordering::Relaxed);
    }

    /// Adjusts the magazine-occupancy gauge by `delta`. Called by client
    /// handles only at refill and drain boundaries, never per pop.
    pub fn add_magazine_occupancy(&self, delta: i64) {
        self.magazine_occupancy.fetch_add(delta, Ordering::Relaxed);
    }

    /// Records a wait-loop phase change (gauge overwrite plus transition
    /// count). Called by the service loop only.
    pub fn record_wait_phase(&self, phase: WaitPhase) {
        self.wait_phase.store(phase as u32, Ordering::Relaxed);
        self.wait_transitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let pinned = self.pinned_core.load(Ordering::Relaxed);
        StatsSnapshot {
            calls_served: self.calls_served.load(Ordering::Relaxed),
            posts_served: self.posts_served.load(Ordering::Relaxed),
            poll_rounds: self.poll_rounds.load(Ordering::Relaxed),
            empty_rounds: self.empty_rounds.load(Ordering::Relaxed),
            clients_registered: self.clients_registered.load(Ordering::Relaxed),
            post_full_retries: self.post_full_retries.load(Ordering::Relaxed),
            batched_calls_served: self.batched_calls_served.load(Ordering::Relaxed),
            ring_occupancy: self.ring_occupancy.load(Ordering::Relaxed),
            magazine_occupancy: self.magazine_occupancy.load(Ordering::Relaxed),
            wait_phase: WaitPhase::from_u32(self.wait_phase.load(Ordering::Relaxed)),
            wait_transitions: self.wait_transitions.load(Ordering::Relaxed),
            pinned_core: (pinned != NOT_PINNED).then_some(pinned),
        }
    }
}

impl StatsSnapshot {
    /// Fraction of polling rounds that found no work, in `[0, 1]`.
    pub fn idle_fraction(&self) -> f64 {
        if self.poll_rounds == 0 {
            0.0
        } else {
            self.empty_rounds as f64 / self.poll_rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stats_report_unpinned() {
        let s = RuntimeStats::new();
        assert_eq!(s.snapshot().pinned_core, None);
    }

    #[test]
    fn default_stats_report_unpinned() {
        // Regression: a derived `Default` left `pinned_core` at 0, so
        // default-constructed stats claimed a pin to core 0.
        let s = RuntimeStats::default();
        assert_eq!(s.snapshot().pinned_core, None);
    }

    #[test]
    fn record_pin_shows_in_snapshot() {
        let s = RuntimeStats::new();
        s.record_pin(3);
        assert_eq!(s.snapshot().pinned_core, Some(3));
    }

    #[test]
    fn idle_fraction_handles_zero_rounds() {
        let s = RuntimeStats::new();
        assert_eq!(s.snapshot().idle_fraction(), 0.0);
        s.poll_rounds.store(10, Ordering::Relaxed);
        s.empty_rounds.store(4, Ordering::Relaxed);
        assert!((s.snapshot().idle_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn magazine_occupancy_gauge_moves_both_ways() {
        let s = RuntimeStats::new();
        assert_eq!(s.snapshot().magazine_occupancy, 0);
        s.add_magazine_occupancy(16);
        s.add_magazine_occupancy(16);
        assert_eq!(s.snapshot().magazine_occupancy, 32);
        s.add_magazine_occupancy(-32);
        assert_eq!(s.snapshot().magazine_occupancy, 0);
    }

    #[test]
    fn wait_phase_gauge_tracks_transitions() {
        let s = RuntimeStats::new();
        assert_eq!(s.snapshot().wait_phase, WaitPhase::Spin);
        assert_eq!(s.snapshot().wait_transitions, 0);
        s.record_wait_phase(WaitPhase::Sleep);
        let snap = s.snapshot();
        assert_eq!(snap.wait_phase, WaitPhase::Sleep);
        assert_eq!(snap.wait_transitions, 1);
    }
}
