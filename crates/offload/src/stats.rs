//! Runtime statistics for the offload service thread.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Sentinel for "no core pinned".
const NOT_PINNED: usize = usize::MAX;

/// Live counters updated by the service thread and client handles.
///
/// All fields are monotonically increasing; read a coherent view with
/// [`RuntimeStats::snapshot`].
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Synchronous requests served.
    pub calls_served: AtomicU64,
    /// Fire-and-forget messages drained.
    pub posts_served: AtomicU64,
    /// Total polling rounds executed by the service loop.
    pub poll_rounds: AtomicU64,
    /// Polling rounds that found no work.
    pub empty_rounds: AtomicU64,
    /// Clients ever registered.
    pub clients_registered: AtomicU64,
    /// Times a client found its post ring full and had to retry.
    pub post_full_retries: AtomicU64,
    /// Whether the service thread asked to be pinned.
    pub pin_requested: AtomicBool,
    /// Core the service thread was pinned to, or `usize::MAX`.
    pub pinned_core: AtomicUsize,
}

/// A plain-value copy of [`RuntimeStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Synchronous requests served.
    pub calls_served: u64,
    /// Fire-and-forget messages drained.
    pub posts_served: u64,
    /// Total polling rounds executed by the service loop.
    pub poll_rounds: u64,
    /// Polling rounds that found no work.
    pub empty_rounds: u64,
    /// Clients ever registered.
    pub clients_registered: u64,
    /// Times a client found its post ring full and had to retry.
    pub post_full_retries: u64,
    /// Core the service thread ended up pinned to, if any.
    pub pinned_core: Option<usize>,
}

impl RuntimeStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        let s = RuntimeStats::default();
        s.pinned_core.store(NOT_PINNED, Ordering::Relaxed);
        s
    }

    /// Records a successful pin.
    pub fn record_pin(&self, core: usize) {
        self.pinned_core.store(core, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let pinned = self.pinned_core.load(Ordering::Relaxed);
        StatsSnapshot {
            calls_served: self.calls_served.load(Ordering::Relaxed),
            posts_served: self.posts_served.load(Ordering::Relaxed),
            poll_rounds: self.poll_rounds.load(Ordering::Relaxed),
            empty_rounds: self.empty_rounds.load(Ordering::Relaxed),
            clients_registered: self.clients_registered.load(Ordering::Relaxed),
            post_full_retries: self.post_full_retries.load(Ordering::Relaxed),
            pinned_core: (pinned != NOT_PINNED).then_some(pinned),
        }
    }
}

impl StatsSnapshot {
    /// Fraction of polling rounds that found no work, in `[0, 1]`.
    pub fn idle_fraction(&self) -> f64 {
        if self.poll_rounds == 0 {
            0.0
        } else {
            self.empty_rounds as f64 / self.poll_rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stats_report_unpinned() {
        let s = RuntimeStats::new();
        assert_eq!(s.snapshot().pinned_core, None);
    }

    #[test]
    fn record_pin_shows_in_snapshot() {
        let s = RuntimeStats::new();
        s.record_pin(3);
        assert_eq!(s.snapshot().pinned_core, Some(3));
    }

    #[test]
    fn idle_fraction_handles_zero_rounds() {
        let s = RuntimeStats::new();
        assert_eq!(s.snapshot().idle_fraction(), 0.0);
        s.poll_rounds.store(10, Ordering::Relaxed);
        s.empty_rounds.store(4, Ordering::Relaxed);
        assert!((s.snapshot().idle_fraction() - 0.4).abs() < 1e-12);
    }
}
