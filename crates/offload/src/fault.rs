//! Deterministic fault injection for the service loop (`faultinject`
//! feature only — the module does not exist otherwise, so the hot path
//! pays nothing when the feature is off).
//!
//! The hang-proofing work in this crate (deadlines, bounded retries,
//! retraction) is only trustworthy if the failure modes it defends
//! against can be produced *on demand*: a wedged-but-alive service loop,
//! a response that never comes, a response that arrives later than the
//! client's budget, and a service thread that dies mid-serve. Each knob
//! here is a relaxed atomic the service loop consults once per pending
//! call, so tests (and the `repro faults` experiment) can dial faults in
//! and out while the tier is live.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What the service loop should do with the next pending call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Serve normally.
    Serve,
    /// Leave the request unserved until the client retracts it — the
    /// "response dropped" fault. The client's deadline fires and the
    /// retraction CAS reclaims the request.
    Drop,
    /// Busy-wait this many cycles before serving — the "late response"
    /// fault. Below the client's budget this is recoverable latency;
    /// above it, the client times out while the serve is in flight.
    Delay(u64),
    /// Panic the service thread *inside* the serve (after the request is
    /// claimed) — the "shard killed mid-refill" fault. The client
    /// observes an abandoned request; the runtime reports
    /// `ServicePanicked` at shutdown.
    Kill,
}

/// Live fault knobs for one shard's service loop. All methods are safe to
/// call from any thread while the shard runs.
#[derive(Debug, Default)]
pub struct FaultState {
    wedged: AtomicBool,
    drop_every: AtomicU64,
    delay_cycles: AtomicU64,
    kill_next: AtomicBool,
    calls_seen: AtomicU64,
}

impl FaultState {
    /// A state with every fault off.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wedges (or unwedges) the service loop: while wedged it serves no
    /// calls and drains no posts, but still honors stop requests so
    /// shutdown stays orderly.
    pub fn set_wedged(&self, on: bool) {
        self.wedged.store(on, Ordering::Release);
    }

    /// Whether the loop is currently wedged.
    #[must_use]
    pub fn is_wedged(&self) -> bool {
        self.wedged.load(Ordering::Acquire)
    }

    /// Drops every `n`th response (leaves the request for the client to
    /// retract). `0` disables the fault.
    pub fn set_drop_every(&self, n: u64) {
        self.drop_every.store(n, Ordering::Release);
    }

    /// Delays every served call by busy-waiting `cycles` first. `0`
    /// disables the fault.
    pub fn set_delay_cycles(&self, cycles: u64) {
        self.delay_cycles.store(cycles, Ordering::Release);
    }

    /// Arms a one-shot kill: the service thread panics inside its next
    /// serve, after claiming the request.
    pub fn kill_next_call(&self) {
        self.kill_next.store(true, Ordering::Release);
    }

    /// Calls the service loop observed while faults were armed.
    #[must_use]
    pub fn calls_seen(&self) -> u64 {
        self.calls_seen.load(Ordering::Relaxed)
    }

    /// Decides the fate of one pending call. Called by the service loop
    /// once per request it is about to serve; precedence is
    /// kill > drop > delay.
    #[must_use]
    pub fn next_action(&self) -> FaultAction {
        if self.kill_next.swap(false, Ordering::AcqRel) {
            return FaultAction::Kill;
        }
        let seen = self.calls_seen.fetch_add(1, Ordering::Relaxed) + 1;
        let every = self.drop_every.load(Ordering::Acquire);
        if every > 0 && seen.is_multiple_of(every) {
            return FaultAction::Drop;
        }
        let delay = self.delay_cycles.load(Ordering::Acquire);
        if delay > 0 {
            return FaultAction::Delay(delay);
        }
        FaultAction::Serve
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_off_serves() {
        let f = FaultState::new();
        for _ in 0..100 {
            assert_eq!(f.next_action(), FaultAction::Serve);
        }
        assert!(!f.is_wedged());
        assert_eq!(f.calls_seen(), 100);
    }

    #[test]
    fn drop_every_nth_is_periodic() {
        let f = FaultState::new();
        f.set_drop_every(3);
        let actions: Vec<_> = (0..9).map(|_| f.next_action()).collect();
        let drops = actions
            .iter()
            .filter(|a| matches!(a, FaultAction::Drop))
            .count();
        assert_eq!(drops, 3);
        assert_eq!(actions[2], FaultAction::Drop);
        assert_eq!(actions[5], FaultAction::Drop);
        f.set_drop_every(0);
        assert_eq!(f.next_action(), FaultAction::Serve);
    }

    #[test]
    fn kill_is_one_shot_and_wins_precedence() {
        let f = FaultState::new();
        f.set_drop_every(1);
        f.kill_next_call();
        assert_eq!(f.next_action(), FaultAction::Kill);
        assert_eq!(f.next_action(), FaultAction::Drop, "kill disarmed");
    }

    #[test]
    fn delay_reports_configured_cycles() {
        let f = FaultState::new();
        f.set_delay_cycles(500);
        assert_eq!(f.next_action(), FaultAction::Delay(500));
        f.set_delay_cycles(0);
        assert_eq!(f.next_action(), FaultAction::Serve);
    }

    #[test]
    fn wedge_toggles() {
        let f = FaultState::new();
        f.set_wedged(true);
        assert!(f.is_wedged());
        f.set_wedged(false);
        assert!(!f.is_wedged());
    }
}
