//! Offload runtime for NextGen-Malloc: the machinery that gives a service
//! function "its own room in the house".
//!
//! The paper's prototype (§4.2) spawns a child thread, pins it to a specific
//! core, and has the main thread hand over `malloc()`/`free()` requests
//! through a pair of atomic flags (`malloc_start` / `malloc_done`). This
//! crate generalizes that design:
//!
//! * [`slot::RequestSlot`] — the paper's two-flag synchronous mailbox, one
//!   per client thread.
//! * [`ring::spsc`] — a bounded single-producer/single-consumer ring for
//!   fire-and-forget messages (asynchronous `free()`, §3.1.2: "the entire
//!   free phase is not on the critical path").
//! * [`pin`] — `sched_setaffinity`-based core pinning with graceful
//!   fallback when the machine has too few cores.
//! * [`wait::WaitStrategy`] — spin / spin-then-yield / park policies for
//!   both sides of the channel.
//! * [`service`] — a generic [`service::Service`] trait plus
//!   [`service::OffloadRuntime`], the dedicated service thread that owns all
//!   the metadata (§3.3.2 notes the same machinery fits other management
//!   functions).

#![warn(missing_docs)]

pub mod error;
#[cfg(feature = "faultinject")]
pub mod fault;
pub mod pad;
pub mod pin;
pub mod ring;
pub mod service;
pub mod slot;
pub mod stats;
pub mod telemetry;
pub mod wait;

pub use error::ServiceError;
#[cfg(feature = "faultinject")]
pub use fault::{FaultAction, FaultState};
pub use pad::CachePadded;
pub use pin::{available_cores, pin_current_thread, pin_current_thread_verified, PinError};
pub use ring::{spsc, Consumer, Producer};
pub use service::{
    ClientHandle, OffloadRuntime, PostError, PostOutcome, RuntimeConfig, RuntimeHandles, Service,
    ShardFailure, ShardHealth, DEFAULT_DEADLINE,
};
pub use slot::{CallDeadline, RequestSlot};
pub use stats::{RuntimeStats, StatsSnapshot};
pub use telemetry::{RuntimeTelemetry, PHASES, PHASE_NAMES};
pub use wait::{WaitPhase, WaitState, WaitStrategy};

#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
pub use service::RuntimeBuilder;
