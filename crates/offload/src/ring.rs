//! Bounded single-producer/single-consumer ring buffer.
//!
//! This is the asynchronous half of the offload channel: `free()` requests
//! are posted here and the service core drains them off the critical path
//! (§3.1.2: "the entire free phase is not on the critical path and can be
//! executed asynchronously in the dedicated core").

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::pad::CachePadded;
use crate::wait::{WaitState, WaitStrategy};
use std::time::Duration;

struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the producer will write. Only the producer stores it.
    tail: CachePadded<AtomicUsize>,
    /// Next slot the consumer will read. Only the consumer stores it.
    head: CachePadded<AtomicUsize>,
    /// Set when either endpoint is dropped.
    closed: AtomicBool,
}

// SAFETY: the ring hands each slot to exactly one side at a time — the
// producer owns slots in `[tail, head + cap)` and the consumer owns
// `[head, tail)` — with Release stores on the indices publishing slot
// contents before the other side's Acquire loads can observe them. `T: Send`
// is required because values cross threads.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: see `Send`; all shared mutation goes through the atomics.
unsafe impl<T: Send> Sync for Shared<T> {}

/// Error returned by [`Producer::push`] when the ring is full or closed.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is at capacity; the value is handed back. A bounded retry
    /// (see [`Producer::push_deadline`]) may succeed once the consumer
    /// drains — but only if the consumer is still alive, so retry loops
    /// must re-check for `Disconnected` on every attempt.
    Full(T),
    /// The consumer is gone; the value is handed back. Retrying can never
    /// succeed — callers must stop immediately instead of spinning.
    Disconnected(T),
}

/// The sending endpoint. `!Clone`: exactly one producer exists.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Cached copy of `head` to avoid reading the consumer's line on every
    /// push.
    head_cache: usize,
}

/// The receiving endpoint. `!Clone`: exactly one consumer exists.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Cached copy of `tail` to avoid reading the producer's line on every
    /// pop.
    tail_cache: usize,
}

/// Creates a ring with capacity `cap` (rounded up to a power of two).
///
/// # Panics
///
/// Panics if `cap` is zero.
pub fn spsc<T: Send>(cap: usize) -> (Producer<T>, Consumer<T>) {
    assert!(cap > 0, "ring capacity must be non-zero");
    let cap = cap.next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        buf,
        mask: cap - 1,
        tail: CachePadded::new(AtomicUsize::new(0)),
        head: CachePadded::new(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            head_cache: 0,
        },
        Consumer {
            shared,
            tail_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Returns `true` if the consumer has been dropped.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Attempts to enqueue `value`.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the ring has no free slot and
    /// [`PushError::Disconnected`] when the consumer is gone; both return
    /// the value to the caller.
    pub fn push(&mut self, value: T) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Disconnected(value));
        }
        let tail = self.shared.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.head_cache) > self.shared.mask {
            // Ring looks full through the cache; refresh from the consumer.
            self.head_cache = self.shared.head.load(Ordering::Acquire);
            if tail.wrapping_sub(self.head_cache) > self.shared.mask {
                return Err(PushError::Full(value));
            }
        }
        let slot = &self.shared.buf[tail & self.shared.mask];
        // SAFETY: slot index `tail` is not yet published to the consumer
        // (its Acquire load of `tail` cannot observe the new value until the
        // Release store below), and the fullness check above proves the
        // consumer has finished with this slot, so we have exclusive access.
        unsafe { (*slot.get()).write(value) };
        self.shared
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueues `value`, retrying a full ring with `wait`'s escalation
    /// until `budget` elapses. This is the hang-proof form of the
    /// "push then yield forever" retry loop: a dead consumer surfaces as
    /// [`PushError::Disconnected`] immediately, and a consumer that never
    /// drains surfaces as [`PushError::Full`] once the budget is spent —
    /// the caller gets the value back either way.
    ///
    /// # Errors
    ///
    /// [`PushError::Disconnected`] as soon as the consumer is observed
    /// gone; [`PushError::Full`] if the deadline expires first.
    pub fn push_deadline(
        &mut self,
        value: T,
        wait: WaitStrategy,
        budget: Duration,
    ) -> Result<(), PushError<T>> {
        let mut state = WaitState::with_budget(wait, Some(budget));
        let mut value = value;
        loop {
            match self.push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Disconnected(v)) => return Err(PushError::Disconnected(v)),
                Err(PushError::Full(v)) => {
                    value = v;
                    if !state.pause() {
                        return Err(PushError::Full(value));
                    }
                }
            }
        }
    }

    /// Number of items currently queued (racy snapshot).
    pub fn len(&self) -> usize {
        let tail = self.shared.tail.load(Ordering::Relaxed);
        let head = self.shared.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Returns `true` if the queue appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Consumer<T> {
    /// Attempts to dequeue one item.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.shared.head.load(Ordering::Relaxed);
        if head == self.tail_cache {
            self.tail_cache = self.shared.tail.load(Ordering::Acquire);
            if head == self.tail_cache {
                return None;
            }
        }
        let slot = &self.shared.buf[head & self.shared.mask];
        // SAFETY: `head < tail` (checked above with an Acquire load that
        // synchronizes with the producer's Release store), so this slot
        // holds an initialized value the producer has published and will not
        // touch again until we advance `head`.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.shared
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Drains up to `max` items into `f`; returns how many were consumed.
    pub fn drain(&mut self, max: usize, mut f: impl FnMut(T)) -> usize {
        let mut n = 0;
        while n < max {
            match self.pop() {
                Some(v) => {
                    f(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Returns `true` if the producer has been dropped.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Number of items currently queued (racy snapshot).
    pub fn len(&self) -> usize {
        let tail = self.shared.tail.load(Ordering::Acquire);
        let head = self.shared.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Returns `true` if the queue appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        // Drain anything the producer already published so it is dropped.
        while self.pop().is_some() {}
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Drop any items still in the ring (producer pushed after the
        // consumer vanished, before observing `closed`).
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let mut i = head;
        while i != tail {
            let slot = &self.buf[i & self.mask];
            // SAFETY: slots in `[head, tail)` hold initialized values and no
            // other thread exists by the time Shared drops (both endpoints
            // are gone — Arc refcount reached zero).
            unsafe { (*slot.get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let (mut tx, mut rx) = spsc::<u32>(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (tx, _rx) = spsc::<u8>(5);
        assert_eq!(tx.capacity(), 8);
    }

    #[test]
    fn push_to_full_ring_fails() {
        let (mut tx, mut rx) = spsc::<u8>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.push(3), Err(PushError::Full(3)));
        assert_eq!(rx.pop(), Some(1));
        tx.push(3).unwrap();
    }

    #[test]
    fn push_after_consumer_drop_fails_disconnected() {
        let (mut tx, rx) = spsc::<u8>(2);
        drop(rx);
        assert_eq!(tx.push(1), Err(PushError::Disconnected(1)));
    }

    #[test]
    fn push_deadline_fails_fast_when_consumer_gone() {
        // Regression: the old retry loop yielded forever when the ring
        // stayed full because its consumer died. Disconnection must
        // surface immediately — well inside the budget — even when the
        // ring is also full.
        let (mut tx, rx) = spsc::<u8>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        drop(rx);
        let start = std::time::Instant::now();
        let r = tx.push_deadline(3, WaitStrategy::Backoff, Duration::from_secs(30));
        assert_eq!(r, Err(PushError::Disconnected(3)));
        assert!(start.elapsed() < Duration::from_secs(5), "no retry spin");
    }

    #[test]
    fn push_deadline_times_out_on_stuck_consumer() {
        let (mut tx, _rx) = spsc::<u8>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        // Consumer alive but never draining: budget bounds the wait.
        let r = tx.push_deadline(3, WaitStrategy::Spin, Duration::from_millis(5));
        assert_eq!(r, Err(PushError::Full(3)));
    }

    #[test]
    fn push_deadline_succeeds_once_consumer_drains() {
        let (mut tx, mut rx) = spsc::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            assert_eq!(rx.pop(), Some(1));
            rx
        });
        tx.push_deadline(3, WaitStrategy::Backoff, Duration::from_secs(30))
            .expect("slot frees up within budget");
        let mut rx = h.join().unwrap();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
    }

    #[test]
    fn drain_limits_batch() {
        let (mut tx, mut rx) = spsc::<u32>(8);
        for i in 0..6 {
            tx.push(i).unwrap();
        }
        let mut got = Vec::new();
        let n = rx.drain(4, |v| got.push(v));
        assert_eq!(n, 4);
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn values_dropped_when_ring_dropped() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = spsc::<D>(4);
        tx.push(D).unwrap();
        tx.push(D).unwrap();
        drop(rx);
        drop(tx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn cross_thread_stream_is_lossless() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = spsc::<u64>(64);
        let h = std::thread::spawn(move || {
            let mut sum = 0u64;
            let mut seen = 0u64;
            while seen < N {
                if let Some(v) = rx.pop() {
                    sum += v;
                    seen += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            sum
        });
        let mut i = 0u64;
        let wait = WaitStrategy::Backoff;
        while i < N {
            match tx.push_deadline(i, wait, Duration::from_secs(60)) {
                Ok(()) => i += 1,
                Err(e) => panic!("bounded push failed: {e:?}"),
            }
        }
        assert_eq!(h.join().unwrap(), N * (N - 1) / 2);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let (mut tx, mut rx) = spsc::<u8>(4);
        assert!(tx.is_empty() && rx.is_empty());
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.pop();
        assert_eq!(rx.len(), 1);
    }
}
