//! Core pinning via `sched_setaffinity`.
//!
//! The paper's prototype pins the spawned allocator thread to a specific
//! core so that all allocator metadata stays in that core's private caches.
//! On machines with too few cores (this reproduction environment exposes a
//! single vCPU) pinning still succeeds but provides no isolation; callers
//! can consult [`available_cores`] and record the outcome in their stats
//! rather than failing hard.

use std::fmt;
use std::io;

/// Why a pin request could not be satisfied.
#[derive(Debug)]
pub enum PinError {
    /// The requested core ID is outside the machine's CPU set.
    NoSuchCore {
        /// The core that was requested.
        requested: usize,
        /// How many cores the machine exposes.
        available: usize,
    },
    /// The kernel rejected the affinity change.
    Os(io::Error),
    /// The platform does not support thread affinity.
    Unsupported,
}

impl fmt::Display for PinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinError::NoSuchCore {
                requested,
                available,
            } => write!(
                f,
                "cannot pin to core {requested}: machine exposes {available} cores"
            ),
            PinError::Os(e) => write!(f, "sched_setaffinity failed: {e}"),
            PinError::Unsupported => write!(f, "thread affinity unsupported on this platform"),
        }
    }
}

impl std::error::Error for PinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PinError::Os(e) => Some(e),
            _ => None,
        }
    }
}

/// Number of logical cores the calling process may run on.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pins the calling thread to `core`.
///
/// Returns `Ok(())` when the kernel accepted the affinity mask. On single-
/// core machines, pinning to core 0 succeeds trivially.
///
/// # Errors
///
/// [`PinError::NoSuchCore`] when `core` is beyond the machine's CPU count,
/// [`PinError::Os`] when the syscall fails, and [`PinError::Unsupported`]
/// on non-Linux platforms.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(core: usize) -> Result<(), PinError> {
    let available = available_cores();
    if core >= available {
        return Err(PinError::NoSuchCore {
            requested: core,
            available,
        });
    }
    // SAFETY: `cpu_set_t` is a plain bitmask; zeroed is a valid empty set.
    let mut set: libc::cpu_set_t = unsafe { std::mem::zeroed() };
    // SAFETY: `core` was bounds-checked against the machine's CPU count and
    // CPU_SET only writes within the fixed-size `cpu_set_t`.
    unsafe { libc::CPU_SET(core, &mut set) };
    // SAFETY: pid 0 addresses the calling thread; `set` is a valid,
    // initialized cpu_set_t of the size we pass.
    let rc = unsafe {
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set as *const _)
    };
    if rc == 0 {
        Ok(())
    } else {
        Err(PinError::Os(io::Error::last_os_error()))
    }
}

/// Pins the calling thread to `core` (unsupported on this platform).
///
/// # Errors
///
/// Always returns [`PinError::Unsupported`].
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_core: usize) -> Result<(), PinError> {
    Err(PinError::Unsupported)
}

/// How many migration checks [`pin_current_thread_verified`] makes before
/// concluding the scheduler is not going to move us.
const PIN_VERIFY_RETRIES: u32 = 128;

/// Pins the calling thread to `core` and *verifies* the migration landed.
///
/// `sched_setaffinity` only updates the affinity mask; the scheduler
/// migrates the thread at its own pace, so a single `yield_now()` after
/// pinning is not enough to guarantee `sched_getcpu()` reports the target
/// core. This form retries a bounded number of times, yielding between
/// probes, and returns whether the thread was actually observed on
/// `core`. If the migration never lands it *warns* on stderr rather than
/// panicking — a mispinned service thread is slower, not wrong.
///
/// Returns `Ok(true)` when the thread was observed on `core`, `Ok(false)`
/// when the mask was installed but the migration was never observed
/// (including platforms where `sched_getcpu` is unavailable).
///
/// # Errors
///
/// Same as [`pin_current_thread`].
pub fn pin_current_thread_verified(core: usize) -> Result<bool, PinError> {
    pin_current_thread(core)?;
    if current_core() == Some(core) {
        return Ok(true);
    }
    for _ in 0..PIN_VERIFY_RETRIES {
        std::thread::yield_now();
        if current_core() == Some(core) {
            return Ok(true);
        }
    }
    eprintln!(
        "ngm-offload: affinity mask for core {core} installed but thread still on \
         {:?} after {PIN_VERIFY_RETRIES} checks; continuing unverified",
        current_core()
    );
    Ok(false)
}

/// Returns the core the calling thread is currently running on, if the
/// platform exposes it.
#[cfg(target_os = "linux")]
pub fn current_core() -> Option<usize> {
    // SAFETY: sched_getcpu takes no arguments and returns -1 on error.
    let cpu = unsafe { libc::sched_getcpu() };
    usize::try_from(cpu).ok()
}

/// Returns the core the calling thread is currently running on, if the
/// platform exposes it.
#[cfg(not(target_os = "linux"))]
pub fn current_core() -> Option<usize> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_core() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn pin_to_core_zero_succeeds() {
        // Core 0 always exists.
        pin_current_thread(0).expect("pinning to core 0 must succeed");
    }

    #[test]
    fn pin_to_absurd_core_fails_cleanly() {
        let err = pin_current_thread(100_000).unwrap_err();
        match err {
            PinError::NoSuchCore {
                requested,
                available,
            } => {
                assert_eq!(requested, 100_000);
                assert!(available >= 1);
            }
            PinError::Unsupported => {}
            PinError::Os(_) => panic!("bounds check should fire before the syscall"),
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn current_core_reports_after_verified_pin() {
        // Regression: the old form assumed one yield_now() completed the
        // migration, which is scheduler-dependent and flaked. The verified
        // form retries a bounded number of times and tells us whether the
        // migration was actually observed.
        let landed = pin_current_thread_verified(0).unwrap();
        if landed {
            assert_eq!(current_core(), Some(0));
        }
    }

    #[test]
    fn verified_pin_to_absurd_core_fails_cleanly() {
        assert!(pin_current_thread_verified(100_000).is_err());
    }

    #[test]
    fn pin_error_display_is_informative() {
        let e = PinError::NoSuchCore {
            requested: 9,
            available: 1,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('1'));
    }
}
