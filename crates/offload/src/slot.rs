//! The paper's synchronous request mailbox.
//!
//! §4.2 (Code 1) describes the prototype's protocol: "two atomic variables
//! `malloc_start` and `malloc_done` are used at the beginning and end of
//! `spawned_malloc()` and `malloc()` ... the `requested_size` and
//! `allocated_block` are the input and output of `malloc()` functions, and
//! this information is transferred between two threads."
//!
//! [`RequestSlot`] is exactly that: a one-deep mailbox whose state word
//! cycles `EMPTY → REQUEST → RESPONSE → EMPTY`. One slot serves one client
//! thread; the service core polls many slots.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::pad::CachePadded;
use crate::wait::WaitStrategy;

/// Slot is idle; the client may publish a request.
const EMPTY: u32 = 0;
/// A request is published (the paper's `malloc_start`).
const REQUEST: u32 = 1;
/// A response is published (the paper's `malloc_done`).
const RESPONSE: u32 = 2;

/// A one-deep synchronous request/response mailbox between one client
/// thread and the service core.
///
/// The state word lives on its own cache line; request and response payloads
/// share a second line, mirroring how little data actually crosses cores in
/// the paper's design (a size in, a pointer out).
pub struct RequestSlot<Q, R> {
    state: CachePadded<AtomicU32>,
    req: UnsafeCell<MaybeUninit<Q>>,
    resp: UnsafeCell<MaybeUninit<R>>,
}

// SAFETY: access to `req` and `resp` is mediated by the `state` protocol:
// the client writes `req` only while state is EMPTY (which it owns after
// consuming a RESPONSE), the server reads `req` and writes `resp` only while
// state is REQUEST, and the client reads `resp` only while state is
// RESPONSE. Each transition is a Release store observed by an Acquire load,
// so payload writes happen-before the reads on the other side. Q and R must
// be Send because they cross threads by value.
unsafe impl<Q: Send, R: Send> Sync for RequestSlot<Q, R> {}

impl<Q: Send, R: Send> Default for RequestSlot<Q, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Q: Send, R: Send> RequestSlot<Q, R> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        RequestSlot {
            state: CachePadded::new(AtomicU32::new(EMPTY)),
            req: UnsafeCell::new(MaybeUninit::uninit()),
            resp: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// Client side: publishes `request`, waits for the response with the
    /// given strategy, and returns it.
    ///
    /// Callers must ensure only one client thread uses a given slot; this is
    /// enforced structurally by [`crate::service::ClientHandle`] owning the
    /// slot reference uniquely.
    pub fn call(&self, request: Q, wait: WaitStrategy) -> R {
        // The slot must be EMPTY: the previous call consumed its RESPONSE.
        debug_assert_eq!(self.state.load(Ordering::Relaxed), EMPTY);
        // SAFETY: state is EMPTY, so the server is not touching `req`, and
        // no other client shares this slot (single-client contract).
        unsafe { (*self.req.get()).write(request) };
        self.state.store(REQUEST, Ordering::Release);

        wait.wait_for_value(&self.state, RESPONSE);

        // SAFETY: state is RESPONSE (Acquire), so the server's write of
        // `resp` happens-before this read, and the server will not touch the
        // slot again until we publish EMPTY.
        let response = unsafe { (*self.resp.get()).assume_init_read() };
        self.state.store(EMPTY, Ordering::Release);
        response
    }

    /// Server side: if a request is pending, consumes it, computes the
    /// response with `f`, publishes it, and returns `true`.
    pub fn serve(&self, f: impl FnOnce(Q) -> R) -> bool {
        if self.state.load(Ordering::Acquire) != REQUEST {
            return false;
        }
        // SAFETY: state is REQUEST (Acquire), so the client's write of `req`
        // happens-before this read, and the client is spinning on RESPONSE,
        // not touching the payload cells.
        let request = unsafe { (*self.req.get()).assume_init_read() };
        let response = f(request);
        // SAFETY: as above — the client cannot access `resp` until it
        // observes the RESPONSE store below.
        unsafe { (*self.resp.get()).write(response) };
        self.state.store(RESPONSE, Ordering::Release);
        true
    }

    /// Returns `true` if a request is waiting to be served.
    pub fn has_request(&self) -> bool {
        self.state.load(Ordering::Acquire) == REQUEST
    }
}

impl<Q, R> Drop for RequestSlot<Q, R> {
    fn drop(&mut self) {
        // A request published but never served must still be dropped.
        match *self.state.0.get_mut() {
            REQUEST => {
                // SAFETY: exclusive access in drop; state says `req` holds a
                // value that was never consumed.
                unsafe { (*self.req.get()).assume_init_drop() };
            }
            RESPONSE => {
                // SAFETY: exclusive access in drop; state says `resp` holds
                // a value the client never collected.
                unsafe { (*self.resp.get()).assume_init_drop() };
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn call_and_serve_roundtrip() {
        let slot: Arc<RequestSlot<u64, u64>> = Arc::new(RequestSlot::new());
        let server = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            let mut served = 0;
            while served < 3 {
                if server.serve(|q| q * 2) {
                    served += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(slot.call(10, WaitStrategy::Backoff), 20);
        assert_eq!(slot.call(21, WaitStrategy::Backoff), 42);
        assert_eq!(slot.call(0, WaitStrategy::Backoff), 0);
        h.join().unwrap();
    }

    #[test]
    fn serve_returns_false_when_idle() {
        let slot: RequestSlot<u8, u8> = RequestSlot::new();
        assert!(!slot.serve(|q| q));
        assert!(!slot.has_request());
    }

    #[test]
    fn pending_request_dropped_with_slot() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let slot: RequestSlot<D, ()> = RequestSlot::new();
        // Publish a request by hand without waiting for a response.
        // SAFETY: state is EMPTY and we are the only thread.
        unsafe { (*slot.req.get()).write(D) };
        slot.state.store(REQUEST, Ordering::Release);
        drop(slot);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn many_sequential_calls_stay_consistent() {
        let slot: Arc<RequestSlot<u32, u32>> = Arc::new(RequestSlot::new());
        let server = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            let mut served = 0u32;
            while served < 1000 {
                if server.serve(|q| q + 1) {
                    served += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        for i in 0..1000u32 {
            assert_eq!(slot.call(i, WaitStrategy::Backoff), i + 1);
        }
        h.join().unwrap();
    }
}
