//! The paper's synchronous request mailbox.
//!
//! §4.2 (Code 1) describes the prototype's protocol: "two atomic variables
//! `malloc_start` and `malloc_done` are used at the beginning and end of
//! `spawned_malloc()` and `malloc()` ... the `requested_size` and
//! `allocated_block` are the input and output of `malloc()` functions, and
//! this information is transferred between two threads."
//!
//! [`RequestSlot`] is exactly that: a one-deep mailbox whose state word
//! cycles `EMPTY → REQUEST → RESPONSE → EMPTY`. One slot serves one client
//! thread; the service core polls many slots.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

use ngm_telemetry::clock::cycles_now;

use crate::pad::CachePadded;
use crate::wait::{WaitState, WaitStrategy};

/// Slot is idle; the client may publish a request.
const EMPTY: u32 = 0;
/// A request is published (the paper's `malloc_start`).
const REQUEST: u32 = 1;
/// A response is published (the paper's `malloc_done`).
const RESPONSE: u32 = 2;
/// The server has claimed the request and is computing the response.
///
/// This state exists for the deadline path: a client that times out
/// retracts its request with a `REQUEST → EMPTY` CAS, and the server's
/// own `REQUEST → SERVING` CAS in [`RequestSlot::serve`] makes the two
/// race winners unambiguous — exactly one side owns the request payload.
const SERVING: u32 = 3;

/// What a deadline-bounded [`RequestSlot::call_deadline`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallDeadline<R> {
    /// The response arrived within budget.
    Ok(R),
    /// The deadline expired and the client won the retract race: the
    /// request was never observed by the server and the slot is EMPTY
    /// again, safe to reuse. Carries the time spent waiting.
    Retracted(Duration),
    /// The deadline (plus an equal grace period) expired *after* the
    /// server claimed the request: the request payload is consumed, no
    /// response ever arrived, and the slot is poisoned — the caller must
    /// never issue another call on it. Carries the time spent waiting.
    Abandoned(Duration),
}

/// A one-deep synchronous request/response mailbox between one client
/// thread and the service core.
///
/// The state word lives on its own cache line; request and response payloads
/// share a second line, mirroring how little data actually crosses cores in
/// the paper's design (a size in, a pointer out).
pub struct RequestSlot<Q, R> {
    state: CachePadded<AtomicU32>,
    req: UnsafeCell<MaybeUninit<Q>>,
    resp: UnsafeCell<MaybeUninit<R>>,
    /// Publish counter, bumped immediately before every REQUEST store. Two
    /// consumers: fault injection uses it so the service loop's "drop
    /// response" fault ignores one *specific* request rather than whatever
    /// currently occupies the slot (which would swallow the retry a
    /// deadline-expired client publishes after retracting), and span
    /// tracing mints span ids from it so a retried request is a distinct
    /// span by construction.
    publish_seq: AtomicU64,
    /// Phase stamps for span tracing, all [`cycles_now`] values for the
    /// *current* request. Writes are Relaxed: the server's stamps are
    /// ordered for the client by the RESPONSE Release store, and
    /// `request_tsc` is the client's own write. One cycle of the protocol
    /// overwrites the previous request's stamps.
    request_tsc: AtomicU64,
    claim_tsc: AtomicU64,
    served_tsc: AtomicU64,
    publish_tsc: AtomicU64,
}

// SAFETY: access to `req` and `resp` is mediated by the `state` protocol:
// the client writes `req` only while state is EMPTY (which it owns after
// consuming a RESPONSE), the server reads `req` and writes `resp` only while
// state is REQUEST, and the client reads `resp` only while state is
// RESPONSE. Each transition is a Release store observed by an Acquire load,
// so payload writes happen-before the reads on the other side. Q and R must
// be Send because they cross threads by value.
unsafe impl<Q: Send, R: Send> Sync for RequestSlot<Q, R> {}

impl<Q: Send, R: Send> Default for RequestSlot<Q, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Q: Send, R: Send> RequestSlot<Q, R> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        RequestSlot {
            state: CachePadded::new(AtomicU32::new(EMPTY)),
            req: UnsafeCell::new(MaybeUninit::uninit()),
            resp: UnsafeCell::new(MaybeUninit::uninit()),
            publish_seq: AtomicU64::new(0),
            request_tsc: AtomicU64::new(0),
            claim_tsc: AtomicU64::new(0),
            served_tsc: AtomicU64::new(0),
            publish_tsc: AtomicU64::new(0),
        }
    }

    /// Bumps the publish counter; called immediately before each REQUEST
    /// store so a server that observes REQUEST (Acquire) also observes the
    /// matching sequence number.
    #[inline]
    fn bump_publish_seq(&self) {
        self.publish_seq.fetch_add(1, Ordering::Relaxed);
    }

    /// The sequence number of the most recently published request. To the
    /// server this is only meaningful while it observes `has_request()`;
    /// to the client it identifies the request *it* just published (it is
    /// the only publisher).
    #[must_use]
    pub fn publish_seq(&self) -> u64 {
        self.publish_seq.load(Ordering::Relaxed)
    }

    /// Stamps the ring-resident mark; called by the client immediately
    /// before the REQUEST store so the stamp is ordered to the server by
    /// the same Release edge as the payload.
    #[inline]
    fn stamp_request(&self) {
        self.request_tsc.store(cycles_now(), Ordering::Relaxed);
    }

    /// Phase stamps of the most recently completed request, as
    /// `(request, claim, served, publish)` [`cycles_now`] values. Valid
    /// for the client after it consumed a RESPONSE (the Acquire load
    /// ordered the server's stamps); phases the request never reached
    /// (e.g. a retracted request was never claimed) read as stale values
    /// from an earlier cycle — callers gate on the call outcome.
    #[must_use]
    pub fn phase_stamps(&self) -> (u64, u64, u64, u64) {
        (
            self.request_tsc.load(Ordering::Relaxed),
            self.claim_tsc.load(Ordering::Relaxed),
            self.served_tsc.load(Ordering::Relaxed),
            self.publish_tsc.load(Ordering::Relaxed),
        )
    }

    /// A human-readable label for the current protocol state — a racy
    /// peek for the blackbox flight recorder, not a synchronization point.
    #[must_use]
    pub fn state_label(&self) -> &'static str {
        match self.state.load(Ordering::Relaxed) {
            EMPTY => "empty",
            REQUEST => "request",
            RESPONSE => "response",
            SERVING => "serving",
            _ => "?",
        }
    }

    /// Client side: publishes `request`, waits for the response with the
    /// given strategy, and returns it.
    ///
    /// Callers must ensure only one client thread uses a given slot; this is
    /// enforced structurally by [`crate::service::ClientHandle`] owning the
    /// slot reference uniquely.
    pub fn call(&self, request: Q, wait: WaitStrategy) -> R {
        // The slot must be EMPTY: the previous call consumed its RESPONSE.
        debug_assert_eq!(self.state.load(Ordering::Relaxed), EMPTY);
        // SAFETY: state is EMPTY, so the server is not touching `req`, and
        // no other client shares this slot (single-client contract).
        unsafe { (*self.req.get()).write(request) };
        self.bump_publish_seq();
        self.stamp_request();
        self.state.store(REQUEST, Ordering::Release);

        // Route through the shared WaitState machine so the configured
        // strategy's spin phase actually runs before any yield/sleep.
        let mut state = WaitState::new(wait);
        state.wait_for_value(&self.state, RESPONSE);

        // SAFETY: state is RESPONSE (Acquire), so the server's write of
        // `resp` happens-before this read, and the server will not touch the
        // slot again until we publish EMPTY.
        let response = unsafe { (*self.resp.get()).assume_init_read() };
        self.state.store(EMPTY, Ordering::Release);
        response
    }

    /// Client side, hang-proof: publishes `request` and waits at most
    /// `budget` for the response.
    ///
    /// On timeout the client tries to *retract* the request with a
    /// `REQUEST → EMPTY` CAS. If the CAS wins, the server never saw the
    /// request: the payload is reclaimed and [`CallDeadline::Retracted`]
    /// is returned with the slot EMPTY and reusable. If the CAS loses,
    /// the server has already claimed the request (state `SERVING` or
    /// `RESPONSE`), so the client waits one more `budget` for the
    /// in-flight response — a served response is never discarded, which
    /// is what keeps alloc/free accounting exact. Only if even that grace
    /// period expires (service thread killed mid-serve) does the call
    /// give up with [`CallDeadline::Abandoned`], after which the slot
    /// must not be used again.
    pub fn call_deadline(
        &self,
        request: Q,
        wait: WaitStrategy,
        budget: Duration,
    ) -> CallDeadline<R> {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), EMPTY);
        // SAFETY: state is EMPTY (single-client contract), as in `call`.
        unsafe { (*self.req.get()).write(request) };
        self.bump_publish_seq();
        self.stamp_request();
        self.state.store(REQUEST, Ordering::Release);

        let mut state = WaitState::with_budget(wait, Some(budget));
        if state.wait_for_value(&self.state, RESPONSE) {
            // SAFETY: state is RESPONSE (Acquire), as in `call`.
            let response = unsafe { (*self.resp.get()).assume_init_read() };
            self.state.store(EMPTY, Ordering::Release);
            return CallDeadline::Ok(response);
        }

        // Deadline expired. Race the server for the request.
        if self
            .state
            .compare_exchange(REQUEST, EMPTY, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // We won: the server never claimed the request. Reclaim the
            // payload we published so it is not leaked.
            // SAFETY: the CAS above proves the server never moved the slot
            // out of REQUEST, so `req` still holds the value we wrote and
            // the server will not touch the slot (it observes EMPTY).
            unsafe { (*self.req.get()).assume_init_drop() };
            return CallDeadline::Retracted(state.waited());
        }

        // The server claimed the request (SERVING) or already answered
        // (RESPONSE). Grant a grace period equal to the original budget
        // for the in-flight serve to finish; a completed response must be
        // collected, never dropped.
        let mut grace = WaitState::with_budget(wait, Some(budget));
        if grace.wait_for_value(&self.state, RESPONSE) {
            // SAFETY: state is RESPONSE (Acquire), as in `call`.
            let response = unsafe { (*self.resp.get()).assume_init_read() };
            self.state.store(EMPTY, Ordering::Release);
            return CallDeadline::Ok(response);
        }

        // The server died mid-serve: the request payload is gone and no
        // response will ever arrive. The slot stays in SERVING forever;
        // the caller must retire it.
        CallDeadline::Abandoned(state.waited() + grace.waited())
    }

    /// Server side: if a request is pending, consumes it, computes the
    /// response with `f`, publishes it, and returns `true`.
    pub fn serve(&self, f: impl FnOnce(Q) -> R) -> bool {
        // Claim the request with a CAS rather than a plain load: a
        // deadline-expired client may race us with a `REQUEST → EMPTY`
        // retraction, and exactly one side must own the payload. The CAS
        // is uncontended in the common case (the line is already exclusive
        // to the service core) so the protocol stays near the raw atomic
        // cost the paper measures.
        if self
            .state
            .compare_exchange(REQUEST, SERVING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        self.claim_tsc.store(cycles_now(), Ordering::Relaxed);
        // SAFETY: the CAS claimed the request (Acquire), so the client's
        // write of `req` happens-before this read, and a retracting client
        // observes SERVING and leaves the payload cells alone.
        let request = unsafe { (*self.req.get()).assume_init_read() };
        let response = f(request);
        self.served_tsc.store(cycles_now(), Ordering::Relaxed);
        // SAFETY: as above — the client cannot access `resp` until it
        // observes the RESPONSE store below.
        unsafe { (*self.resp.get()).write(response) };
        self.publish_tsc.store(cycles_now(), Ordering::Relaxed);
        self.state.store(RESPONSE, Ordering::Release);
        true
    }

    /// Returns `true` if a request is waiting to be served.
    pub fn has_request(&self) -> bool {
        self.state.load(Ordering::Acquire) == REQUEST
    }
}

impl<Q, R> Drop for RequestSlot<Q, R> {
    fn drop(&mut self) {
        // A request published but never served must still be dropped.
        match *self.state.0.get_mut() {
            REQUEST => {
                // SAFETY: exclusive access in drop; state says `req` holds a
                // value that was never consumed.
                unsafe { (*self.req.get()).assume_init_drop() };
            }
            RESPONSE => {
                // SAFETY: exclusive access in drop; state says `resp` holds
                // a value the client never collected.
                unsafe { (*self.resp.get()).assume_init_drop() };
            }
            // SERVING: the server consumed `req` but never wrote `resp`
            // (killed mid-serve) — neither cell holds a live value.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn call_and_serve_roundtrip() {
        let slot: Arc<RequestSlot<u64, u64>> = Arc::new(RequestSlot::new());
        let server = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            let mut served = 0;
            while served < 3 {
                if server.serve(|q| q * 2) {
                    served += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(slot.call(10, WaitStrategy::Backoff), 20);
        assert_eq!(slot.call(21, WaitStrategy::Backoff), 42);
        assert_eq!(slot.call(0, WaitStrategy::Backoff), 0);
        h.join().unwrap();
    }

    #[test]
    fn serve_returns_false_when_idle() {
        let slot: RequestSlot<u8, u8> = RequestSlot::new();
        assert!(!slot.serve(|q| q));
        assert!(!slot.has_request());
    }

    #[test]
    fn pending_request_dropped_with_slot() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let slot: RequestSlot<D, ()> = RequestSlot::new();
        // Publish a request by hand without waiting for a response.
        // SAFETY: state is EMPTY and we are the only thread.
        unsafe { (*slot.req.get()).write(D) };
        slot.state.store(REQUEST, Ordering::Release);
        drop(slot);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn call_deadline_retracts_when_never_served() {
        static DROPS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let slot: RequestSlot<D, u8> = RequestSlot::new();
        // No server anywhere: the deadline must fire, retract, and drop
        // the unserved request payload.
        let r = slot.call_deadline(D, WaitStrategy::Backoff, Duration::from_millis(3));
        assert!(
            matches!(r, CallDeadline::Retracted(_)),
            "expected retraction, got {r:?}"
        );
        assert_eq!(DROPS.load(Ordering::SeqCst), 1, "retracted payload dropped");
        // Slot is EMPTY again: a later served call works.
        assert!(!slot.has_request());
        let server = |q: D| {
            drop(q);
            7u8
        };
        let client = std::thread::scope(|s| {
            let h =
                s.spawn(|| slot.call_deadline(D, WaitStrategy::Backoff, Duration::from_secs(30)));
            let mut served = false;
            while !served {
                served = slot.serve(server);
                std::hint::spin_loop();
            }
            h.join().unwrap()
        });
        assert_eq!(client, CallDeadline::Ok(7));
    }

    #[test]
    fn serve_and_retract_race_has_one_owner() {
        // Drive the race many times: each request must be either served
        // (client gets the response, possibly late) or retracted (server
        // never saw it) — never both, never neither.
        let slot: Arc<RequestSlot<u32, u32>> = Arc::new(RequestSlot::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let served = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let (srv_slot, srv_stop, srv_count) =
            (Arc::clone(&slot), Arc::clone(&stop), Arc::clone(&served));
        let h = std::thread::spawn(move || {
            while !srv_stop.load(Ordering::Acquire) {
                if srv_slot.serve(|q| q + 1) {
                    srv_count.fetch_add(1, Ordering::Relaxed);
                }
                std::hint::spin_loop();
            }
        });
        let mut ok = 0usize;
        let mut retracted = 0usize;
        for i in 0..2_000u32 {
            // A tiny budget makes both race outcomes common.
            match slot.call_deadline(i, WaitStrategy::Spin, Duration::from_nanos(50)) {
                CallDeadline::Ok(r) => {
                    assert_eq!(r, i + 1);
                    ok += 1;
                }
                CallDeadline::Retracted(_) => retracted += 1,
                CallDeadline::Abandoned(_) => panic!("server is alive; nothing abandons"),
            }
        }
        stop.store(true, Ordering::Release);
        h.join().unwrap();
        assert_eq!(ok + retracted, 2_000);
        assert_eq!(
            served.load(Ordering::Relaxed),
            ok,
            "every serve was collected"
        );
    }

    #[test]
    fn call_deadline_reports_abandoned_when_server_dies_mid_serve() {
        let slot: Arc<RequestSlot<u32, u32>> = Arc::new(RequestSlot::new());
        let srv = Arc::clone(&slot);
        // A server that claims the request and then dies without responding.
        let h = std::thread::spawn(move || loop {
            let mut claimed = false;
            let dead = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                srv.serve(|_q| -> u32 {
                    panic!("killed mid-serve");
                })
            }));
            if dead.is_err() {
                claimed = true;
            }
            if claimed {
                break;
            }
            std::hint::spin_loop();
        });
        let r = slot.call_deadline(9, WaitStrategy::Backoff, Duration::from_millis(10));
        assert!(
            matches!(r, CallDeadline::Abandoned(_)),
            "mid-serve death must surface as Abandoned, got {r:?}"
        );
        h.join().unwrap();
    }

    #[test]
    fn phase_stamps_are_ordered_and_publish_seq_advances() {
        let slot: Arc<RequestSlot<u32, u32>> = Arc::new(RequestSlot::new());
        let server = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            let mut served = 0;
            while served < 2 {
                if server.serve(|q| q) {
                    served += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(slot.state_label(), "empty");
        let t0 = cycles_now();
        slot.call(1, WaitStrategy::Backoff);
        let t5 = cycles_now();
        let seq1 = slot.publish_seq();
        let (req, claim, served, publish) = slot.phase_stamps();
        assert!(t0 <= req, "request stamp after call start");
        assert!(req <= claim && claim <= served && served <= publish);
        assert!(publish <= t5, "publish stamp before the client observed");
        slot.call(2, WaitStrategy::Backoff);
        assert_eq!(slot.publish_seq(), seq1 + 1, "seq bumps per publish");
        h.join().unwrap();
    }

    #[test]
    fn many_sequential_calls_stay_consistent() {
        let slot: Arc<RequestSlot<u32, u32>> = Arc::new(RequestSlot::new());
        let server = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            let mut served = 0u32;
            while served < 1000 {
                if server.serve(|q| q + 1) {
                    served += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        for i in 0..1000u32 {
            assert_eq!(slot.call(i, WaitStrategy::Backoff), i + 1);
        }
        h.join().unwrap();
    }
}
