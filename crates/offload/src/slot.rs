//! The paper's synchronous request mailbox.
//!
//! §4.2 (Code 1) describes the prototype's protocol: "two atomic variables
//! `malloc_start` and `malloc_done` are used at the beginning and end of
//! `spawned_malloc()` and `malloc()` ... the `requested_size` and
//! `allocated_block` are the input and output of `malloc()` functions, and
//! this information is transferred between two threads."
//!
//! [`RequestSlot`] is exactly that: a one-deep mailbox whose state word
//! cycles `EMPTY → REQUEST → RESPONSE → EMPTY`. One slot serves one client
//! thread; the service core polls many slots.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::task::Waker;
use std::time::Duration;

use ngm_telemetry::clock::cycles_now;

use crate::pad::CachePadded;
use crate::wait::{WaitState, WaitStrategy};

/// Slot is idle; the client may publish a request.
const EMPTY: u32 = 0;
/// A request is published (the paper's `malloc_start`).
const REQUEST: u32 = 1;
/// A response is published (the paper's `malloc_done`).
const RESPONSE: u32 = 2;
/// The server has claimed the request and is computing the response.
///
/// This state exists for the deadline path: a client that times out
/// retracts its request with a `REQUEST → EMPTY` CAS, and the server's
/// own `REQUEST → SERVING` CAS in [`RequestSlot::serve`] makes the two
/// race winners unambiguous — exactly one side owns the request payload.
const SERVING: u32 = 3;

/// What a deadline-bounded [`RequestSlot::call_deadline`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallDeadline<R> {
    /// The response arrived within budget.
    Ok(R),
    /// The deadline expired and the client won the retract race: the
    /// request was never observed by the server and the slot is EMPTY
    /// again, safe to reuse. Carries the time spent waiting.
    Retracted(Duration),
    /// The deadline (plus an equal grace period) expired *after* the
    /// server claimed the request: the request payload is consumed, no
    /// response ever arrived, and the slot is poisoned — the caller must
    /// never issue another call on it. Carries the time spent waiting.
    Abandoned(Duration),
}

/// A one-deep synchronous request/response mailbox between one client
/// thread and the service core.
///
/// The state word lives on its own cache line; request and response payloads
/// share a second line, mirroring how little data actually crosses cores in
/// the paper's design (a size in, a pointer out).
pub struct RequestSlot<Q, R> {
    state: CachePadded<AtomicU32>,
    req: UnsafeCell<MaybeUninit<Q>>,
    resp: UnsafeCell<MaybeUninit<R>>,
    /// Publish counter, bumped immediately before every REQUEST store. Two
    /// consumers: fault injection uses it so the service loop's "drop
    /// response" fault ignores one *specific* request rather than whatever
    /// currently occupies the slot (which would swallow the retry a
    /// deadline-expired client publishes after retracting), and span
    /// tracing mints span ids from it so a retried request is a distinct
    /// span by construction.
    publish_seq: AtomicU64,
    /// Phase stamps for span tracing, all [`cycles_now`] values for the
    /// *current* request. Writes are Relaxed: the server's stamps are
    /// ordered for the client by the RESPONSE Release store, and
    /// `request_tsc` is the client's own write. One cycle of the protocol
    /// overwrites the previous request's stamps.
    request_tsc: AtomicU64,
    claim_tsc: AtomicU64,
    served_tsc: AtomicU64,
    publish_tsc: AtomicU64,
    /// A waker registered by a client polling this slot as a future.
    /// The server fires it on the RESPONSE release edge in [`Self::serve`].
    /// The mutex is uncontended in every blocking path (no waker is ever
    /// registered), so the synchronous protocol stays lock-free in
    /// practice; `has_waker` gates the server away from the lock entirely
    /// on that path.
    waker: Mutex<Option<Waker>>,
    /// Fast-path hint: `true` while a waker may be registered. Paired
    /// [`fence`]s in [`Self::register_waker`] and [`Self::serve`] make the
    /// flag reliable: at least one side of a register/publish race always
    /// observes the other.
    has_waker: AtomicBool,
}

// SAFETY: access to `req` and `resp` is mediated by the `state` protocol:
// the client writes `req` only while state is EMPTY (which it owns after
// consuming a RESPONSE), the server reads `req` and writes `resp` only while
// state is REQUEST, and the client reads `resp` only while state is
// RESPONSE. Each transition is a Release store observed by an Acquire load,
// so payload writes happen-before the reads on the other side. Q and R must
// be Send because they cross threads by value.
unsafe impl<Q: Send, R: Send> Sync for RequestSlot<Q, R> {}

impl<Q: Send, R: Send> Default for RequestSlot<Q, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Q: Send, R: Send> RequestSlot<Q, R> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        RequestSlot {
            state: CachePadded::new(AtomicU32::new(EMPTY)),
            req: UnsafeCell::new(MaybeUninit::uninit()),
            resp: UnsafeCell::new(MaybeUninit::uninit()),
            publish_seq: AtomicU64::new(0),
            request_tsc: AtomicU64::new(0),
            claim_tsc: AtomicU64::new(0),
            served_tsc: AtomicU64::new(0),
            publish_tsc: AtomicU64::new(0),
            waker: Mutex::new(None),
            has_waker: AtomicBool::new(false),
        }
    }

    /// Bumps the publish counter; called immediately before each REQUEST
    /// store so a server that observes REQUEST (Acquire) also observes the
    /// matching sequence number.
    #[inline]
    fn bump_publish_seq(&self) {
        self.publish_seq.fetch_add(1, Ordering::Relaxed);
    }

    /// The sequence number of the most recently published request. To the
    /// server this is only meaningful while it observes `has_request()`;
    /// to the client it identifies the request *it* just published (it is
    /// the only publisher).
    #[must_use]
    pub fn publish_seq(&self) -> u64 {
        self.publish_seq.load(Ordering::Relaxed)
    }

    /// Stamps the ring-resident mark; called by the client immediately
    /// before the REQUEST store so the stamp is ordered to the server by
    /// the same Release edge as the payload.
    #[inline]
    fn stamp_request(&self) {
        self.request_tsc.store(cycles_now(), Ordering::Relaxed);
    }

    /// Phase stamps of the most recently completed request, as
    /// `(request, claim, served, publish)` [`cycles_now`] values. Valid
    /// for the client after it consumed a RESPONSE (the Acquire load
    /// ordered the server's stamps); phases the request never reached
    /// (e.g. a retracted request was never claimed) read as stale values
    /// from an earlier cycle — callers gate on the call outcome.
    #[must_use]
    pub fn phase_stamps(&self) -> (u64, u64, u64, u64) {
        (
            self.request_tsc.load(Ordering::Relaxed),
            self.claim_tsc.load(Ordering::Relaxed),
            self.served_tsc.load(Ordering::Relaxed),
            self.publish_tsc.load(Ordering::Relaxed),
        )
    }

    /// A human-readable label for the current protocol state — a racy
    /// peek for the blackbox flight recorder, not a synchronization point.
    #[must_use]
    pub fn state_label(&self) -> &'static str {
        match self.state.load(Ordering::Relaxed) {
            EMPTY => "empty",
            REQUEST => "request",
            RESPONSE => "response",
            SERVING => "serving",
            _ => "?",
        }
    }

    /// Client side, non-blocking: publishes `request` if the slot is
    /// EMPTY, returning `Err(request)` (payload handed back, nothing
    /// published) when a previous request is still in flight.
    ///
    /// This is the submission half of the completion-based protocol; pair
    /// it with [`Self::poll_response`] to collect, [`Self::register_waker`]
    /// to be woken instead of polling, and [`Self::retract`] to cancel.
    /// The blocking [`Self::call`]/[`Self::call_deadline`] are thin
    /// wrappers over these same primitives.
    ///
    /// Callers must ensure only one client thread uses a given slot; this
    /// is enforced structurally by [`crate::service::ClientHandle`] owning
    /// the slot reference uniquely.
    pub fn begin(&self, request: Q) -> Result<(), Q> {
        if self.state.load(Ordering::Relaxed) != EMPTY {
            return Err(request);
        }
        // SAFETY: state is EMPTY, so the server is not touching `req`, and
        // no other client shares this slot (single-client contract). Only
        // the client moves the slot out of EMPTY, so the check above
        // cannot be invalidated concurrently.
        unsafe { (*self.req.get()).write(request) };
        self.bump_publish_seq();
        self.stamp_request();
        self.state.store(REQUEST, Ordering::Release);
        Ok(())
    }

    /// Client side, non-blocking: consumes and returns the response if one
    /// has been published, leaving the slot EMPTY; `None` while the
    /// request is still pending (or none is in flight).
    pub fn poll_response(&self) -> Option<R> {
        if self.state.load(Ordering::Acquire) != RESPONSE {
            return None;
        }
        // SAFETY: state is RESPONSE (Acquire), so the server's write of
        // `resp` happens-before this read, and the server will not touch
        // the slot again until we publish EMPTY.
        let response = unsafe { (*self.resp.get()).assume_init_read() };
        self.state.store(EMPTY, Ordering::Release);
        Some(response)
    }

    /// Client side: registers `waker` to be fired when the in-flight
    /// request's response is published (the RESPONSE release edge in
    /// [`Self::serve`]).
    ///
    /// Lost-wakeup-free: if the response was already published by the time
    /// the waker is stored, the waker fires immediately from this call.
    /// Spurious wakes are possible (a stale server wake can land on a
    /// newly registered waker); callers re-poll and re-register, as the
    /// `Future` contract already requires.
    ///
    /// The waker's `wake()` may run while the slot's internal registration
    /// lock is held, so it must not re-enter slot methods; the wakers of
    /// real executors (set a flag, unpark a thread) satisfy this.
    pub fn register_waker(&self, waker: &Waker) {
        {
            let mut slot = self.waker.lock().unwrap_or_else(|e| e.into_inner());
            match &mut *slot {
                Some(w) if w.will_wake(waker) => {}
                w => *w = Some(waker.clone()),
            }
        }
        self.has_waker.store(true, Ordering::Relaxed);
        // Paired with the fence in `serve`: either the server's flag read
        // observes our store (it wakes us), or our state load below
        // observes its RESPONSE store (we wake ourselves). Without the
        // fences both sides could miss each other and the wakeup be lost.
        fence(Ordering::SeqCst);
        if self.state.load(Ordering::Acquire) == RESPONSE {
            self.wake_registered();
        }
    }

    /// Client side: cancels the in-flight request with a
    /// `REQUEST → EMPTY` CAS. Returns `true` if the request was never
    /// claimed by the server (payload reclaimed, slot EMPTY and reusable)
    /// and `false` if the server already claimed it (state `SERVING` or
    /// `RESPONSE` — the caller must still collect or abandon it).
    ///
    /// After a successful retract, the registered waker (if any) is
    /// cleared and will never fire for this request: the server only
    /// wakes after publishing a RESPONSE, and a successful retract proves
    /// it never claimed the request. Any stale wake still in flight from
    /// an *earlier* response completes before this returns (the wake runs
    /// under the registration lock taken here).
    pub fn retract(&self) -> bool {
        if self
            .state
            .compare_exchange(REQUEST, EMPTY, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        // We won: the server never claimed the request. Reclaim the
        // payload we published so it is not leaked.
        // SAFETY: the CAS above proves the server never moved the slot
        // out of REQUEST, so `req` still holds the value we wrote and
        // the server will not touch the slot (it observes EMPTY).
        unsafe { (*self.req.get()).assume_init_drop() };
        self.has_waker.store(false, Ordering::Relaxed);
        let mut slot = self.waker.lock().unwrap_or_else(|e| e.into_inner());
        *slot = None;
        true
    }

    /// Takes and fires the registered waker, holding the registration lock
    /// across the wake so [`Self::retract`] can wait out in-flight wakes.
    fn wake_registered(&self) {
        let mut slot = self.waker.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(w) = slot.take() {
            w.wake();
        }
    }

    /// Client side: publishes `request`, waits for the response with the
    /// given strategy, and returns it.
    ///
    /// A thin wrapper over [`Self::begin`] + [`Self::poll_response`];
    /// callers must ensure only one client thread uses a given slot, as
    /// for `begin`.
    pub fn call(&self, request: Q, wait: WaitStrategy) -> R {
        // The slot must be EMPTY: the previous call consumed its RESPONSE.
        let published = self.begin(request).is_ok();
        debug_assert!(published, "call on a busy slot");

        // Route through the shared WaitState machine so the configured
        // strategy's spin phase actually runs before any yield/sleep.
        let mut state = WaitState::new(wait);
        state.wait_for_value(&self.state, RESPONSE);

        match self.poll_response() {
            Some(response) => response,
            // Unbudgeted wait_for_value only returns once state is
            // RESPONSE, and only this client can consume it.
            None => unreachable!("RESPONSE observed but not collectable"),
        }
    }

    /// Client side, hang-proof: publishes `request` and waits at most
    /// `budget` for the response.
    ///
    /// On timeout the client tries to *retract* the request with a
    /// `REQUEST → EMPTY` CAS. If the CAS wins, the server never saw the
    /// request: the payload is reclaimed and [`CallDeadline::Retracted`]
    /// is returned with the slot EMPTY and reusable. If the CAS loses,
    /// the server has already claimed the request (state `SERVING` or
    /// `RESPONSE`), so the client waits one more `budget` for the
    /// in-flight response — a served response is never discarded, which
    /// is what keeps alloc/free accounting exact. Only if even that grace
    /// period expires (service thread killed mid-serve) does the call
    /// give up with [`CallDeadline::Abandoned`], after which the slot
    /// must not be used again.
    pub fn call_deadline(
        &self,
        request: Q,
        wait: WaitStrategy,
        budget: Duration,
    ) -> CallDeadline<R> {
        let published = self.begin(request).is_ok();
        debug_assert!(published, "call_deadline on a busy slot");

        let mut state = WaitState::with_budget(wait, Some(budget));
        if state.wait_for_value(&self.state, RESPONSE) {
            if let Some(response) = self.poll_response() {
                return CallDeadline::Ok(response);
            }
        }

        // Deadline expired. Race the server for the request.
        if self.retract() {
            return CallDeadline::Retracted(state.waited());
        }

        // The server claimed the request (SERVING) or already answered
        // (RESPONSE). Grant a grace period equal to the original budget
        // for the in-flight serve to finish; a completed response must be
        // collected, never dropped.
        let mut grace = WaitState::with_budget(wait, Some(budget));
        if grace.wait_for_value(&self.state, RESPONSE) {
            if let Some(response) = self.poll_response() {
                return CallDeadline::Ok(response);
            }
        }

        // The server died mid-serve: the request payload is gone and no
        // response will ever arrive. The slot stays in SERVING forever;
        // the caller must retire it.
        CallDeadline::Abandoned(state.waited() + grace.waited())
    }

    /// Server side: if a request is pending, consumes it, computes the
    /// response with `f`, publishes it, and returns `true`.
    pub fn serve(&self, f: impl FnOnce(Q) -> R) -> bool {
        // Claim the request with a CAS rather than a plain load: a
        // deadline-expired client may race us with a `REQUEST → EMPTY`
        // retraction, and exactly one side must own the payload. The CAS
        // is uncontended in the common case (the line is already exclusive
        // to the service core) so the protocol stays near the raw atomic
        // cost the paper measures.
        if self
            .state
            .compare_exchange(REQUEST, SERVING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        self.claim_tsc.store(cycles_now(), Ordering::Relaxed);
        // SAFETY: the CAS claimed the request (Acquire), so the client's
        // write of `req` happens-before this read, and a retracting client
        // observes SERVING and leaves the payload cells alone.
        let request = unsafe { (*self.req.get()).assume_init_read() };
        let response = f(request);
        self.served_tsc.store(cycles_now(), Ordering::Relaxed);
        // SAFETY: as above — the client cannot access `resp` until it
        // observes the RESPONSE store below.
        unsafe { (*self.resp.get()).write(response) };
        self.publish_tsc.store(cycles_now(), Ordering::Relaxed);
        self.state.store(RESPONSE, Ordering::Release);
        // Paired with the fence in `register_waker` (see there); the flag
        // keeps the blocking path — which never registers a waker — away
        // from the lock entirely.
        fence(Ordering::SeqCst);
        if self.has_waker.swap(false, Ordering::Relaxed) {
            self.wake_registered();
        }
        true
    }

    /// Returns `true` if a request is waiting to be served.
    pub fn has_request(&self) -> bool {
        self.state.load(Ordering::Acquire) == REQUEST
    }
}

impl<Q, R> Drop for RequestSlot<Q, R> {
    fn drop(&mut self) {
        // A request published but never served must still be dropped.
        match *self.state.0.get_mut() {
            REQUEST => {
                // SAFETY: exclusive access in drop; state says `req` holds a
                // value that was never consumed.
                unsafe { (*self.req.get()).assume_init_drop() };
            }
            RESPONSE => {
                // SAFETY: exclusive access in drop; state says `resp` holds
                // a value the client never collected.
                unsafe { (*self.resp.get()).assume_init_drop() };
            }
            // SERVING: the server consumed `req` but never wrote `resp`
            // (killed mid-serve) — neither cell holds a live value.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn call_and_serve_roundtrip() {
        let slot: Arc<RequestSlot<u64, u64>> = Arc::new(RequestSlot::new());
        let server = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            let mut served = 0;
            while served < 3 {
                if server.serve(|q| q * 2) {
                    served += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(slot.call(10, WaitStrategy::Backoff), 20);
        assert_eq!(slot.call(21, WaitStrategy::Backoff), 42);
        assert_eq!(slot.call(0, WaitStrategy::Backoff), 0);
        h.join().unwrap();
    }

    #[test]
    fn serve_returns_false_when_idle() {
        let slot: RequestSlot<u8, u8> = RequestSlot::new();
        assert!(!slot.serve(|q| q));
        assert!(!slot.has_request());
    }

    #[test]
    fn pending_request_dropped_with_slot() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let slot: RequestSlot<D, ()> = RequestSlot::new();
        // Publish a request by hand without waiting for a response.
        // SAFETY: state is EMPTY and we are the only thread.
        unsafe { (*slot.req.get()).write(D) };
        slot.state.store(REQUEST, Ordering::Release);
        drop(slot);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn call_deadline_retracts_when_never_served() {
        static DROPS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let slot: RequestSlot<D, u8> = RequestSlot::new();
        // No server anywhere: the deadline must fire, retract, and drop
        // the unserved request payload.
        let r = slot.call_deadline(D, WaitStrategy::Backoff, Duration::from_millis(3));
        assert!(
            matches!(r, CallDeadline::Retracted(_)),
            "expected retraction, got {r:?}"
        );
        assert_eq!(DROPS.load(Ordering::SeqCst), 1, "retracted payload dropped");
        // Slot is EMPTY again: a later served call works.
        assert!(!slot.has_request());
        let server = |q: D| {
            drop(q);
            7u8
        };
        let client = std::thread::scope(|s| {
            let h =
                s.spawn(|| slot.call_deadline(D, WaitStrategy::Backoff, Duration::from_secs(30)));
            let mut served = false;
            while !served {
                served = slot.serve(server);
                std::hint::spin_loop();
            }
            h.join().unwrap()
        });
        assert_eq!(client, CallDeadline::Ok(7));
    }

    #[test]
    fn serve_and_retract_race_has_one_owner() {
        // Drive the race many times: each request must be either served
        // (client gets the response, possibly late) or retracted (server
        // never saw it) — never both, never neither.
        let slot: Arc<RequestSlot<u32, u32>> = Arc::new(RequestSlot::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let served = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let (srv_slot, srv_stop, srv_count) =
            (Arc::clone(&slot), Arc::clone(&stop), Arc::clone(&served));
        let h = std::thread::spawn(move || {
            while !srv_stop.load(Ordering::Acquire) {
                if srv_slot.serve(|q| q + 1) {
                    srv_count.fetch_add(1, Ordering::Relaxed);
                }
                std::hint::spin_loop();
            }
        });
        let mut ok = 0usize;
        let mut retracted = 0usize;
        for i in 0..2_000u32 {
            // A tiny budget makes both race outcomes common.
            match slot.call_deadline(i, WaitStrategy::Spin, Duration::from_nanos(50)) {
                CallDeadline::Ok(r) => {
                    assert_eq!(r, i + 1);
                    ok += 1;
                }
                CallDeadline::Retracted(_) => retracted += 1,
                CallDeadline::Abandoned(_) => panic!("server is alive; nothing abandons"),
            }
        }
        stop.store(true, Ordering::Release);
        h.join().unwrap();
        assert_eq!(ok + retracted, 2_000);
        assert_eq!(
            served.load(Ordering::Relaxed),
            ok,
            "every serve was collected"
        );
    }

    #[test]
    fn call_deadline_reports_abandoned_when_server_dies_mid_serve() {
        let slot: Arc<RequestSlot<u32, u32>> = Arc::new(RequestSlot::new());
        let srv = Arc::clone(&slot);
        // A server that claims the request and then dies without responding.
        let h = std::thread::spawn(move || loop {
            let mut claimed = false;
            let dead = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                srv.serve(|_q| -> u32 {
                    panic!("killed mid-serve");
                })
            }));
            if dead.is_err() {
                claimed = true;
            }
            if claimed {
                break;
            }
            std::hint::spin_loop();
        });
        let r = slot.call_deadline(9, WaitStrategy::Backoff, Duration::from_millis(10));
        assert!(
            matches!(r, CallDeadline::Abandoned(_)),
            "mid-serve death must surface as Abandoned, got {r:?}"
        );
        h.join().unwrap();
    }

    #[test]
    fn phase_stamps_are_ordered_and_publish_seq_advances() {
        let slot: Arc<RequestSlot<u32, u32>> = Arc::new(RequestSlot::new());
        let server = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            let mut served = 0;
            while served < 2 {
                if server.serve(|q| q) {
                    served += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(slot.state_label(), "empty");
        let t0 = cycles_now();
        slot.call(1, WaitStrategy::Backoff);
        let t5 = cycles_now();
        let seq1 = slot.publish_seq();
        let (req, claim, served, publish) = slot.phase_stamps();
        assert!(t0 <= req, "request stamp after call start");
        assert!(req <= claim && claim <= served && served <= publish);
        assert!(publish <= t5, "publish stamp before the client observed");
        slot.call(2, WaitStrategy::Backoff);
        assert_eq!(slot.publish_seq(), seq1 + 1, "seq bumps per publish");
        h.join().unwrap();
    }

    #[test]
    fn many_sequential_calls_stay_consistent() {
        let slot: Arc<RequestSlot<u32, u32>> = Arc::new(RequestSlot::new());
        let server = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            let mut served = 0u32;
            while served < 1000 {
                if server.serve(|q| q + 1) {
                    served += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        for i in 0..1000u32 {
            assert_eq!(slot.call(i, WaitStrategy::Backoff), i + 1);
        }
        h.join().unwrap();
    }

    /// A waker that counts its wakes.
    struct CountingWake(std::sync::atomic::AtomicUsize);

    impl std::task::Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWake>, std::task::Waker) {
        let flag = Arc::new(CountingWake(std::sync::atomic::AtomicUsize::new(0)));
        let waker = std::task::Waker::from(Arc::clone(&flag));
        (flag, waker)
    }

    #[test]
    fn begin_poll_roundtrip_without_blocking() {
        let slot: RequestSlot<u32, u32> = RequestSlot::new();
        assert!(slot.begin(5).is_ok());
        // Busy slot hands the payload back instead of publishing.
        assert_eq!(slot.begin(6), Err(6));
        assert_eq!(slot.poll_response(), None, "not served yet");
        assert!(slot.serve(|q| q * 3));
        assert_eq!(slot.poll_response(), Some(15));
        assert_eq!(slot.poll_response(), None, "response consumed");
        assert!(slot.begin(7).is_ok(), "slot reusable after completion");
        assert!(slot.retract());
    }

    #[test]
    fn waker_fires_on_response_edge() {
        let slot: RequestSlot<u32, u32> = RequestSlot::new();
        let (wakes, waker) = counting_waker();
        assert!(slot.begin(1).is_ok());
        slot.register_waker(&waker);
        assert_eq!(wakes.0.load(Ordering::SeqCst), 0, "no response yet");
        assert!(slot.serve(|q| q + 1));
        assert_eq!(wakes.0.load(Ordering::SeqCst), 1, "woken on RESPONSE");
        assert_eq!(slot.poll_response(), Some(2));
        // The waker was consumed: a second serve cycle does not re-fire it.
        assert!(slot.begin(2).is_ok());
        assert!(slot.serve(|q| q + 1));
        assert_eq!(wakes.0.load(Ordering::SeqCst), 1);
        assert_eq!(slot.poll_response(), Some(3));
    }

    #[test]
    fn register_after_response_self_wakes() {
        let slot: RequestSlot<u32, u32> = RequestSlot::new();
        let (wakes, waker) = counting_waker();
        assert!(slot.begin(1).is_ok());
        assert!(slot.serve(|q| q + 1));
        // Response already published: registration must not lose the wake.
        slot.register_waker(&waker);
        assert_eq!(wakes.0.load(Ordering::SeqCst), 1);
        assert_eq!(slot.poll_response(), Some(2));
    }

    #[test]
    fn retract_clears_waker_and_it_never_fires() {
        let slot: RequestSlot<u32, u32> = RequestSlot::new();
        let (wakes, waker) = counting_waker();
        assert!(slot.begin(1).is_ok());
        slot.register_waker(&waker);
        assert!(slot.retract());
        // Even a full later serve cycle must not fire the retracted waker.
        assert!(slot.begin(2).is_ok());
        assert!(slot.serve(|q| q + 1));
        assert_eq!(slot.poll_response(), Some(3));
        assert_eq!(
            wakes.0.load(Ordering::SeqCst),
            0,
            "waker fired after retract"
        );
    }

    #[test]
    fn retract_loses_once_served_and_response_collectable() {
        let slot: RequestSlot<u32, u32> = RequestSlot::new();
        assert!(slot.begin(4).is_ok());
        assert!(slot.serve(|q| q * 10));
        assert!(!slot.retract(), "served request cannot be retracted");
        assert_eq!(slot.poll_response(), Some(40));
    }

    #[test]
    fn concurrent_register_and_serve_never_lose_the_wake() {
        // The fence-paired register/publish race: for each round, either
        // the server's flag read sees the registration (server wakes) or
        // the client's state re-check sees RESPONSE (self-wake). A lost
        // wakeup shows up as a round where the counter never advances.
        let slot: Arc<RequestSlot<u32, u32>> = Arc::new(RequestSlot::new());
        let srv = Arc::clone(&slot);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let srv_stop = Arc::clone(&stop);
        let h = std::thread::spawn(move || {
            while !srv_stop.load(Ordering::Acquire) {
                srv.serve(|q| q);
                std::hint::spin_loop();
            }
        });
        for i in 0..2_000u32 {
            let (wakes, waker) = counting_waker();
            assert!(slot.begin(i).is_ok());
            slot.register_waker(&waker);
            // The response may race the registration in either order; the
            // protocol guarantees the wake is never lost.
            let mut spins = 0u64;
            while wakes.0.load(Ordering::SeqCst) == 0 {
                std::hint::spin_loop();
                spins += 1;
                assert!(spins < 1_000_000_000, "lost wakeup at round {i}");
            }
            assert_eq!(slot.poll_response(), Some(i));
        }
        stop.store(true, Ordering::Release);
        h.join().unwrap();
    }
}
